//! Run-time characteristics of a trace, in the sense of the paper's Table 2.
//!
//! Table 2 reports, per evaluated program: total threads (and maximum live
//! threads), total events, non-same-epoch accesses (NSEAs), and the fraction
//! of NSEAs executed while holding ≥1, ≥2, and ≥3 locks. Those quantities
//! drive the cost of predictive analysis (per-held-lock work happens exactly
//! at NSEAs), so the synthetic workloads are calibrated against them.

use std::collections::HashMap;

use smarttrack_clock::ThreadId;

use crate::{Op, Trace, VarId};

/// Per-variable access metadata used to classify same-epoch accesses exactly
/// the way the FTO algorithms do (paper §4.1), without tracking any ordering.
#[derive(Clone, Debug)]
enum AccessMeta {
    /// Single last accessor `(thread, epoch)`.
    Epoch(ThreadId, u64),
    /// Shared readers: thread → epoch of its last read.
    Shared(HashMap<ThreadId, u64>),
}

/// Table 2-style run-time characteristics of a [`Trace`].
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{paper, stats::TraceStats};
///
/// let s = TraceStats::compute(&paper::figure1());
/// assert_eq!(s.total_events, 8);
/// assert_eq!(s.threads_total, 2);
/// assert!(s.nsea_count <= s.access_count);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Total events in the trace (`All` column).
    pub total_events: usize,
    /// Total read/write events (non-volatile).
    pub access_count: usize,
    /// Non-same-epoch accesses (`NSEAs` column).
    pub nsea_count: usize,
    /// Threads that executed at least one event or were forked (`#Thr`).
    pub threads_total: usize,
    /// Maximum number of simultaneously live (started, not joined) threads.
    pub threads_max_live: usize,
    /// NSEAs holding at least 1, 2, and 3 locks (`Locks held at NSEAs`).
    pub nsea_holding: [usize; 3],
    /// Total synchronization events (acquire/release/fork/join/volatile).
    pub sync_count: usize,
}

impl TraceStats {
    /// Computes the characteristics of `trace` in a single pass.
    pub fn compute(trace: &Trace) -> Self {
        let nthreads = trace.num_threads();
        let mut sync_epoch = vec![0u64; nthreads];
        let mut held: Vec<Vec<u32>> = vec![Vec::new(); nthreads];
        let mut write_meta: HashMap<VarId, (ThreadId, u64)> = HashMap::new();
        let mut read_meta: HashMap<VarId, AccessMeta> = HashMap::new();

        let mut live = vec![false; nthreads];
        let mut joined = vec![false; nthreads];
        let mut max_live = 0usize;
        let mut stats = TraceStats {
            total_events: trace.len(),
            threads_total: nthreads,
            ..TraceStats::default()
        };

        let bump_live = |live: &mut Vec<bool>, joined: &[bool], t: ThreadId| -> usize {
            if !live[t.index()] && !joined[t.index()] {
                live[t.index()] = true;
            }
            live.iter().filter(|&&l| l).count()
        };

        for e in trace.events() {
            let ti = e.tid.index();
            max_live = max_live.max(bump_live(&mut live, &joined, e.tid));
            match e.op {
                Op::Read(x) => {
                    stats.access_count += 1;
                    let cur = sync_epoch[ti];
                    let same = match read_meta.get(&x) {
                        Some(AccessMeta::Epoch(t, c)) => *t == e.tid && *c == cur,
                        Some(AccessMeta::Shared(map)) => map.get(&e.tid) == Some(&cur),
                        None => false,
                    };
                    if !same {
                        stats.record_nsea(held[ti].len());
                        match read_meta.get_mut(&x) {
                            Some(AccessMeta::Epoch(t, c)) if *t == e.tid => *c = cur,
                            Some(AccessMeta::Epoch(t, c)) => {
                                let mut map = HashMap::new();
                                map.insert(*t, *c);
                                map.insert(e.tid, cur);
                                read_meta.insert(x, AccessMeta::Shared(map));
                            }
                            Some(AccessMeta::Shared(map)) => {
                                map.insert(e.tid, cur);
                            }
                            None => {
                                read_meta.insert(x, AccessMeta::Epoch(e.tid, cur));
                            }
                        }
                    }
                }
                Op::Write(x) => {
                    stats.access_count += 1;
                    let cur = sync_epoch[ti];
                    let same = write_meta.get(&x) == Some(&(e.tid, cur));
                    if !same {
                        stats.record_nsea(held[ti].len());
                        write_meta.insert(x, (e.tid, cur));
                        read_meta.insert(x, AccessMeta::Epoch(e.tid, cur));
                    }
                }
                Op::Acquire(m) | Op::AcqRead(m) | Op::AcqWrite(m) => {
                    stats.sync_count += 1;
                    held[ti].push(m.raw());
                    sync_epoch[ti] += 1;
                }
                Op::TryAcqFail(_) => {
                    // No acquisition happened: nothing is held and no
                    // detector bumps a clock here, so the epoch stands.
                    stats.sync_count += 1;
                }
                Op::Release(m) => {
                    stats.sync_count += 1;
                    held[ti].retain(|&l| l != m.raw());
                    sync_epoch[ti] += 1;
                }
                Op::Fork(child) => {
                    stats.sync_count += 1;
                    sync_epoch[ti] += 1;
                    max_live = max_live.max(bump_live(&mut live, &joined, child));
                }
                Op::Join(child) => {
                    stats.sync_count += 1;
                    sync_epoch[ti] += 1;
                    live[child.index()] = false;
                    joined[child.index()] = true;
                }
                Op::VolatileRead(_)
                | Op::VolatileWrite(_)
                | Op::Wait(..)
                | Op::Notify(_)
                | Op::NotifyAll(_)
                | Op::BarrierEnter(_)
                | Op::BarrierExit(_) => {
                    // Wait keeps its monitor held (atomic release-and-
                    // reacquire), so the held-lock set is unchanged.
                    stats.sync_count += 1;
                    sync_epoch[ti] += 1;
                }
            }
        }
        stats.threads_max_live = max_live;
        stats
    }

    fn record_nsea(&mut self, locks_held: usize) {
        self.nsea_count += 1;
        for (i, slot) in self.nsea_holding.iter_mut().enumerate() {
            if locks_held > i {
                *slot += 1;
            }
        }
    }

    /// Fraction of accesses that are non-same-epoch.
    pub fn nsea_fraction(&self) -> f64 {
        if self.access_count == 0 {
            0.0
        } else {
            self.nsea_count as f64 / self.access_count as f64
        }
    }

    /// Percentage of NSEAs holding at least `n` locks (`n` in `1..=3`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1, 2, or 3.
    pub fn pct_nsea_holding(&self, n: usize) -> f64 {
        assert!((1..=3).contains(&n), "n must be 1..=3");
        if self.nsea_count == 0 {
            0.0
        } else {
            100.0 * self.nsea_holding[n - 1] as f64 / self.nsea_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockId, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn same_epoch_writes_are_not_nseas() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap(); // NSEA
        b.push(t(0), Op::Write(x(0))).unwrap(); // same epoch
        b.push(t(0), Op::Read(x(0))).unwrap(); // same epoch (write covers read)
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // NSEA (epoch bumped)
        b.push(t(0), Op::Release(m(0))).unwrap();
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.access_count, 4);
        assert_eq!(s.nsea_count, 2);
    }

    #[test]
    fn other_thread_write_breaks_same_epoch() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap(); // NSEA
        b.push(t(1), Op::Write(x(0))).unwrap(); // NSEA
        b.push(t(0), Op::Write(x(0))).unwrap(); // NSEA again (Wx stolen)
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.nsea_count, 3);
    }

    #[test]
    fn shared_readers_keep_same_epoch_entries() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap(); // NSEA
        b.push(t(1), Op::Read(x(0))).unwrap(); // NSEA (upgrades to shared)
        b.push(t(0), Op::Read(x(0))).unwrap(); // shared same epoch
        b.push(t(1), Op::Read(x(0))).unwrap(); // shared same epoch
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.nsea_count, 2);
    }

    #[test]
    fn held_lock_distribution_counts_nested_locks() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // 1 lock
        b.push(t(0), Op::Acquire(m(1))).unwrap();
        b.push(t(0), Op::Write(x(1))).unwrap(); // 2 locks
        b.push(t(0), Op::Acquire(m(2))).unwrap();
        b.push(t(0), Op::Write(x(2))).unwrap(); // 3 locks
        b.push(t(0), Op::Release(m(2))).unwrap();
        b.push(t(0), Op::Release(m(1))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.nsea_count, 3);
        assert_eq!(s.nsea_holding, [3, 2, 1]);
        assert!((s.pct_nsea_holding(1) - 100.0).abs() < 1e-9);
        assert!((s.pct_nsea_holding(3) - 33.33).abs() < 0.01);
    }

    #[test]
    fn rwlock_holds_count_and_try_fail_keeps_the_epoch() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::AcqRead(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // NSEA, 1 lock
        b.push(t(0), Op::TryAcqFail(m(1))).unwrap(); // no epoch bump
        b.push(t(0), Op::Write(x(0))).unwrap(); // still same epoch
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(0), Op::AcqWrite(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // NSEA, 1 lock
        b.push(t(0), Op::Release(m(0))).unwrap();
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.access_count, 3);
        assert_eq!(s.nsea_count, 2);
        assert_eq!(s.nsea_holding, [2, 0, 0]);
        assert_eq!(s.sync_count, 5);
    }

    #[test]
    fn live_thread_count_tracks_fork_join() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Fork(t(1))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Join(t(1))).unwrap();
        b.push(t(0), Op::Fork(t(2))).unwrap();
        b.push(t(2), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Join(t(2))).unwrap();
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.threads_total, 3);
        assert_eq!(s.threads_max_live, 2);
    }
}
