use std::fmt;

use smarttrack_clock::ThreadId;

use crate::{BarrierId, CondId, Loc, LockId, VarId};

/// Index of an event within a [`Trace`](crate::Trace).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u32);

impl EventId {
    /// Creates an event id from a trace index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        EventId(index)
    }

    /// Returns the trace index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for EventId {
    fn from(i: u32) -> Self {
        EventId(i)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The operation performed by an event.
///
/// The paper's core model has `rd`, `wr`, `acq`, `rel` (§2.1); `fork`, `join`
/// and volatile accesses are the additional synchronization primitives every
/// evaluated analysis supports (§5.1). Condition-variable `wait`/`notify`
/// and barrier rendezvous round out the synchronization idioms of the
/// evaluated DaCapo-class programs; their precise trace semantics are
/// documented in `docs/ARCHITECTURE.md` ("Synchronization model").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `rd(x)` — read the shared variable `x`.
    Read(VarId),
    /// `wr(x)` — write the shared variable `x`.
    Write(VarId),
    /// `acq(m)` — acquire the lock `m` exclusively (a plain mutex
    /// acquisition; [`Op::AcqWrite`] is the reader-writer spelling of the
    /// same exclusive hold).
    Acquire(LockId),
    /// `rel(m)` — release the lock `m` (whatever mode it was acquired in;
    /// the holder state determines whether a write- or read-mode section
    /// ends).
    Release(LockId),
    /// `acqr(m)` — acquire the reader-writer lock `m` in *read* (shared)
    /// mode. Any number of threads may hold `m` in read mode at once; a
    /// read acquisition is ordered after the preceding write-mode release
    /// only (two read critical sections on the same lock do not order each
    /// other — that non-ordering is exactly what the mutex-backed interim
    /// capture wrapper used to fabricate away).
    AcqRead(LockId),
    /// `acqw(m)` — acquire the reader-writer lock `m` in *write*
    /// (exclusive) mode: ordered after every preceding release of `m`,
    /// read- or write-mode. Semantically an exclusive hold like
    /// [`Op::Acquire`]; kept distinct for trace fidelity (the detectors
    /// treat them identically).
    AcqWrite(LockId),
    /// `tryf(m)` — a *failed* `try_lock`/`try_read`/`try_write` on `m`.
    /// No acquisition happened, so the event has no ordering effect on any
    /// relation; it is recorded so lock-free fallback paths stay visible
    /// in traces. Well-formedness only requires that the thread does not
    /// itself hold `m` (a thread's own trylock cannot fail against its own
    /// hold in the non-reentrant model).
    TryAcqFail(LockId),
    /// Fork the given thread (establishes order to the child's first event).
    Fork(ThreadId),
    /// Join the given thread (establishes order from the child's last event).
    Join(ThreadId),
    /// Read of a volatile variable (synchronization access, §5.1).
    VolatileRead(VarId),
    /// Write of a volatile variable (synchronization access, §5.1).
    VolatileWrite(VarId),
    /// `wait(c, m)` — a completed wait on condition variable `c` whose
    /// monitor is `m`: an atomic release-and-reacquire of `m`, ordered
    /// after the notifies on `c` seen so far. The executing thread must
    /// hold `m` and still holds it afterwards.
    Wait(CondId, LockId),
    /// `ntf(c)` — notify one waiter on `c` (publishes the notifier's time).
    Notify(CondId),
    /// `nfa(c)` — notify all waiters on `c` (same ordering effect as
    /// [`Op::Notify`]; kept distinct for trace fidelity).
    NotifyAll(CondId),
    /// `bent(b)` — enter barrier `b` (publishes the arriving thread's time
    /// into the round's rendezvous clock).
    BarrierEnter(BarrierId),
    /// `bext(b)` — exit barrier `b` (ordered after every enter of the same
    /// round: the all-to-all release/acquire of the rendezvous).
    BarrierExit(BarrierId),
}

impl Op {
    /// Returns the accessed variable for (non-volatile) reads and writes.
    #[inline]
    pub fn access_var(&self) -> Option<VarId> {
        match self {
            Op::Read(x) | Op::Write(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns `true` for `wr(x)`.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write(_))
    }

    /// Returns `true` for `rd(x)`.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read(_))
    }

    /// Returns `true` for any synchronization operation (everything except
    /// plain reads and writes).
    #[inline]
    pub fn is_sync(&self) -> bool {
        !matches!(self, Op::Read(_) | Op::Write(_))
    }

    /// Returns whether two operations *conflict*: both access the same
    /// variable and at least one is a write (the `≍` relation, §2.2, modulo
    /// the different-thread requirement checked by the caller).
    #[inline]
    pub fn conflicts_with(&self, other: &Op) -> bool {
        match (self.access_var(), other.access_var()) {
            (Some(a), Some(b)) => a == b && (self.is_write() || other.is_write()),
            _ => false,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(x) => write!(f, "rd({x})"),
            Op::Write(x) => write!(f, "wr({x})"),
            Op::Acquire(m) => write!(f, "acq({m})"),
            Op::Release(m) => write!(f, "rel({m})"),
            Op::AcqRead(m) => write!(f, "acqr({m})"),
            Op::AcqWrite(m) => write!(f, "acqw({m})"),
            Op::TryAcqFail(m) => write!(f, "tryf({m})"),
            Op::Fork(t) => write!(f, "fork({t})"),
            Op::Join(t) => write!(f, "join({t})"),
            Op::VolatileRead(v) => write!(f, "vrd({v})"),
            Op::VolatileWrite(v) => write!(f, "vwr({v})"),
            Op::Wait(c, m) => write!(f, "wait({c},{m})"),
            Op::Notify(c) => write!(f, "ntf({c})"),
            Op::NotifyAll(c) => write!(f, "nfa({c})"),
            Op::BarrierEnter(b) => write!(f, "bent({b})"),
            Op::BarrierExit(b) => write!(f, "bext({b})"),
        }
    }
}

/// A single event of an execution trace: a thread, an operation, and the
/// static program location that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// The executing thread (`thr(e)` in the paper).
    pub tid: ThreadId,
    /// The operation.
    pub op: Op,
    /// Static program location (used for statically-distinct race counting).
    pub loc: Loc,
}

impl Event {
    /// Creates an event with an unknown source location.
    #[inline]
    pub fn new(tid: ThreadId, op: Op) -> Self {
        Event {
            tid,
            op,
            loc: Loc::UNKNOWN,
        }
    }

    /// Creates an event with a source location.
    #[inline]
    pub fn with_loc(tid: ThreadId, op: Op, loc: Loc) -> Self {
        Event { tid, op, loc }
    }

    /// Returns whether this event conflicts with `other` (`e ≍ e'`, §2.2):
    /// different threads, same variable, at least one write.
    #[inline]
    pub fn conflicts_with(&self, other: &Event) -> bool {
        self.tid != other.tid && self.op.conflicts_with(&other.op)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tid, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn conflict_requires_write_and_same_var() {
        let x = VarId::new(0);
        let y = VarId::new(1);
        assert!(Op::Read(x).conflicts_with(&Op::Write(x)));
        assert!(Op::Write(x).conflicts_with(&Op::Write(x)));
        assert!(!Op::Read(x).conflicts_with(&Op::Read(x)));
        assert!(!Op::Write(x).conflicts_with(&Op::Write(y)));
        assert!(!Op::Write(x).conflicts_with(&Op::Acquire(LockId::new(0))));
    }

    #[test]
    fn event_conflict_requires_different_threads() {
        let x = VarId::new(0);
        let a = Event::new(t(0), Op::Write(x));
        let b = Event::new(t(0), Op::Read(x));
        let c = Event::new(t(1), Op::Read(x));
        assert!(!a.conflicts_with(&b));
        assert!(a.conflicts_with(&c));
    }

    #[test]
    fn sync_classification() {
        assert!(Op::Acquire(LockId::new(0)).is_sync());
        assert!(Op::Fork(t(1)).is_sync());
        assert!(Op::VolatileRead(VarId::new(0)).is_sync());
        assert!(!Op::Read(VarId::new(0)).is_sync());
    }

    #[test]
    fn display_forms() {
        let e = Event::new(t(1), Op::Acquire(LockId::new(2)));
        assert_eq!(e.to_string(), "T1:acq(m2)");
        assert_eq!(Op::VolatileWrite(VarId::new(3)).to_string(), "vwr(x3)");
        assert_eq!(Op::AcqRead(LockId::new(0)).to_string(), "acqr(m0)");
        assert_eq!(Op::AcqWrite(LockId::new(1)).to_string(), "acqw(m1)");
        assert_eq!(Op::TryAcqFail(LockId::new(2)).to_string(), "tryf(m2)");
    }

    #[test]
    fn rwlock_ops_are_sync() {
        assert!(Op::AcqRead(LockId::new(0)).is_sync());
        assert!(Op::AcqWrite(LockId::new(0)).is_sync());
        assert!(Op::TryAcqFail(LockId::new(0)).is_sync());
    }
}
