use std::fmt;

/// Identifier of a program variable (an object field, static field, or array
/// element in the paper's Java setting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        VarId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for VarId {
    fn from(i: u32) -> Self {
        VarId(i)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(u32);

impl LockId {
    /// Creates a lock id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        LockId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for LockId {
    fn from(i: u32) -> Self {
        LockId(i)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a condition variable (a `java.lang.Object` monitor used for
/// `wait`/`notify`, or an explicit `Condition`, in the paper's Java setting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(u32);

impl CondId {
    /// Creates a condition-variable id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        CondId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for CondId {
    fn from(i: u32) -> Self {
        CondId(i)
    }
}

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a barrier (a `CyclicBarrier`-style all-to-all rendezvous).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(u32);

impl BarrierId {
    /// Creates a barrier id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        BarrierId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for BarrierId {
    fn from(i: u32) -> Self {
        BarrierId(i)
    }
}

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A static program location (source site) of an access.
///
/// The paper counts *statically distinct races* by the program location that
/// detected the race (§5.6); dynamic events generated from the same program
/// point share a `Loc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(u32);

impl Loc {
    /// Location used when no source information is available.
    pub const UNKNOWN: Loc = Loc(u32::MAX);

    /// Creates a location id.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Loc(index)
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` for [`Loc::UNKNOWN`].
    #[inline]
    pub const fn is_unknown(self) -> bool {
        self.0 == u32::MAX
    }
}

impl Default for Loc {
    fn default() -> Self {
        Loc::UNKNOWN
    }
}

impl From<u32> for Loc {
    fn from(i: u32) -> Self {
        Loc(i)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "L?")
        } else {
            write!(f, "L{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VarId::new(3).to_string(), "x3");
        assert_eq!(LockId::new(0).to_string(), "m0");
        assert_eq!(Loc::new(12).to_string(), "L12");
        assert_eq!(Loc::UNKNOWN.to_string(), "L?");
    }

    #[test]
    fn unknown_loc_is_default() {
        assert!(Loc::default().is_unknown());
        assert!(!Loc::new(0).is_unknown());
    }
}
