//! STB (SmartTrack Binary) — the compact binary trace format.
//!
//! The text formats ([`fmt`](crate::fmt), [`formats`](crate::formats)) cost
//! tens of bytes and a line parse per event; at the hundreds-of-millions of
//! events a real recorded execution produces, parsing dominates analysis.
//! STB encodes the same event model in ~2–3 bytes per event and decodes with
//! no per-line scanning, so recorded executions stream into an analysis
//! session at hardware speed and in bounded memory.
//!
//! The byte-level layout is specified normatively in
//! [`docs/TRACE_FORMATS.md`](https://github.com/paper-repro/smarttrack/blob/main/docs/TRACE_FORMATS.md);
//! in summary:
//!
//! * a **header** — magic `89 53 54 42` (`\x89STB`), a version byte, a flags
//!   byte, and (when the `HAS_HINT` flag is set) an [`StbHint`] carrying the
//!   event count and thread/variable/lock/volatile cardinalities, so a
//!   streaming consumer can pre-size its metadata before the first event;
//! * a sequence of self-contained **chunks**, each framed by its payload
//!   byte length and event count, so readers can skip whole chunks and
//!   resume mid-file;
//! * within a chunk, events are grouped into **same-thread runs** (one run
//!   header per burst of events by one thread) and encoded as
//!   varint/zigzag **deltas** against the previous target id of the same
//!   kind, which is what gets the common case down to one or two bytes.
//!
//! # Examples
//!
//! Eager round trip through memory:
//!
//! ```
//! use smarttrack_trace::{binary, paper};
//!
//! let trace = paper::figure1();
//! let bytes = binary::to_stb_bytes(&trace);
//! assert_eq!(binary::from_stb_bytes(&bytes)?, trace);
//! # Ok::<(), smarttrack_trace::binary::StbError>(())
//! ```
//!
//! Streaming: record through an [`StbWriter`] sink, replay through an
//! [`StbReader`] without ever materializing a [`Trace`]:
//!
//! ```
//! use smarttrack_trace::{binary::{StbReader, StbWriter}, paper};
//!
//! let trace = paper::figure2();
//! let mut writer = StbWriter::new(Vec::new());
//! for event in trace.events() {
//!     writer.write(event)?;
//! }
//! let bytes = writer.finish()?;
//!
//! let reader = StbReader::new(&bytes[..])?;
//! let events: Result<Vec<_>, _> = reader.collect();
//! assert_eq!(events.unwrap(), trace.events());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use smarttrack_clock::ThreadId;

use crate::{BarrierId, CondId, Event, Loc, LockId, Op, Trace, TraceBuilder, TraceError, VarId};

/// The four-byte STB magic number, `\x89STB`. The high bit in the first
/// byte keeps text tools from mistaking STB files for line formats (the
/// same trick as PNG).
pub const STB_MAGIC: [u8; 4] = [0x89, b'S', b'T', b'B'];

/// The baseline STB version: 3-bit op tags (the eight original operations)
/// and five header-hint cardinalities. Readers decode v1 streams forever;
/// writers emit v1 whenever the stream uses no v2 feature, so recordings
/// of v1-expressible traces stay byte-for-byte identical across revisions.
pub const STB_VERSION: u8 = 1;

/// STB revision 2: 4-bit op tags adding the condition-variable
/// (`wait`/`ntf`/`nfa`) and barrier (`bent`/`bext`) operations with their
/// own delta registers, and two extra header-hint cardinalities (condvars,
/// barriers). Everything else — framing, runs, varint/zigzag coding — is
/// unchanged from v1.
pub const STB_VERSION_2: u8 = 2;

/// STB revision 3: three more 4-bit op tags for the reader-writer-lock
/// operations (`acqr`/`acqw`) and failed trylocks (`tryf`), filling the
/// 4-bit tag space exactly. The header layout (including the seven-field
/// v2 hint) and everything else are unchanged from v2; a trace without the
/// new operations still writes its v1 or v2 bytes.
pub const STB_VERSION_3: u8 = 3;

/// Header flag bit: an [`StbHint`] follows the flags byte.
const FLAG_HAS_HINT: u8 = 0b0000_0001;
/// All flag bits a version-1 reader understands.
const KNOWN_FLAGS: u8 = FLAG_HAS_HINT;

/// Default number of events per chunk written by [`StbWriter`].
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// Upper bound accepted for a single chunk's payload, so a corrupt length
/// prefix produces a precise error instead of an allocation blow-up.
/// [`StbAssembler::with_chunk_cap`] can lower (never raise) it for one
/// consumer.
pub const MAX_CHUNK_BYTES: u64 = 64 << 20;

/// Largest chunk size [`StbWriter::chunk_events`] accepts. A worst-case
/// event costs at most 50 encoded bytes (a 20-byte run header plus a
/// 10-byte head varint, a 10-byte second-operand delta for `wait`, and a
/// 10-byte location delta), so chunks of this many events cannot exceed
/// the readers' 64 MiB payload cap.
pub const MAX_CHUNK_EVENTS: usize = (MAX_CHUNK_BYTES / 64) as usize;

/// Rejects a declared chunk event count that cannot be honest *before*
/// anything is sized from it. Every encoded event occupies at least one
/// payload byte (its run's head varint), so `count > len` is provably
/// corrupt, and no conforming writer exceeds [`MAX_CHUNK_EVENTS`].
/// Without this check a ~20-byte crafted frame declaring `count = 1 << 40`
/// would make `Vec::with_capacity` request terabytes — an allocator abort
/// that no `catch_unwind` can contain.
fn check_chunk_count(count: u64, len: u64, offset: u64) -> Result<(), StbError> {
    if count > len || count > MAX_CHUNK_EVENTS as u64 {
        return Err(StbError::Corrupt {
            offset,
            message: format!(
                "chunk declares {count} events in a {len}-byte payload (at most one \
                 event per payload byte, {MAX_CHUNK_EVENTS} events per chunk)"
            ),
        });
    }
    Ok(())
}

/// Stream metadata carried by the STB header when known at write time.
///
/// Everything here is advisory — decoding never depends on it — but a
/// streaming consumer can use it to pre-size analysis metadata (the
/// `StreamHint` plumbing of `smarttrack-detect`) and report progress.
/// [`write_stb`] (which sees a whole [`Trace`]) always writes one;
/// [`StbWriter`] (which sees an unbounded stream) omits it unless given
/// one via [`StbWriter::with_hint`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StbHint {
    /// Total number of events in the stream.
    pub events: u64,
    /// Number of distinct threads (max index + 1).
    pub threads: u64,
    /// Number of distinct shared variables (max index + 1).
    pub vars: u64,
    /// Number of distinct locks (max index + 1).
    pub locks: u64,
    /// Number of distinct volatile variables (max index + 1).
    pub volatiles: u64,
    /// Number of distinct condition variables (max index + 1). Carried by
    /// v2 headers only; decodes as 0 from a v1 header.
    pub condvars: u64,
    /// Number of distinct barriers (max index + 1). Carried by v2 headers
    /// only; decodes as 0 from a v1 header.
    pub barriers: u64,
}

impl StbHint {
    /// The full-knowledge hint for a recorded trace.
    pub fn of_trace(trace: &Trace) -> Self {
        StbHint {
            events: trace.len() as u64,
            threads: trace.num_threads() as u64,
            vars: trace.num_vars() as u64,
            locks: trace.num_locks() as u64,
            volatiles: trace.num_volatiles() as u64,
            condvars: trace.num_condvars() as u64,
            barriers: trace.num_barriers() as u64,
        }
    }

    /// Whether this hint carries information only a v2 header can encode.
    fn needs_v2(&self) -> bool {
        self.condvars > 0 || self.barriers > 0
    }
}

/// The decoded STB header: version, flags, and the optional [`StbHint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StbHeader {
    /// The format version ([`STB_VERSION`], [`STB_VERSION_2`], or
    /// [`STB_VERSION_3`]).
    pub version: u8,
    /// Stream metadata, when the writer knew it.
    pub hint: Option<StbHint>,
}

/// Error from STB encoding or decoding.
#[derive(Debug)]
pub enum StbError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input does not begin with [`STB_MAGIC`].
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The version byte names a version this implementation cannot read.
    UnsupportedVersion(u8),
    /// The flags byte sets bits this implementation does not know; a
    /// version-1 reader must refuse rather than silently mis-decode.
    UnknownFlags(u8),
    /// The byte stream violates the STB grammar. `offset` is the position
    /// (from the start of the stream) where the violation was detected.
    Corrupt {
        /// Byte offset of the violation.
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// The stream ended inside a header, frame, or chunk payload.
    Truncated {
        /// Byte offset at which input ran out.
        offset: u64,
        /// What was being read.
        context: &'static str,
    },
    /// The decoded events do not form a well-formed trace (eager
    /// [`read_stb`] only; [`StbReader`] leaves validation to its consumer).
    Malformed(TraceError),
}

impl fmt::Display for StbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StbError::Io(e) => write!(f, "i/o error: {e}"),
            StbError::BadMagic { found } => write!(
                f,
                "not an STB stream: expected magic {STB_MAGIC:02x?}, found {found:02x?}"
            ),
            StbError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported STB version {v} (this reader understands 1 through 3)"
                )
            }
            StbError::UnknownFlags(flags) => {
                write!(f, "unknown STB header flags {flags:#010b}")
            }
            StbError::Corrupt { offset, message } => {
                write!(f, "corrupt STB stream at byte {offset}: {message}")
            }
            StbError::Truncated { offset, context } => {
                write!(
                    f,
                    "truncated STB stream at byte {offset} while reading {context}"
                )
            }
            StbError::Malformed(e) => write!(f, "malformed trace: {e}"),
        }
    }
}

impl Error for StbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StbError::Io(e) => Some(e),
            StbError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StbError {
    fn from(e: io::Error) -> Self {
        StbError::Io(e)
    }
}

impl From<TraceError> for StbError {
    fn from(e: TraceError) -> Self {
        StbError::Malformed(e)
    }
}

// ---------------------------------------------------------------------------
// Varint primitives (LEB128 u64, zigzag i64).

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 u64 from `bytes` starting at `*pos` (offsets relative to
/// `base` for error reporting).
fn read_varint(
    bytes: &[u8],
    pos: &mut usize,
    base: u64,
    context: &'static str,
) -> Result<u64, StbError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(StbError::Truncated {
                offset: base + *pos as u64,
                context,
            });
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(StbError::Corrupt {
                offset: base + *pos as u64 - 1,
                message: format!("varint overflows 64 bits while reading {context}"),
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads one varint directly from a counting reader (used for frame lengths,
/// where the payload is not yet buffered).
fn read_varint_io<R: Read>(
    r: &mut CountingReader<R>,
    context: &'static str,
) -> Result<Option<u64>, StbError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact_or_eof(&mut byte)? {
            true => {}
            false => {
                if first {
                    return Ok(None); // clean EOF at a frame boundary
                }
                return Err(StbError::Truncated {
                    offset: r.offset(),
                    context,
                });
            }
        }
        first = false;
        let byte = byte[0];
        if shift == 63 && byte > 1 {
            return Err(StbError::Corrupt {
                offset: r.offset() - 1,
                message: format!("varint overflows 64 bits while reading {context}"),
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
    }
}

/// A reader that tracks the absolute byte offset, so every decode error can
/// name the position it happened at.
struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> CountingReader<R> {
    fn new(inner: R) -> Self {
        CountingReader { inner, offset: 0 }
    }

    fn offset(&self) -> u64 {
        self.offset
    }

    /// Fills `buf` completely, or returns `Ok(false)` on clean EOF at the
    /// first byte. EOF mid-buffer is an error (`Truncated` is raised by the
    /// caller, which knows the context).
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> io::Result<bool> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(false),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "unexpected end of STB stream",
                    ))
                }
                Ok(n) => {
                    filled += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    fn read_exact(&mut self, buf: &mut [u8], context: &'static str) -> Result<(), StbError> {
        match self.read_exact_or_eof(buf) {
            Ok(true) => Ok(()),
            Ok(false) => Err(StbError::Truncated {
                offset: self.offset,
                context,
            }),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(StbError::Truncated {
                offset: self.offset,
                context,
            }),
            Err(e) => Err(StbError::Io(e)),
        }
    }
}

// ---------------------------------------------------------------------------
// Event codec: op tags and per-chunk delta state.

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_ACQUIRE: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_FORK: u8 = 4;
const TAG_JOIN: u8 = 5;
const TAG_VREAD: u8 = 6;
const TAG_VWRITE: u8 = 7;
// Version-2 tags (the 4-bit tag field); the head delta of TAG_WAIT targets
// the condvar register, and a second varint (the monitor's delta against
// the lock register) follows the head.
const TAG_WAIT: u8 = 8;
const TAG_NOTIFY: u8 = 9;
const TAG_NOTIFY_ALL: u8 = 10;
const TAG_BARRIER_ENTER: u8 = 11;
const TAG_BARRIER_EXIT: u8 = 12;
const MAX_TAG_V2: u8 = TAG_BARRIER_EXIT;
// Version-3 tags: the reader-writer-lock operations, delta-coded against
// the lock register like `acq`/`rel`. They fill the 4-bit tag space.
const TAG_ACQ_READ: u8 = 13;
const TAG_ACQ_WRITE: u8 = 14;
const TAG_TRY_FAIL: u8 = 15;
const MAX_TAG_V3: u8 = TAG_TRY_FAIL;

/// Returns `true` for operations only the v2 chunk grammar can encode.
fn op_needs_v2(op: &Op) -> bool {
    matches!(
        op,
        Op::Wait(..) | Op::Notify(_) | Op::NotifyAll(_) | Op::BarrierEnter(_) | Op::BarrierExit(_)
    )
}

/// Returns `true` for operations only the v3 chunk grammar can encode.
fn op_needs_v3(op: &Op) -> bool {
    matches!(op, Op::AcqRead(_) | Op::AcqWrite(_) | Op::TryAcqFail(_))
}

/// The lowest STB version whose chunk grammar can express every event in
/// `events` — the writer's "lowest expressible version" invariant, which
/// keeps recordings of old traces byte-identical across revisions.
fn needed_version(events: &[Event]) -> u8 {
    let mut version = STB_VERSION;
    for e in events {
        if op_needs_v3(&e.op) {
            return STB_VERSION_3;
        }
        if op_needs_v2(&e.op) {
            version = STB_VERSION_2;
        }
    }
    version
}

/// The largest op tag a version's chunk grammar defines.
fn max_tag(version: u8) -> u8 {
    match version {
        STB_VERSION => TAG_VWRITE,
        STB_VERSION_2 => MAX_TAG_V2,
        _ => MAX_TAG_V3,
    }
}

/// Delta-compression state, reset at every chunk boundary so chunks decode
/// independently (which is what makes skip-and-resume sound).
#[derive(Clone, Copy, Debug, Default)]
struct DeltaState {
    var: u32,
    lock: u32,
    thread: u32,
    volatile: u32,
    condvar: u32,
    barrier: u32,
    loc: u32,
}

impl DeltaState {
    /// Splits an op into its tag and the previous-target register it deltas
    /// against, returning `(tag, prev, raw_target)`. For [`Op::Wait`] the
    /// registered target is the condvar; the monitor is the extra operand
    /// handled by the caller against the lock register.
    fn op_parts(&mut self, op: &Op) -> (u8, &mut u32, u32) {
        match op {
            Op::Read(x) => (TAG_READ, &mut self.var, x.raw()),
            Op::Write(x) => (TAG_WRITE, &mut self.var, x.raw()),
            Op::Acquire(m) => (TAG_ACQUIRE, &mut self.lock, m.raw()),
            Op::Release(m) => (TAG_RELEASE, &mut self.lock, m.raw()),
            Op::Fork(t) => (TAG_FORK, &mut self.thread, t.raw()),
            Op::Join(t) => (TAG_JOIN, &mut self.thread, t.raw()),
            Op::VolatileRead(v) => (TAG_VREAD, &mut self.volatile, v.raw()),
            Op::VolatileWrite(v) => (TAG_VWRITE, &mut self.volatile, v.raw()),
            Op::Wait(c, _) => (TAG_WAIT, &mut self.condvar, c.raw()),
            Op::Notify(c) => (TAG_NOTIFY, &mut self.condvar, c.raw()),
            Op::NotifyAll(c) => (TAG_NOTIFY_ALL, &mut self.condvar, c.raw()),
            Op::BarrierEnter(b) => (TAG_BARRIER_ENTER, &mut self.barrier, b.raw()),
            Op::BarrierExit(b) => (TAG_BARRIER_EXIT, &mut self.barrier, b.raw()),
            Op::AcqRead(m) => (TAG_ACQ_READ, &mut self.lock, m.raw()),
            Op::AcqWrite(m) => (TAG_ACQ_WRITE, &mut self.lock, m.raw()),
            Op::TryAcqFail(m) => (TAG_TRY_FAIL, &mut self.lock, m.raw()),
        }
    }

    fn register_for(&mut self, tag: u8) -> &mut u32 {
        match tag {
            TAG_READ | TAG_WRITE => &mut self.var,
            TAG_ACQUIRE | TAG_RELEASE | TAG_ACQ_READ | TAG_ACQ_WRITE | TAG_TRY_FAIL => {
                &mut self.lock
            }
            TAG_FORK | TAG_JOIN => &mut self.thread,
            TAG_VREAD | TAG_VWRITE => &mut self.volatile,
            TAG_WAIT | TAG_NOTIFY | TAG_NOTIFY_ALL => &mut self.condvar,
            _ => &mut self.barrier,
        }
    }
}

/// The head-varint layout parameters of a version: the tag field is 3 bits
/// wide in v1 and 4 bits in v2 (making room for the condvar/barrier tags),
/// with `has_loc` just above it and the zigzag target delta above that.
#[inline]
fn tag_bits(version: u8) -> u32 {
    if version >= STB_VERSION_2 {
        4
    } else {
        3
    }
}

/// Encodes a burst of same-thread events as one run into `out`.
fn encode_run(
    out: &mut Vec<u8>,
    version: u8,
    tid: ThreadId,
    events: &[Event],
    state: &mut DeltaState,
) {
    debug_assert!(!events.is_empty());
    let bits = tag_bits(version);
    push_varint(out, u64::from(tid.raw()));
    push_varint(out, events.len() as u64);
    for e in events {
        let (tag, prev, target) = state.op_parts(&e.op);
        debug_assert!(tag <= max_tag(version));
        let delta = i64::from(target) - i64::from(*prev);
        *prev = target;
        let has_loc = u64::from(!e.loc.is_unknown());
        push_varint(
            out,
            zigzag(delta) << (bits + 1) | has_loc << bits | u64::from(tag),
        );
        if let Op::Wait(_, m) = e.op {
            let lock_delta = i64::from(m.raw()) - i64::from(state.lock);
            state.lock = m.raw();
            push_varint(out, zigzag(lock_delta));
        }
        if has_loc == 1 {
            let loc_delta = i64::from(e.loc.raw()) - i64::from(state.loc);
            state.loc = e.loc.raw();
            push_varint(out, zigzag(loc_delta));
        }
    }
}

fn id_from_i64(v: i64, offset: u64, what: &str) -> Result<u32, StbError> {
    u32::try_from(v).map_err(|_| StbError::Corrupt {
        offset,
        message: format!("{what} delta decodes to {v}, outside the u32 id range"),
    })
}

/// Decodes the payload of one chunk into `sink`. `version` selects the
/// chunk grammar (v1: 3-bit tags; v2: 4-bit tags plus the condvar/barrier
/// operations); `expected` is the frame's declared event count; `base` the
/// absolute offset of the payload's first byte.
fn decode_chunk(
    payload: &[u8],
    version: u8,
    expected: u64,
    base: u64,
    mut sink: impl FnMut(Event),
) -> Result<(), StbError> {
    let bits = tag_bits(version);
    let max_tag = max_tag(version);
    let mut state = DeltaState::default();
    let mut pos = 0usize;
    let mut decoded: u64 = 0;
    while decoded < expected {
        let tid = read_varint(payload, &mut pos, base, "run thread id")?;
        let tid = u32::try_from(tid).map_err(|_| StbError::Corrupt {
            offset: base + pos as u64,
            message: format!("run thread id {tid} outside the u32 id range"),
        })?;
        let run_len = read_varint(payload, &mut pos, base, "run length")?;
        if run_len == 0 {
            return Err(StbError::Corrupt {
                offset: base + pos as u64,
                message: "zero-length run".to_string(),
            });
        }
        if run_len > expected - decoded {
            return Err(StbError::Corrupt {
                offset: base + pos as u64,
                message: format!(
                    "run of {run_len} events overflows the chunk's declared count \
                     ({decoded} of {expected} decoded)"
                ),
            });
        }
        for _ in 0..run_len {
            let head = read_varint(payload, &mut pos, base, "event header")?;
            let tag = (head & ((1 << bits) - 1)) as u8;
            let has_loc = head & (1 << bits) != 0;
            let delta = unzigzag(head >> (bits + 1));
            let here = base + pos as u64;
            if tag > max_tag {
                return Err(StbError::Corrupt {
                    offset: here,
                    message: format!("unknown op tag {tag} (version {version})"),
                });
            }
            let prev = state.register_for(tag);
            let target = id_from_i64(i64::from(*prev) + delta, here, "target id")?;
            *prev = target;
            let op = match tag {
                TAG_READ => Op::Read(VarId::new(target)),
                TAG_WRITE => Op::Write(VarId::new(target)),
                TAG_ACQUIRE => Op::Acquire(LockId::new(target)),
                TAG_RELEASE => Op::Release(LockId::new(target)),
                TAG_FORK => Op::Fork(ThreadId::new(target)),
                TAG_JOIN => Op::Join(ThreadId::new(target)),
                TAG_VREAD => Op::VolatileRead(VarId::new(target)),
                TAG_VWRITE => Op::VolatileWrite(VarId::new(target)),
                TAG_WAIT => {
                    let lock_delta =
                        unzigzag(read_varint(payload, &mut pos, base, "wait monitor delta")?);
                    let m = id_from_i64(i64::from(state.lock) + lock_delta, here, "monitor id")?;
                    state.lock = m;
                    Op::Wait(CondId::new(target), LockId::new(m))
                }
                TAG_NOTIFY => Op::Notify(CondId::new(target)),
                TAG_NOTIFY_ALL => Op::NotifyAll(CondId::new(target)),
                TAG_BARRIER_ENTER => Op::BarrierEnter(BarrierId::new(target)),
                TAG_BARRIER_EXIT => Op::BarrierExit(BarrierId::new(target)),
                TAG_ACQ_READ => Op::AcqRead(LockId::new(target)),
                TAG_ACQ_WRITE => Op::AcqWrite(LockId::new(target)),
                _ => Op::TryAcqFail(LockId::new(target)),
            };
            let loc = if has_loc {
                let loc_delta = unzigzag(read_varint(payload, &mut pos, base, "location delta")?);
                let loc = id_from_i64(i64::from(state.loc) + loc_delta, here, "location")?;
                state.loc = loc;
                Loc::new(loc)
            } else {
                Loc::UNKNOWN
            };
            sink(Event::with_loc(ThreadId::new(tid), op, loc));
        }
        decoded += run_len;
    }
    if pos != payload.len() {
        return Err(StbError::Corrupt {
            offset: base + pos as u64,
            message: format!(
                "{} trailing byte(s) after the chunk's {expected} declared event(s)",
                payload.len() - pos
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Writer.

/// A streaming STB encoder usable as a recording sink: push events with
/// [`write`](StbWriter::write), close the stream with
/// [`finish`](StbWriter::finish).
///
/// Events are buffered into chunks of
/// [`chunk_events`](StbWriter::chunk_events) (default
/// [`DEFAULT_CHUNK_EVENTS`]) and flushed a chunk at a time, so memory stays
/// bounded however long the stream runs.
///
/// # Concurrency posture
///
/// `StbWriter` is **single-writer**: it is not `Sync`-aware, holds
/// cross-call encoder state (delta registers, the pending chunk), and
/// assumes one caller issues every `write` in stream order. Concurrent
/// recorders — the live capture frontend's per-thread buffers, say — must
/// funnel through one serializing owner (`smarttrack-capture` wraps the
/// writer in its session's emit mutex and merges per-thread buffers into
/// global order before writing; see `docs/CAPTURE.md`). What the format
/// does *not* require is any global thread contiguity: events of different
/// threads may alternate arbitrarily between (and within) chunks — a
/// same-thread run header just starts a new run, and each chunk's delta
/// state is self-contained — so out-of-order cross-thread flush
/// interleavings cost only encoding density, never decodability.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::binary::{StbReader, StbWriter};
/// use smarttrack_trace::{Event, Op, ThreadId, VarId};
///
/// let mut writer = StbWriter::new(Vec::new());
/// writer.write(&Event::new(ThreadId::new(0), Op::Write(VarId::new(0))))?;
/// writer.write(&Event::new(ThreadId::new(1), Op::Read(VarId::new(0))))?;
/// let bytes = writer.finish()?;
///
/// assert_eq!(StbReader::new(&bytes[..])?.count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct StbWriter<W: Write> {
    out: W,
    pending: Vec<Event>,
    chunk_events: usize,
    /// Reusable frame-encoding buffer (also carries the header bytes until
    /// the first flush).
    scratch: Vec<u8>,
    hint: Option<StbHint>,
    /// The stream version: forced by [`v2`](StbWriter::v2) or a v2-needing
    /// hint; otherwise `None` until the first header emission *decides* it
    /// from the events seen so far (v1 whenever they allow it, keeping
    /// recordings of v1-expressible streams byte-identical across
    /// revisions).
    version: Option<u8>,
    /// Set once header bytes reached the sink, fixing the version for good.
    header_written: bool,
}

impl<W: Write> StbWriter<W> {
    /// Starts an STB stream with no [`StbHint`] (the usual case for a live
    /// recording, where totals are unknown until the stream ends).
    ///
    /// The version is decided when the first chunk is flushed: v1 unless a
    /// condvar/barrier operation was already seen. A v2-only operation
    /// arriving *after* a v1 header went out is an error — a recorder that
    /// may see such operations late should use [`v2`](StbWriter::v2).
    ///
    /// Construction is infallible: the header is buffered and only reaches
    /// the sink with the first chunk flush, so early I/O failures (e.g. an
    /// unwritable file) surface from [`write`](StbWriter::write) /
    /// [`finish`](StbWriter::finish).
    pub fn new(out: W) -> Self {
        Self::start(out, None, None)
    }

    /// Starts an STB stream pinned to version 2, whatever the events: the
    /// right constructor for live recordings that may see a condvar or
    /// barrier operation after the first chunk was flushed.
    pub fn v2(out: W) -> Self {
        Self::start(out, None, Some(STB_VERSION_2))
    }

    /// Starts an STB stream pinned to version 3: for live recordings that
    /// may see a reader-writer-lock or failed-trylock operation (or any
    /// v2-only operation) after the first chunk was flushed.
    pub fn v3(out: W) -> Self {
        Self::start(out, None, Some(STB_VERSION_3))
    }

    /// Starts an STB stream whose header carries `hint` (use when totals
    /// are known up front, e.g. when re-encoding a recorded trace). A hint
    /// declaring condvars or barriers pins the stream to v2.
    pub fn with_hint(out: W, hint: StbHint) -> Self {
        let version = hint.needs_v2().then_some(STB_VERSION_2);
        Self::start(out, Some(hint), version)
    }

    /// Raises the version floor to at least `version` (never lowers a floor
    /// already pinned). [`write_stb`], which sees the whole trace, uses
    /// this to pin v3 when the trace contains reader-writer-lock operations
    /// — the hint's cardinalities cannot express that need, since rwlocks
    /// share the lock id space.
    fn pin_version(mut self, version: u8) -> Self {
        self.version = Some(self.version.map_or(version, |v| v.max(version)));
        self
    }

    fn start(out: W, hint: Option<StbHint>, version: Option<u8>) -> Self {
        StbWriter {
            out,
            pending: Vec::new(),
            chunk_events: DEFAULT_CHUNK_EVENTS,
            scratch: Vec::new(),
            hint,
            version,
            header_written: false,
        }
    }

    /// Appends the header for `version` to the scratch buffer.
    fn push_header(&mut self, version: u8) {
        self.scratch.extend_from_slice(&STB_MAGIC);
        self.scratch.push(version);
        match self.hint {
            None => self.scratch.push(0),
            Some(h) => {
                self.scratch.push(FLAG_HAS_HINT);
                let mut fields = vec![h.events, h.threads, h.vars, h.locks, h.volatiles];
                if version >= STB_VERSION_2 {
                    fields.push(h.condvars);
                    fields.push(h.barriers);
                }
                for v in fields {
                    push_varint(&mut self.scratch, v);
                }
            }
        }
    }

    /// Sets the number of events per chunk (minimum 1). Smaller chunks make
    /// skipping finer-grained; larger chunks compress runs slightly better.
    ///
    /// The value is clamped to [`MAX_CHUNK_EVENTS`] so that even a
    /// worst-case encoding (every event a fresh run with maximal varints)
    /// stays under the readers' per-chunk payload cap — the writer can
    /// never produce a file its own reader refuses.
    pub fn chunk_events(mut self, events: usize) -> Self {
        self.chunk_events = events.clamp(1, MAX_CHUNK_EVENTS);
        self
    }

    /// Appends one event to the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing a completed chunk (the header is
    /// also flushed lazily with the first chunk).
    pub fn write(&mut self, event: &Event) -> io::Result<()> {
        self.pending.push(*event);
        if self.pending.len() >= self.chunk_events {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Encodes `self.pending` as one chunk and writes it (preceded by the
    /// header if this is the first flush).
    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let needed = needed_version(&self.pending);
        if !self.header_written {
            // Until header bytes reach the sink, a pinned floor may still be
            // raised by the events themselves (a pinned-v2 recorder seeing a
            // rwlock op before its first flush upgrades to v3 cleanly).
            self.version = Some(self.version.map_or(needed, |v| v.max(needed)));
        }
        let version = self.version.unwrap_or(STB_VERSION);
        if needed > version {
            let message = if needed >= STB_VERSION_3 {
                "reader-writer-lock/trylock operations need STB v3, but a lower-version \
                 header was already written; construct the recorder with StbWriter::v3"
            } else {
                "condvar/barrier operations need STB v2, but a v1 header was already \
                 written; construct the recorder with StbWriter::v2 (or a hint that \
                 declares the condvar/barrier cardinalities)"
            };
            return Err(io::Error::new(io::ErrorKind::InvalidInput, message));
        }
        if !self.header_written {
            self.push_header(version);
        }
        let mut payload = Vec::with_capacity(self.pending.len() * 3);
        let mut state = DeltaState::default();
        let mut start = 0;
        for i in 1..=self.pending.len() {
            if i == self.pending.len() || self.pending[i].tid != self.pending[start].tid {
                encode_run(
                    &mut payload,
                    version,
                    self.pending[start].tid,
                    &self.pending[start..i],
                    &mut state,
                );
                start = i;
            }
        }
        push_varint(&mut self.scratch, payload.len() as u64);
        push_varint(&mut self.scratch, self.pending.len() as u64);
        self.out.write_all(&self.scratch)?;
        self.out.write_all(&payload)?;
        self.header_written = true;
        self.scratch.clear();
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final (possibly partial) chunk, writes the end-of-stream
    /// terminator, and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        if !self.header_written {
            // Empty stream: the header still has to go out.
            let version = self.version.unwrap_or(STB_VERSION);
            self.push_header(version);
        }
        self.scratch.push(0); // terminator: a zero payload length
        self.out.write_all(&self.scratch)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

// ---------------------------------------------------------------------------
// Reader.

/// A streaming STB decoder: an iterator of [`Event`]s that reads one chunk
/// at a time, so memory stays bounded by the writer's chunk size however
/// large the file.
///
/// The reader performs no trace validation — feed its events to an analysis
/// `Session` (which validates the stream) or to a
/// [`TraceBuilder`]. The eager [`read_stb`] wrapper
/// does the latter for you.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{binary, paper};
///
/// let bytes = binary::to_stb_bytes(&paper::figure1());
/// let mut reader = binary::StbReader::new(&bytes[..])?;
/// assert_eq!(reader.header().hint.unwrap().events, 8);
/// let first = reader.next().unwrap()?;
/// assert_eq!(first.to_string(), "T0:rd(x0)");
/// # Ok::<(), smarttrack_trace::binary::StbError>(())
/// ```
pub struct StbReader<R: Read> {
    input: CountingReader<R>,
    header: StbHeader,
    /// Decoded events of the current chunk, drained front to back.
    chunk: std::vec::IntoIter<Event>,
    /// Set once the terminator (or a fatal error) was seen.
    done: bool,
    /// Events decoded (yielded or skipped) so far.
    position: u64,
}

impl<R: Read> StbReader<R> {
    /// Reads and checks the STB header, leaving the reader positioned at
    /// the first chunk.
    ///
    /// # Errors
    ///
    /// [`StbError::BadMagic`] / [`StbError::UnsupportedVersion`] /
    /// [`StbError::UnknownFlags`] for foreign or future inputs,
    /// [`StbError::Truncated`] if the input ends inside the header.
    pub fn new(input: R) -> Result<Self, StbError> {
        let mut input = CountingReader::new(input);
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic, "magic")?;
        if magic != STB_MAGIC {
            return Err(StbError::BadMagic { found: magic });
        }
        let mut version_flags = [0u8; 2];
        input.read_exact(&mut version_flags, "version and flags")?;
        let [version, flags] = version_flags;
        if !matches!(version, STB_VERSION | STB_VERSION_2 | STB_VERSION_3) {
            return Err(StbError::UnsupportedVersion(version));
        }
        if flags & !KNOWN_FLAGS != 0 {
            return Err(StbError::UnknownFlags(flags));
        }
        let hint = if flags & FLAG_HAS_HINT != 0 {
            let mut fields = [0u64; 7];
            let count = if version >= STB_VERSION_2 { 7 } else { 5 };
            for field in fields.iter_mut().take(count) {
                *field = read_varint_io(&mut input, "header hint")?.ok_or(StbError::Truncated {
                    offset: input.offset(),
                    context: "header hint",
                })?;
            }
            Some(StbHint {
                events: fields[0],
                threads: fields[1],
                vars: fields[2],
                locks: fields[3],
                volatiles: fields[4],
                condvars: fields[5],
                barriers: fields[6],
            })
        } else {
            None
        };
        Ok(StbReader {
            input,
            header: StbHeader { version, hint },
            chunk: Vec::new().into_iter(),
            done: false,
            position: 0,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> &StbHeader {
        &self.header
    }

    /// Number of events decoded (yielded or skipped) so far.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Reads one chunk frame. Returns the payload and its declared event
    /// count, or `None` at the terminator / clean EOF.
    fn next_frame(&mut self) -> Result<Option<(Vec<u8>, u64, u64)>, StbError> {
        let Some(len) = read_varint_io(&mut self.input, "chunk length")? else {
            // Missing terminator: the file was cut at a chunk boundary. Be
            // strict — a truncated recording should not silently pass.
            return Err(StbError::Truncated {
                offset: self.input.offset(),
                context: "chunk length (missing end-of-stream terminator)",
            });
        };
        if len == 0 {
            return Ok(None); // end-of-stream terminator
        }
        if len > MAX_CHUNK_BYTES {
            return Err(StbError::Corrupt {
                offset: self.input.offset(),
                message: format!(
                    "chunk payload of {len} bytes exceeds the {MAX_CHUNK_BYTES}-byte cap"
                ),
            });
        }
        let count = read_varint_io(&mut self.input, "chunk event count")?.ok_or_else(|| {
            StbError::Truncated {
                offset: self.input.offset(),
                context: "chunk event count",
            }
        })?;
        if count == 0 {
            return Err(StbError::Corrupt {
                offset: self.input.offset(),
                message: "chunk declares zero events".to_string(),
            });
        }
        check_chunk_count(count, len, self.input.offset())?;
        let base = self.input.offset();
        let mut payload = vec![0u8; len as usize];
        self.input.read_exact(&mut payload, "chunk payload")?;
        Ok(Some((payload, count, base)))
    }

    /// Loads and decodes the next chunk into the event buffer. Returns
    /// `false` at end of stream.
    fn load_chunk(&mut self) -> Result<bool, StbError> {
        let Some((payload, count, base)) = self.next_frame()? else {
            return Ok(false);
        };
        let mut events = Vec::with_capacity(count as usize);
        decode_chunk(&payload, self.header.version, count, base, |e| {
            events.push(e)
        })?;
        self.chunk = events.into_iter();
        Ok(true)
    }

    /// Skips the next whole chunk without decoding its events (any events
    /// already buffered from the current chunk are dropped first). Returns
    /// the number of events skipped, or `None` at end of stream.
    ///
    /// Skipping is sound because every chunk's delta state is
    /// self-contained; it is how a consumer seeks coarsely into a long
    /// recording (e.g. to resume a windowed analysis).
    ///
    /// # Errors
    ///
    /// Frame-level errors only — the skipped payload is not validated.
    pub fn skip_chunk(&mut self) -> Result<Option<u64>, StbError> {
        let dropped = self.chunk.len() as u64;
        self.chunk = Vec::new().into_iter();
        if dropped > 0 {
            self.position += dropped;
            return Ok(Some(dropped));
        }
        if self.done {
            return Ok(None);
        }
        match self.next_frame() {
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Ok(Some((_, count, _))) => {
                self.position += count;
                Ok(Some(count))
            }
            Err(e) => {
                // Latch end-of-stream, exactly like `next`: after a frame
                // error the byte position is unreliable, and resuming could
                // misread payload bytes as a fresh frame.
                self.done = true;
                Err(e)
            }
        }
    }
}

impl<R: Read> Iterator for StbReader<R> {
    type Item = Result<Event, StbError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(event) = self.chunk.next() {
                self.position += 1;
                return Some(Ok(event));
            }
            if self.done {
                return None;
            }
            match self.load_chunk() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Push-style assembler.

/// How far an [`StbAssembler`] parse attempt got.
enum Advance {
    /// Consumed a header or chunk; try again.
    Progress,
    /// The buffered bytes end mid-structure; wait for more input.
    NeedMore,
    /// The end-of-stream terminator was consumed.
    Done,
}

/// Maps "ran out of buffered bytes" to [`Advance::NeedMore`] unless the
/// caller has declared end of input, in which case the underlying
/// [`StbError::Truncated`] (with its precise offset and context) stands.
fn or_need_more<T>(r: Result<T, StbError>, eof: bool) -> Result<Option<T>, StbError> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(StbError::Truncated { .. }) if !eof => Ok(None),
        Err(e) => Err(e),
    }
}

/// A push-style incremental STB decoder: the inverse control flow of
/// [`StbReader`].
///
/// [`StbReader`] *pulls* from an `impl Read` and blocks until bytes arrive;
/// that is the right shape for files and dedicated sockets, but a server
/// multiplexing many streams over a shared worker pool cannot afford to
/// park a worker thread inside `read`. `StbAssembler` inverts the flow:
/// the owner [`push`es](StbAssembler::push) byte slices as they arrive (cut
/// at *arbitrary* points — mid-header, mid-varint, mid-chunk) and drains
/// decoded events with [`next_event`](StbAssembler::next_event); when the
/// input ends, [`close`](StbAssembler::close) either confirms a
/// well-terminated stream or reports the same precise
/// [`Truncated`](StbError::Truncated) error `StbReader` would have raised.
///
/// Memory stays bounded: at most one chunk frame (≤ 64 MiB payload cap,
/// typically a few KiB; [`with_chunk_cap`](StbAssembler::with_chunk_cap)
/// lowers the bound for untrusted peers) is buffered before it decodes,
/// and decode errors
/// are latched — after the first error the assembler refuses further input
/// rather than resynchronizing on garbage.
///
/// Unlike `StbReader`, which stops at the terminator and leaves any
/// trailing bytes to the underlying reader, the assembler owns its whole
/// input and rejects bytes after the terminator as
/// [`Corrupt`](StbError::Corrupt).
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{binary, paper};
///
/// let trace = paper::figure1();
/// let bytes = binary::to_stb_bytes(&trace);
///
/// // Feed the stream one byte at a time, as a socket might deliver it.
/// let mut assembler = binary::StbAssembler::new();
/// let mut events = Vec::new();
/// for b in &bytes {
///     assembler.push(std::slice::from_ref(b))?;
///     while let Some(event) = assembler.next_event() {
///         events.push(event);
///     }
/// }
/// assembler.close()?;
/// assert_eq!(events, trace.events());
/// # Ok::<(), binary::StbError>(())
/// ```
pub struct StbAssembler {
    /// Raw bytes not yet parsed; `buf[start..]` is live, the prefix is
    /// already-consumed garbage awaiting compaction.
    buf: Vec<u8>,
    start: usize,
    /// Absolute stream offset of `buf[start]` — keeps error offsets
    /// identical to what `StbReader` reports on the same byte stream.
    consumed: u64,
    header: Option<StbHeader>,
    /// Decoded events awaiting [`next_event`](StbAssembler::next_event).
    events: std::collections::VecDeque<Event>,
    position: u64,
    done: bool,
    poisoned: bool,
    /// Largest chunk payload this consumer accepts (≤ [`MAX_CHUNK_BYTES`]),
    /// and therefore the most it will ever buffer awaiting a decode.
    chunk_cap: u64,
}

impl Default for StbAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl StbAssembler {
    /// An assembler expecting the start of an STB stream.
    pub fn new() -> Self {
        StbAssembler {
            buf: Vec::new(),
            start: 0,
            consumed: 0,
            header: None,
            events: std::collections::VecDeque::new(),
            position: 0,
            done: false,
            poisoned: false,
            chunk_cap: MAX_CHUNK_BYTES,
        }
    }

    /// Lowers the accepted per-chunk payload size below the format's
    /// [`MAX_CHUNK_BYTES`] ceiling (the value is clamped to that range —
    /// the cap can never be raised). A server multiplexing many untrusted
    /// streams sets this near its per-session ingest budget, so no single
    /// stream can pin a 64 MiB reassembly buffer: a chunk declaring more
    /// is rejected as [`Corrupt`](StbError::Corrupt) the moment its
    /// length prefix parses, before any payload is buffered.
    #[must_use]
    pub fn with_chunk_cap(mut self, cap: u64) -> Self {
        self.chunk_cap = cap.clamp(1, MAX_CHUNK_BYTES);
        self
    }

    /// The decoded header, once enough bytes have arrived to parse it.
    pub fn header(&self) -> Option<&StbHeader> {
        self.header.as_ref()
    }

    /// Number of events decoded so far (queued or already drained).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// True once the end-of-stream terminator has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Bytes pushed but not yet parsed (bounded by one chunk frame plus
    /// whatever the owner pushes between chunks).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Appends `bytes` (split anywhere) and decodes every complete
    /// structure they finish. Decoded events queue up for
    /// [`next_event`](StbAssembler::next_event).
    ///
    /// # Errors
    ///
    /// Any header or chunk error [`StbReader`] would raise at the same
    /// offset, plus [`Corrupt`](StbError::Corrupt) for bytes after the
    /// terminator. Errors are latched: every later call fails too.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), StbError> {
        self.check_poison()?;
        if self.done && !bytes.is_empty() {
            return self.poison(trailing_error(self.consumed, bytes.len()));
        }
        self.buf.extend_from_slice(bytes);
        loop {
            match self.advance(false) {
                Ok(Advance::Progress) => {}
                Ok(Advance::NeedMore) => return Ok(()),
                Ok(Advance::Done) => {
                    let trailing = self.buf.len() - self.start;
                    if trailing > 0 {
                        return self.poison(trailing_error(self.consumed, trailing));
                    }
                    return Ok(());
                }
                Err(e) => return self.poison(e),
            }
        }
    }

    /// Pops the next decoded event, or `None` if decoding is waiting on
    /// more input (or the stream is finished).
    pub fn next_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    /// Declares end of input. On a well-terminated stream this returns the
    /// total decoded event count; on a stream cut mid-structure it returns
    /// the precise [`Truncated`](StbError::Truncated) error, naming the
    /// byte offset and what was being read when the bytes ran out.
    ///
    /// # Errors
    ///
    /// [`Truncated`](StbError::Truncated) (or any latched earlier error).
    pub fn close(&mut self) -> Result<u64, StbError> {
        self.check_poison()?;
        loop {
            match self.advance(true) {
                Ok(Advance::Progress) => {}
                Ok(Advance::NeedMore) => unreachable!("advance(eof) never defers"),
                Ok(Advance::Done) => {
                    let trailing = self.buf.len() - self.start;
                    if trailing > 0 {
                        return self.poison(trailing_error(self.consumed, trailing));
                    }
                    return Ok(self.position);
                }
                Err(e) => return self.poison(e),
            }
        }
    }

    fn check_poison(&self) -> Result<(), StbError> {
        if self.poisoned {
            return Err(StbError::Corrupt {
                offset: self.consumed,
                message: "assembler already failed; the stream cannot continue".to_string(),
            });
        }
        Ok(())
    }

    fn poison<T>(&mut self, e: StbError) -> Result<T, StbError> {
        self.poisoned = true;
        Err(e)
    }

    /// Marks `n` bytes as parsed and compacts the buffer once the dead
    /// prefix is worth reclaiming.
    fn consume(&mut self, n: usize) {
        self.start += n;
        self.consumed += n as u64;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Attempts to parse one structure (header, chunk, or terminator) from
    /// the buffered bytes. With `eof` set, incomplete input is an error
    /// instead of [`Advance::NeedMore`].
    fn advance(&mut self, eof: bool) -> Result<Advance, StbError> {
        if self.done {
            return Ok(Advance::Done);
        }
        if self.header.is_none() {
            return self.advance_header(eof);
        }
        self.advance_chunk(eof)
    }

    fn advance_header(&mut self, eof: bool) -> Result<Advance, StbError> {
        let bytes = &self.buf[self.start..];
        let base = self.consumed;
        if bytes.len() < 4 {
            if eof {
                return Err(StbError::Truncated {
                    offset: base + bytes.len() as u64,
                    context: "magic",
                });
            }
            return Ok(Advance::NeedMore);
        }
        let magic: [u8; 4] = bytes[..4].try_into().expect("four bytes");
        if magic != STB_MAGIC {
            return Err(StbError::BadMagic { found: magic });
        }
        if bytes.len() < 6 {
            if eof {
                return Err(StbError::Truncated {
                    offset: base + bytes.len() as u64,
                    context: "version and flags",
                });
            }
            return Ok(Advance::NeedMore);
        }
        let (version, flags) = (bytes[4], bytes[5]);
        if !matches!(version, STB_VERSION | STB_VERSION_2 | STB_VERSION_3) {
            return Err(StbError::UnsupportedVersion(version));
        }
        if flags & !KNOWN_FLAGS != 0 {
            return Err(StbError::UnknownFlags(flags));
        }
        let mut pos = 6usize;
        let hint = if flags & FLAG_HAS_HINT != 0 {
            let mut fields = [0u64; 7];
            let count = if version >= STB_VERSION_2 { 7 } else { 5 };
            for field in fields.iter_mut().take(count) {
                match or_need_more(read_varint(bytes, &mut pos, base, "header hint"), eof)? {
                    Some(v) => *field = v,
                    None => return Ok(Advance::NeedMore),
                }
            }
            Some(StbHint {
                events: fields[0],
                threads: fields[1],
                vars: fields[2],
                locks: fields[3],
                volatiles: fields[4],
                condvars: fields[5],
                barriers: fields[6],
            })
        } else {
            None
        };
        self.header = Some(StbHeader { version, hint });
        self.consume(pos);
        Ok(Advance::Progress)
    }

    fn advance_chunk(&mut self, eof: bool) -> Result<Advance, StbError> {
        let bytes = &self.buf[self.start..];
        let base = self.consumed;
        let mut pos = 0usize;
        if eof && bytes.is_empty() {
            // Clean end at a frame boundary without the terminator: the
            // same strict error `StbReader` raises.
            return Err(StbError::Truncated {
                offset: base,
                context: "chunk length (missing end-of-stream terminator)",
            });
        }
        let Some(len) = or_need_more(read_varint(bytes, &mut pos, base, "chunk length"), eof)?
        else {
            return Ok(Advance::NeedMore);
        };
        if len == 0 {
            self.done = true;
            self.consume(pos);
            return Ok(Advance::Done);
        }
        if len > self.chunk_cap {
            return Err(StbError::Corrupt {
                offset: base + pos as u64,
                message: format!(
                    "chunk payload of {len} bytes exceeds the {}-byte cap",
                    self.chunk_cap
                ),
            });
        }
        let Some(count) =
            or_need_more(read_varint(bytes, &mut pos, base, "chunk event count"), eof)?
        else {
            return Ok(Advance::NeedMore);
        };
        if count == 0 {
            return Err(StbError::Corrupt {
                offset: base + pos as u64,
                message: "chunk declares zero events".to_string(),
            });
        }
        check_chunk_count(count, len, base + pos as u64)?;
        let len = len as usize;
        if bytes.len() - pos < len {
            if eof {
                return Err(StbError::Truncated {
                    offset: base + bytes.len() as u64,
                    context: "chunk payload",
                });
            }
            return Ok(Advance::NeedMore);
        }
        let payload_base = base + pos as u64;
        let version = self.header.as_ref().expect("header parsed").version;
        let mut decoded = Vec::with_capacity(count as usize);
        decode_chunk(&bytes[pos..pos + len], version, count, payload_base, |e| {
            decoded.push(e)
        })?;
        self.events.extend(decoded);
        self.position += count;
        self.consume(pos + len);
        Ok(Advance::Progress)
    }
}

fn trailing_error(offset: u64, trailing: usize) -> StbError {
    StbError::Corrupt {
        offset,
        message: format!("{trailing} byte(s) after the end-of-stream terminator"),
    }
}

// ---------------------------------------------------------------------------
// Eager faces.

/// Writes `trace` to `out` as an STB stream, header hint included.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{binary, paper};
///
/// let bytes = binary::write_stb(&paper::figure1(), Vec::new())?;
/// assert!(bytes.starts_with(&binary::STB_MAGIC));
/// assert_eq!(binary::read_stb(&bytes[..])?, paper::figure1());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_stb<W: Write>(trace: &Trace, out: W) -> io::Result<W> {
    let mut writer = StbWriter::with_hint(out, StbHint::of_trace(trace));
    // The hint cannot express v3-need (rwlocks share the lock id space), and
    // a v3 op may first appear past the first chunk — scan the whole trace
    // and pin the version up front.
    if trace.events().iter().any(|e| op_needs_v3(&e.op)) {
        writer = writer.pin_version(STB_VERSION_3);
    }
    for event in trace.events() {
        writer.write(event)?;
    }
    writer.finish()
}

/// Reads a whole STB stream into a validated [`Trace`].
///
/// # Errors
///
/// Decode errors as [`StbError`]; [`StbError::Malformed`] if the decoded
/// events violate trace well-formedness.
pub fn read_stb<R: Read>(input: R) -> Result<Trace, StbError> {
    let mut reader = StbReader::new(input)?;
    let mut builder = TraceBuilder::new();
    for event in &mut reader {
        builder.push_event(event?)?;
    }
    if let Some(hint) = reader.header().hint {
        if hint.events != builder.len() as u64 {
            return Err(StbError::Corrupt {
                offset: reader.input.offset(),
                message: format!(
                    "header hint declares {} events but the stream carries {}",
                    hint.events,
                    builder.len()
                ),
            });
        }
    }
    Ok(builder.finish())
}

/// [`write_stb`] into a fresh byte vector.
pub fn to_stb_bytes(trace: &Trace) -> Vec<u8> {
    write_stb(trace, Vec::new()).expect("writing to a Vec cannot fail")
}

/// [`read_stb`] from a byte slice.
///
/// # Errors
///
/// Same as [`read_stb`].
pub fn from_stb_bytes(bytes: &[u8]) -> Result<Trace, StbError> {
    read_stb(bytes)
}

/// Writes a trace to an STB file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_stb_file<P: AsRef<std::path::Path>>(trace: &Trace, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = io::BufWriter::new(file);
    write_stb(trace, &mut out)?;
    out.flush()
}

/// Reads a trace from an STB file.
///
/// # Errors
///
/// I/O errors as [`StbError::Io`]; decode errors as the other variants.
pub fn read_stb_file<P: AsRef<std::path::Path>>(path: P) -> Result<Trace, StbError> {
    let file = std::fs::File::open(path)?;
    read_stb(io::BufReader::new(file))
}

impl Trace {
    /// Serializes this trace as STB (see [`binary`](crate::binary)).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_stb<W: Write>(&self, out: W) -> io::Result<W> {
        write_stb(self, out)
    }

    /// Reads a trace from an STB stream (see [`binary`](crate::binary)).
    ///
    /// # Errors
    ///
    /// Same as [`read_stb`].
    pub fn read_stb<R: Read>(input: R) -> Result<Self, StbError> {
        read_stb(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RandomTraceSpec;
    use crate::paper;

    #[test]
    fn round_trips_paper_figures() {
        for (name, tr) in paper::all_figures() {
            let bytes = to_stb_bytes(&tr);
            let back = from_stb_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, tr, "{name}");
        }
    }

    #[test]
    fn round_trips_random_traces_across_chunk_sizes() {
        for seed in 0..6 {
            let tr = RandomTraceSpec {
                events: 700,
                volatiles: 2,
                volatile_prob: 0.05,
                fork_join: true,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            for chunk in [1, 3, 64, 4096] {
                let mut w =
                    StbWriter::with_hint(Vec::new(), StbHint::of_trace(&tr)).chunk_events(chunk);
                for e in tr.events() {
                    w.write(e).unwrap();
                }
                let bytes = w.finish().unwrap();
                assert_eq!(
                    from_stb_bytes(&bytes).expect("round trip"),
                    tr,
                    "seed {seed} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn cross_thread_flush_interleavings_stay_decodable_and_validator_clean() {
        // The single-writer posture (see the StbWriter docs) promises that
        // arbitrary cross-thread alternation — the worst case a capture
        // session's out-of-order per-thread flushes can funnel into the
        // writer — costs only density, never decodability: run headers
        // never assume global thread contiguity, and each chunk's delta
        // state is self-contained. Interleave singleton same-thread runs
        // from many threads across tiny v2 chunks and round-trip.
        let mut b = crate::TraceBuilder::new();
        let threads = 5u32;
        for t in 0..threads {
            b.push(ThreadId::new(0), Op::Fork(ThreadId::new(t + 1)))
                .unwrap();
        }
        // Every event switches threads, so every same-thread run is a
        // singleton; each thread works its own lock to keep the stream
        // lock-discipline clean. Rounds mix v1 ops with v2 condvar and
        // barrier ops.
        for round in 0..12u32 {
            for phase in 0..4u32 {
                for t in 1..=threads {
                    let tid = ThreadId::new(t);
                    let own = crate::LockId::new(t);
                    match phase {
                        0 => b.push(tid, Op::Acquire(own)).unwrap(),
                        1 => b.push(tid, Op::Write(VarId::new((round + t) % 7))).unwrap(),
                        2 => b.push(tid, Op::Release(own)).unwrap(),
                        _ => b.push(tid, Op::Notify(crate::CondId::new(t % 2))).unwrap(),
                    };
                }
            }
            // A full rendezvous with interleaved enters and exits.
            let bar = crate::BarrierId::new(round % 2);
            for t in 1..=threads {
                b.push(ThreadId::new(t), Op::BarrierEnter(bar)).unwrap();
            }
            for t in 1..=threads {
                b.push(ThreadId::new(t), Op::BarrierExit(bar)).unwrap();
            }
        }
        let tr = b.finish();
        for chunk in [1, 2, 7, 64] {
            let mut w = StbWriter::v2(Vec::new()).chunk_events(chunk);
            for e in tr.events() {
                w.write(e).unwrap();
            }
            let bytes = w.finish().unwrap();
            // from_stb_bytes replays the stream through TraceBuilder, so a
            // successful decode is also a validator-clean certificate.
            assert_eq!(from_stb_bytes(&bytes).expect("decode"), tr, "chunk {chunk}");
        }
    }

    #[test]
    fn same_thread_runs_cost_a_few_bytes_per_event() {
        // A single-thread burst with clustered variables and locations: the
        // motivating case. Budget: header + ~3 bytes/event.
        let mut b = crate::TraceBuilder::new();
        for i in 0..1000u32 {
            b.push_at(
                ThreadId::new(0),
                Op::Write(VarId::new(i % 8)),
                Loc::new(100 + i % 4),
            )
            .unwrap();
        }
        let tr = b.finish();
        let bytes = to_stb_bytes(&tr);
        assert!(
            bytes.len() <= 24 + 3 * tr.len(),
            "{} bytes for {} events",
            bytes.len(),
            tr.len()
        );
        // And much smaller than the text rendering.
        assert!(bytes.len() * 4 < crate::fmt::render(&tr).len());
    }

    #[test]
    fn empty_trace_round_trips() {
        let tr = Trace::default();
        let bytes = to_stb_bytes(&tr);
        assert_eq!(from_stb_bytes(&bytes).unwrap(), tr);
    }

    #[test]
    fn streaming_writer_without_hint_omits_it() {
        let mut w = StbWriter::new(Vec::new());
        w.write(&Event::new(ThreadId::new(0), Op::Write(VarId::new(0))))
            .unwrap();
        let bytes = w.finish().unwrap();
        let reader = StbReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.header().hint, None);
        assert_eq!(reader.count(), 1);
    }

    #[test]
    fn reader_reports_position_and_header() {
        let tr = paper::figure2();
        let bytes = to_stb_bytes(&tr);
        let mut reader = StbReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.position(), 0);
        let hint = reader.header().hint.expect("eager writes carry a hint");
        assert_eq!(hint.events, tr.len() as u64);
        assert_eq!(hint.threads, tr.num_threads() as u64);
        reader.next().unwrap().unwrap();
        assert_eq!(reader.position(), 1);
    }

    #[test]
    fn skip_chunk_skips_whole_chunks() {
        let tr = RandomTraceSpec {
            events: 100,
            ..RandomTraceSpec::default()
        }
        .generate(9);
        let mut w = StbWriter::new(Vec::new()).chunk_events(40);
        for e in tr.events() {
            w.write(e).unwrap();
        }
        let bytes = w.finish().unwrap();

        let mut reader = StbReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.skip_chunk().unwrap(), Some(40));
        let rest: Result<Vec<_>, _> = (&mut reader).collect();
        assert_eq!(rest.unwrap(), &tr.events()[40..]);
        assert_eq!(reader.skip_chunk().unwrap(), None);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = from_stb_bytes(b"T0 wr x0\n").unwrap_err();
        assert!(matches!(err, StbError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn rejects_future_versions_and_unknown_flags() {
        let mut bytes = to_stb_bytes(&paper::figure1());
        bytes[4] = 9;
        assert!(matches!(
            from_stb_bytes(&bytes).unwrap_err(),
            StbError::UnsupportedVersion(9)
        ));
        let mut bytes = to_stb_bytes(&paper::figure1());
        bytes[5] |= 0b1000_0000;
        assert!(matches!(
            from_stb_bytes(&bytes).unwrap_err(),
            StbError::UnknownFlags(_)
        ));
    }

    #[test]
    fn truncation_anywhere_is_a_precise_error_not_a_panic() {
        let bytes = to_stb_bytes(&paper::figure3());
        for cut in 0..bytes.len() {
            match from_stb_bytes(&bytes[..cut]) {
                Err(StbError::Truncated { offset, .. }) => {
                    assert!(offset <= cut as u64, "offset {offset} past cut {cut}")
                }
                Err(other) => panic!("cut at {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut at {cut}: truncated stream decoded"),
            }
        }
    }

    #[test]
    fn corrupt_chunk_declared_counts_are_rejected() {
        let tr = paper::figure1();
        let bytes = to_stb_bytes(&tr);
        // Locate the chunk frame: header is 4 magic + 1 version + 1 flags +
        // 5 hint varints (all small here, 1 byte each) = 11 bytes.
        let frame = 11;
        let mut fewer = bytes.clone();
        // Event count 8 -> 7: either a run now overflows the declared count
        // or bytes trail the last declared event; both are Corrupt.
        fewer[frame + 1] -= 1;
        match from_stb_bytes(&fewer).unwrap_err() {
            StbError::Corrupt { message, .. } => assert!(
                message.contains("trailing") || message.contains("overflows"),
                "{message}"
            ),
            other => panic!("unexpected {other}"),
        }
        let mut more = bytes.clone();
        more[frame + 1] += 1; // event count 8 -> 9: run overflow / truncation
        assert!(from_stb_bytes(&more).is_err());
    }

    #[test]
    fn corrupt_hint_event_count_is_rejected_eagerly() {
        let mut bytes = to_stb_bytes(&paper::figure1());
        bytes[6] += 1; // hint.events (first varint after flags)
        match from_stb_bytes(&bytes).unwrap_err() {
            StbError::Corrupt { message, .. } => {
                assert!(message.contains("header hint declares"), "{message}")
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn oversized_chunk_length_is_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STB_MAGIC);
        bytes.push(STB_VERSION);
        bytes.push(0);
        push_varint(&mut bytes, u64::MAX / 2); // absurd payload length
        match StbReader::new(&bytes[..])
            .unwrap()
            .next()
            .unwrap()
            .unwrap_err()
        {
            StbError::Corrupt { message, .. } => assert!(message.contains("cap"), "{message}"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STB_MAGIC);
        bytes.push(STB_VERSION);
        bytes.push(0);
        bytes.extend_from_slice(&[0xff; 11]); // 11 continuation bytes > 64 bits
        let err = StbReader::new(&bytes[..])
            .unwrap()
            .next()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, StbError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn eager_read_validates_well_formedness() {
        // Encode an ill-formed stream (release of an unheld lock) directly
        // through the streaming writer, which does not validate.
        let mut w = StbWriter::new(Vec::new());
        w.write(&Event::new(ThreadId::new(0), Op::Release(LockId::new(0))))
            .unwrap();
        let bytes = w.finish().unwrap();
        assert!(matches!(
            from_stb_bytes(&bytes).unwrap_err(),
            StbError::Malformed(TraceError::ReleaseUnheldLock { .. })
        ));
        // The streaming reader yields it raw — validation is the consumer's.
        let events: Result<Vec<_>, _> = StbReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(events.unwrap().len(), 1);
    }

    #[test]
    fn trace_inherent_methods_mirror_the_free_functions() {
        let tr = paper::figure4c();
        let bytes = tr.write_stb(Vec::new()).unwrap();
        assert_eq!(Trace::read_stb(&bytes[..]).unwrap(), tr);
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0, 1, -1, i64::MAX, i64::MIN, 12345, -54321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    /// A small trace exercising every v2-only op tag.
    fn sync_trace() -> Trace {
        use crate::{BarrierId, CondId};
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (c0, c1) = (CondId::new(0), CondId::new(1));
        let m = LockId::new(0);
        let bar = BarrierId::new(0);
        let mut b = crate::TraceBuilder::new();
        b.push(t0, Op::Write(VarId::new(0))).unwrap();
        b.push(t0, Op::Notify(c0)).unwrap();
        b.push(t0, Op::NotifyAll(c1)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        b.push_at(t1, Op::Wait(c0, m), Loc::new(7)).unwrap();
        b.push(t1, Op::Read(VarId::new(0))).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        b.push(t0, Op::BarrierEnter(bar)).unwrap();
        b.push(t1, Op::BarrierEnter(bar)).unwrap();
        b.push(t0, Op::BarrierExit(bar)).unwrap();
        b.push(t1, Op::BarrierExit(bar)).unwrap();
        b.finish()
    }

    #[test]
    fn v2_ops_round_trip_and_write_a_v2_header() {
        let tr = sync_trace();
        let bytes = to_stb_bytes(&tr);
        assert_eq!(bytes[4], STB_VERSION_2);
        let reader = StbReader::new(&bytes[..]).unwrap();
        let hint = reader.header().hint.expect("eager writes carry a hint");
        assert_eq!(hint.condvars, 2);
        assert_eq!(hint.barriers, 1);
        assert_eq!(from_stb_bytes(&bytes).unwrap(), tr);
    }

    #[test]
    fn v1_expressible_traces_still_write_v1_bytes() {
        for (name, tr) in paper::all_figures() {
            let bytes = to_stb_bytes(&tr);
            assert_eq!(bytes[4], STB_VERSION, "{name} must stay v1");
        }
    }

    #[test]
    fn v2_round_trips_across_chunk_sizes() {
        let tr = RandomTraceSpec {
            events: 600,
            condvars: 2,
            condvar_prob: 0.1,
            barriers: 2,
            barrier_prob: 0.05,
            volatiles: 1,
            volatile_prob: 0.05,
            ..RandomTraceSpec::default()
        }
        .generate(5);
        assert!(tr.num_condvars() > 0 && tr.num_barriers() > 0);
        for chunk in [1, 3, 64, 4096] {
            let mut w =
                StbWriter::with_hint(Vec::new(), StbHint::of_trace(&tr)).chunk_events(chunk);
            for e in tr.events() {
                w.write(e).unwrap();
            }
            let bytes = w.finish().unwrap();
            assert_eq!(bytes[4], STB_VERSION_2);
            assert_eq!(from_stb_bytes(&bytes).expect("round trip"), tr, "{chunk}");
        }
    }

    #[test]
    fn adaptive_streaming_writer_upgrades_before_the_first_flush() {
        let tr = sync_trace();
        let mut w = StbWriter::new(Vec::new());
        for e in tr.events() {
            w.write(e).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], STB_VERSION_2);
        let events: Result<Vec<_>, _> = StbReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(events.unwrap(), tr.events());
    }

    #[test]
    fn late_v2_op_after_a_v1_header_is_a_clear_error() {
        use crate::CondId;
        // Chunk size 1 flushes a v1 header with the first (v1) event.
        let mut w = StbWriter::new(Vec::new()).chunk_events(1);
        w.write(&Event::new(ThreadId::new(0), Op::Write(VarId::new(0))))
            .unwrap();
        let err = w
            .write(&Event::new(ThreadId::new(0), Op::Notify(CondId::new(0))))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("StbWriter::v2"), "{err}");
        // The pinned-v2 constructor handles the same stream fine.
        let mut w = StbWriter::v2(Vec::new()).chunk_events(1);
        w.write(&Event::new(ThreadId::new(0), Op::Write(VarId::new(0))))
            .unwrap();
        w.write(&Event::new(ThreadId::new(0), Op::Notify(CondId::new(0))))
            .unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], STB_VERSION_2);
        assert_eq!(StbReader::new(&bytes[..]).unwrap().count(), 2);
    }

    /// A small trace exercising every v3-only op tag (plus exclusive locks,
    /// so the shared lock register sees both op families).
    fn rw_trace() -> Trace {
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        let m = LockId::new(0);
        let mut b = crate::TraceBuilder::new();
        b.push(t0, Op::AcqWrite(m)).unwrap();
        b.push(t0, Op::Write(VarId::new(0))).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqRead(m)).unwrap();
        b.push(t2, Op::AcqRead(m)).unwrap();
        b.push_at(t0, Op::TryAcqFail(m), Loc::new(3)).unwrap();
        b.push(t1, Op::Read(VarId::new(0))).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        b.push(t2, Op::Release(m)).unwrap();
        b.push(t0, Op::Acquire(LockId::new(1))).unwrap();
        b.push(t0, Op::Release(LockId::new(1))).unwrap();
        b.finish()
    }

    #[test]
    fn v3_ops_round_trip_and_write_a_v3_header() {
        let tr = rw_trace();
        let bytes = to_stb_bytes(&tr);
        assert_eq!(bytes[4], STB_VERSION_3);
        assert_eq!(from_stb_bytes(&bytes).unwrap(), tr);
        for chunk in [1, 2, 5, 4096] {
            let mut w =
                StbWriter::with_hint(Vec::new(), StbHint::of_trace(&tr)).chunk_events(chunk);
            w = w.pin_version(STB_VERSION_3);
            for e in tr.events() {
                w.write(e).unwrap();
            }
            let bytes = w.finish().unwrap();
            assert_eq!(from_stb_bytes(&bytes).expect("round trip"), tr, "{chunk}");
        }
    }

    #[test]
    fn v3_truncation_anywhere_is_a_precise_error_not_a_panic() {
        let bytes = to_stb_bytes(&rw_trace());
        for cut in 0..bytes.len() {
            match from_stb_bytes(&bytes[..cut]) {
                Err(StbError::Truncated { offset, .. }) => {
                    assert!(offset <= cut as u64, "offset {offset} past cut {cut}")
                }
                Err(other) => panic!("cut at {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut at {cut}: truncated stream decoded"),
            }
        }
    }

    #[test]
    fn condvar_only_traces_still_write_v2_not_v3() {
        let bytes = to_stb_bytes(&sync_trace());
        assert_eq!(bytes[4], STB_VERSION_2);
    }

    #[test]
    fn adaptive_streaming_writer_upgrades_to_v3_before_the_first_flush() {
        let tr = rw_trace();
        let mut w = StbWriter::new(Vec::new());
        for e in tr.events() {
            w.write(e).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], STB_VERSION_3);
        // A pinned-v2 writer likewise upgrades while its header is unsent.
        let mut w = StbWriter::v2(Vec::new());
        for e in tr.events() {
            w.write(e).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], STB_VERSION_3);
        let events: Result<Vec<_>, _> = StbReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(events.unwrap(), tr.events());
    }

    #[test]
    fn late_v3_op_after_a_lower_header_is_a_clear_error() {
        // Chunk size 1 flushes a v1 header with the first (v1) event.
        let mut w = StbWriter::new(Vec::new()).chunk_events(1);
        w.write(&Event::new(ThreadId::new(0), Op::Write(VarId::new(0))))
            .unwrap();
        let err = w
            .write(&Event::new(ThreadId::new(1), Op::AcqRead(LockId::new(0))))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("StbWriter::v3"), "{err}");
        // The pinned-v3 constructor handles the same stream fine.
        let mut w = StbWriter::v3(Vec::new()).chunk_events(1);
        w.write(&Event::new(ThreadId::new(0), Op::Write(VarId::new(0))))
            .unwrap();
        w.write(&Event::new(ThreadId::new(1), Op::AcqRead(LockId::new(0))))
            .unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], STB_VERSION_3);
        assert_eq!(StbReader::new(&bytes[..]).unwrap().count(), 2);
    }

    #[test]
    fn v3_tags_in_a_v2_stream_are_rejected_as_corrupt() {
        // Flip the version byte of a v3 stream down to 2: tags 13–15 are
        // outside the v2 grammar and must decode as Corrupt (never as some
        // other op — both grammars use 4-bit tags, so the bit layout is
        // identical and only the max-tag check distinguishes them).
        let mut bytes = to_stb_bytes(&rw_trace());
        assert_eq!(bytes[4], STB_VERSION_3);
        bytes[4] = STB_VERSION_2;
        match from_stb_bytes(&bytes).unwrap_err() {
            StbError::Corrupt { message, .. } => {
                assert!(message.contains("unknown op tag"), "{message}")
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn assembler_decodes_v3_streams_at_every_split_granularity() {
        let tr = rw_trace();
        let mut w = StbWriter::with_hint(Vec::new(), StbHint::of_trace(&tr))
            .pin_version(STB_VERSION_3)
            .chunk_events(3);
        for e in tr.events() {
            w.write(e).unwrap();
        }
        let bytes = w.finish().unwrap();
        for step in [1, 2, 3, 7, bytes.len()] {
            let events = assemble(&bytes, step).expect("assembles");
            assert_eq!(events, tr.events(), "step {step}");
        }
    }

    #[test]
    fn v2_tags_in_a_v1_stream_are_rejected_as_corrupt() {
        // Hand-craft a v1 chunk whose head varint names tag 7 with a big
        // delta — legal — then check a v2 stream decoding the same bytes
        // yields different ops, proving the grammars are dispatched by
        // version (a v1 reader shifted by 4, a v2 reader by 5).
        let tr = sync_trace();
        let mut bytes = to_stb_bytes(&tr);
        // Flip the version byte of a v2 stream down to 1: the payload now
        // parses under the 3-bit grammar and must NOT silently decode to
        // the same events (usually it errors; a well-formed-but-different
        // decode would break the hint count).
        bytes[4] = STB_VERSION;
        if let Ok(decoded) = from_stb_bytes(&bytes) {
            assert_ne!(decoded, tr, "grammars must differ");
        } // Err: expected — truncated hint / corrupt chunk under v1 rules.
    }

    /// Drains an assembler fed `bytes` in `step`-sized pushes.
    fn assemble(bytes: &[u8], step: usize) -> Result<Vec<Event>, StbError> {
        let mut asm = StbAssembler::new();
        let mut events = Vec::new();
        for piece in bytes.chunks(step.max(1)) {
            asm.push(piece)?;
            while let Some(e) = asm.next_event() {
                events.push(e);
            }
        }
        asm.close()?;
        assert!(asm.is_done());
        assert_eq!(asm.position(), events.len() as u64);
        assert_eq!(asm.buffered_bytes(), 0);
        Ok(events)
    }

    #[test]
    fn assembler_matches_reader_at_every_split_granularity() {
        for tr in [paper::figure1(), sync_trace()] {
            let mut w = StbWriter::with_hint(Vec::new(), StbHint::of_trace(&tr)).chunk_events(3);
            for e in tr.events() {
                w.write(e).unwrap();
            }
            let bytes = w.finish().unwrap();
            for step in [1, 2, 3, 7, 64, bytes.len()] {
                let events = assemble(&bytes, step).expect("assembles");
                assert_eq!(events, tr.events(), "step {step}");
            }
        }
    }

    #[test]
    fn assembler_exposes_the_header_once_parsed() {
        let tr = sync_trace();
        let bytes = to_stb_bytes(&tr);
        let mut asm = StbAssembler::new();
        assert!(asm.header().is_none());
        asm.push(&bytes).unwrap();
        let header = asm.header().expect("header parsed");
        assert_eq!(header.version, STB_VERSION_2);
        assert_eq!(header.hint.unwrap().events, tr.len() as u64);
    }

    #[test]
    fn assembler_truncation_anywhere_matches_reader_errors() {
        let tr = sync_trace();
        let bytes = to_stb_bytes(&tr);
        for cut in 0..bytes.len() {
            let reader_err = (|| -> Result<u64, StbError> {
                let mut n = 0;
                for e in StbReader::new(&bytes[..cut])? {
                    e?;
                    n += 1;
                }
                Err(StbError::Truncated {
                    offset: 0,
                    context: "reader finished a truncated stream",
                })
                .map(|()| n)
            })();
            let asm_err = (|| -> Result<u64, StbError> {
                let mut asm = StbAssembler::new();
                asm.push(&bytes[..cut])?;
                asm.close()
            })();
            let reader_err = reader_err.expect_err("cut streams must fail");
            let asm_err = asm_err.unwrap_err();
            // The reader reads the terminator lazily, so some cuts surface
            // as different *variants* only when the reader never looked at
            // the tail; offsets and contexts must agree whenever both
            // raise Truncated.
            if let (
                StbError::Truncated {
                    offset: ro,
                    context: rc,
                },
                StbError::Truncated {
                    offset: ao,
                    context: ac,
                },
            ) = (&reader_err, &asm_err)
            {
                assert_eq!((ro, rc), (ao, ac), "cut {cut}");
            }
        }
    }

    #[test]
    fn assembler_rejects_trailing_bytes_and_latches_errors() {
        let bytes = to_stb_bytes(&paper::figure1());
        let mut asm = StbAssembler::new();
        asm.push(&bytes).unwrap();
        let err = asm.push(&[0x00]).unwrap_err();
        assert!(matches!(err, StbError::Corrupt { .. }), "{err}");
        // Latched: even a now-harmless call keeps failing.
        let err = asm.close().unwrap_err();
        assert!(err.to_string().contains("already failed"), "{err}");
    }

    #[test]
    fn assembler_rejects_bad_magic_and_oversized_chunks_eagerly() {
        let mut asm = StbAssembler::new();
        let err = asm.push(b"GARB").unwrap_err();
        assert!(matches!(err, StbError::BadMagic { .. }), "{err}");

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STB_MAGIC);
        bytes.push(STB_VERSION);
        bytes.push(0); // no hint
        push_varint(&mut bytes, MAX_CHUNK_BYTES + 1);
        let mut asm = StbAssembler::new();
        let err = asm.push(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("exceeds"),
            "oversized length must be rejected before buffering: {err}"
        );
    }

    #[test]
    fn huge_declared_event_counts_are_rejected_before_allocation() {
        // A ~15-byte frame declaring 2^40 events must yield a Corrupt
        // error, not a terabyte `Vec::with_capacity` (an allocator abort
        // that no catch_unwind can contain). Reader and assembler must
        // agree byte-for-byte on the diagnosis.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STB_MAGIC);
        bytes.push(STB_VERSION);
        bytes.push(0); // no hint
        push_varint(&mut bytes, 8); // chunk payload length
        push_varint(&mut bytes, 1 << 40); // declared event count
        bytes.extend_from_slice(&[0u8; 8]); // payload
        bytes.push(0); // terminator

        let reader_err = StbReader::new(&bytes[..])
            .expect("header parses")
            .find_map(Result::err)
            .expect("reader must reject the count");
        assert!(
            matches!(reader_err, StbError::Corrupt { .. }),
            "{reader_err}"
        );

        let mut asm = StbAssembler::new();
        let asm_err = asm.push(&bytes).unwrap_err();
        assert_eq!(asm_err.to_string(), reader_err.to_string());
    }

    #[test]
    fn event_counts_beyond_the_per_chunk_cap_are_rejected() {
        // `count <= len` alone would still let a dense 64 MiB declaration
        // pre-size a 64 Mi-event buffer; the event cap bounds it. The
        // check fires as soon as the two varints parse — no payload needed.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STB_MAGIC);
        bytes.push(STB_VERSION);
        bytes.push(0);
        push_varint(&mut bytes, MAX_CHUNK_BYTES);
        push_varint(&mut bytes, MAX_CHUNK_EVENTS as u64 + 1);
        let mut asm = StbAssembler::new();
        let err = asm.push(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("events"),
            "event-count cap must be enforced: {err}"
        );
    }

    #[test]
    fn assembler_chunk_cap_bounds_reassembly_buffering() {
        let bytes = to_stb_bytes(&paper::figure1());
        // figure1's single chunk is tiny; a generous cap accepts it…
        let mut asm = StbAssembler::new().with_chunk_cap(1 << 16);
        asm.push(&bytes).unwrap();
        asm.close().unwrap();
        // …and a 4-byte cap rejects the declared length before buffering
        // a single payload byte.
        let mut tight = StbAssembler::new().with_chunk_cap(4);
        let err = tight.push(&bytes).unwrap_err();
        assert!(err.to_string().contains("4-byte cap"), "{err}");
    }

    #[test]
    fn assembler_empty_close_is_a_magic_truncation() {
        let err = StbAssembler::new().close().unwrap_err();
        assert!(
            matches!(
                err,
                StbError::Truncated {
                    offset: 0,
                    context: "magic"
                }
            ),
            "{err}"
        );
    }
}
