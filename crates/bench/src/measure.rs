//! Timing and memory measurement of one analysis run.

use std::time::Instant;

use smarttrack::{AnalysisConfig, FtoCaseCounters, Report};
use smarttrack_detect::run_detector;
use smarttrack_trace::Trace;

/// One measured analysis run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Analysis name.
    pub name: String,
    /// Wall-clock nanoseconds for the full trace.
    pub nanos: u64,
    /// Run time relative to the null pass ("uninstrumented" baseline).
    pub slowdown: f64,
    /// Peak metadata bytes.
    pub peak_bytes: usize,
    /// Peak metadata relative to the trace representation itself.
    pub memory_factor: f64,
    /// Races found.
    pub report: Report,
    /// FTO case counters, when tracked.
    pub cases: Option<FtoCaseCounters>,
}

/// Times a null pass over the trace: iterating the event stream without any
/// analysis — the reproduction's "uninstrumented execution".
pub fn null_pass_nanos(trace: &Trace) -> u64 {
    let start = Instant::now();
    let mut checksum = 0u64;
    for (id, e) in trace.iter() {
        checksum = checksum
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(id.raw() as u64 ^ e.tid.raw() as u64);
    }
    std::hint::black_box(checksum);
    start.elapsed().as_nanos() as u64
}

/// Runs `config` over `trace`, measuring time against `baseline_nanos` and
/// peak metadata against the trace's own footprint.
///
/// # Panics
///
/// Panics if `config` is an N/A cell of Table 1.
pub fn measure_analysis(trace: &Trace, config: AnalysisConfig, baseline_nanos: u64) -> Measurement {
    // Timed pass: pure event processing, no footprint sampling (walking live
    // metadata is measurement instrumentation, not analysis work — the
    // paper's RSS measurement is likewise outside the benchmarked process's
    // critical path).
    let mut det = config
        .detector()
        .unwrap_or_else(|| panic!("{config} is not available"));
    det.prepare(trace);
    let start = Instant::now();
    for (id, event) in trace.iter() {
        det.process(id, event);
    }
    let nanos = start.elapsed().as_nanos() as u64;
    // Memory pass: identical deterministic run with peak sampling.
    let mut det2 = config.detector().expect("checked above");
    let summary = run_detector(det2.as_mut(), trace);
    debug_assert_eq!(
        det.report(),
        det2.report(),
        "analysis must be deterministic"
    );
    let trace_bytes = trace.footprint_bytes().max(1);
    Measurement {
        name: det.name().to_string(),
        nanos,
        slowdown: nanos as f64 / baseline_nanos.max(1) as f64,
        peak_bytes: summary.peak_footprint_bytes,
        memory_factor: summary.peak_footprint_bytes as f64 / trace_bytes as f64,
        report: det.report().clone(),
        cases: det.case_counters().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack::{OptLevel, Relation};
    use smarttrack_trace::gen::RandomTraceSpec;

    #[test]
    fn measurement_produces_positive_factors() {
        let tr = RandomTraceSpec {
            events: 5_000,
            ..RandomTraceSpec::default()
        }
        .generate(1);
        let base = null_pass_nanos(&tr).max(1);
        let m = measure_analysis(
            &tr,
            AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
            base,
        );
        assert!(m.nanos > 0);
        assert!(m.slowdown > 0.0);
        assert!(m.peak_bytes > 0);
        assert_eq!(m.name, "SmartTrack-DC");
    }

    #[test]
    fn unopt_with_graph_uses_more_memory_than_without() {
        let tr = RandomTraceSpec {
            events: 20_000,
            threads: 6,
            locks: 6,
            acquire_prob: 0.15,
            release_prob: 0.18,
            ..RandomTraceSpec::default()
        }
        .generate(5);
        let base = null_pass_nanos(&tr).max(1);
        let with_g = measure_analysis(
            &tr,
            AnalysisConfig::new(Relation::Dc, OptLevel::Unopt).with_graph(),
            base,
        );
        let without = measure_analysis(
            &tr,
            AnalysisConfig::new(Relation::Dc, OptLevel::Unopt),
            base,
        );
        assert!(
            with_g.peak_bytes > without.peak_bytes,
            "graph recording must cost memory ({} vs {})",
            with_g.peak_bytes,
            without.peak_bytes
        );
    }
}
