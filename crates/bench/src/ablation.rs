//! Ablations of the design choices DESIGN.md calls out, plus the §6
//! related-work baselines.
//!
//! 1. **Rule (b) removal** (the WDC contribution, paper §3): per optimization
//!    level, the speedup of dropping DC rule (b) — the answer to the paper's
//!    question "does rule (b) eliminate false races in practice?" is paired
//!    with its cost here (and with race-count equality in Table 7).
//! 2. **CCS fidelity** (DESIGN.md §5): Algorithm 3 exactly as printed
//!    (`Paper`) vs. the conservative refinements (`Strict`, the default):
//!    run-time cost and any divergence in reported races.
//! 3. **Rule (b) queue compaction** (DESIGN.md §5 item 10): the effect of
//!    declaring the thread count up front (`Detector::prepare`), which
//!    enables prefix compaction of the per-(lock, thread) acquire/release
//!    logs.
//! 4. **Related work** (§6): bounded-window exhaustive analysis and Eraser
//!    lockset analysis, run against the same executions as the paper's
//!    matrix.

use std::fmt::Write as _;
use std::time::Instant;

use smarttrack::{analyze, AnalysisConfig, CcsFidelity, OptLevel, Relation};
use smarttrack_detect::{Detector, EraserLockset, SmartTrackDc, SmartTrackWdc};
use smarttrack_vindicate::{WindowedConfig, WindowedRaceAnalysis};
use smarttrack_workloads::{distant_race_trace, profiles};

use crate::stats::sig2;
use crate::tables::ExperimentConfig;

fn timed<D: Detector>(mut det: D, trace: &smarttrack_trace::Trace) -> (u64, usize, usize) {
    det.prepare(trace);
    let start = Instant::now();
    for (id, e) in trace.iter() {
        det.process(id, e);
    }
    (
        start.elapsed().as_nanos() as u64,
        det.report().static_count(),
        det.report().dynamic_count(),
    )
}

/// Ablation 1: cost of DC rule (b), per optimization level (DC time / WDC
/// time on the same traces; >1 means rule (b) costs that factor).
pub fn rule_b_cost(cfg: &ExperimentConfig) -> String {
    let mut out =
        String::from("Ablation: DC rule (b) cost (DC run time / WDC run time; races compared)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8}  {:>14}",
        "program", "Unopt", "FTO", "ST", "extra DC races"
    );
    for w in profiles::all() {
        let trace = w.trace(cfg.scale, cfg.seed);
        let mut ratios = Vec::new();
        let mut race_note = String::from("none");
        for level in [OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack] {
            let time = |relation| {
                let mut det = AnalysisConfig::new(relation, level)
                    .detector()
                    .expect("valid");
                det.prepare(&trace);
                let start = Instant::now();
                for (id, e) in trace.iter() {
                    det.process(id, e);
                }
                (
                    start.elapsed().as_nanos() as u64,
                    det.report().static_count(),
                )
            };
            let (dc_t, dc_races) = time(Relation::Dc);
            let (wdc_t, wdc_races) = time(Relation::Wdc);
            ratios.push(dc_t as f64 / wdc_t.max(1) as f64);
            if wdc_races != dc_races {
                race_note = format!("WDC {wdc_races} vs DC {dc_races}");
            }
        }
        let _ = writeln!(
            out,
            "{:<10} {:>7}× {:>7}× {:>7}×  {:>14}",
            w.name,
            sig2(ratios[0]),
            sig2(ratios[1]),
            sig2(ratios[2]),
            race_note
        );
    }
    out.push_str(
        "\nPaper's finding reproduced when the final column is `none`: removing\n\
         rule (b) costs no precision on these workloads while saving its\n\
         queue machinery (§3, §5.6).\n",
    );
    out
}

/// Ablation 2: Algorithm-3-verbatim (`Paper`) vs the conservative `Strict`
/// CCS fidelity (DESIGN.md §5): run time and reported races.
pub fn ccs_fidelity(cfg: &ExperimentConfig) -> String {
    let mut out = String::from("Ablation: SmartTrack CCS fidelity (Paper vs Strict)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>10} {:>10}",
        "program", "DC paper/strict", "WDC paper/strict", "DC races", "WDC races"
    );
    for w in profiles::all() {
        let trace = w.trace(cfg.scale, cfg.seed);
        let (dc_p, dc_ps, _) = timed(SmartTrackDc::with_fidelity(CcsFidelity::Paper), &trace);
        let (dc_s, dc_ss, _) = timed(SmartTrackDc::with_fidelity(CcsFidelity::Strict), &trace);
        let (wd_p, wd_ps, _) = timed(SmartTrackWdc::with_fidelity(CcsFidelity::Paper), &trace);
        let (wd_s, wd_ss, _) = timed(SmartTrackWdc::with_fidelity(CcsFidelity::Strict), &trace);
        let _ = writeln!(
            out,
            "{:<10} {:>13}× {:>13}× {:>10} {:>10}",
            w.name,
            sig2(dc_p as f64 / dc_s.max(1) as f64),
            sig2(wd_p as f64 / wd_s.max(1) as f64),
            if dc_ps == dc_ss {
                "equal".to_string()
            } else {
                format!("{dc_ps}≠{dc_ss}")
            },
            if wd_ps == wd_ss {
                "equal".to_string()
            } else {
                format!("{wd_ps}≠{wd_ss}")
            },
        );
    }
    out.push_str(
        "\n`Strict` costs within noise of `Paper` and reports the same races on\n\
         every workload; the refinements only matter on adversarial corner\n\
         cases (see DESIGN.md §5, items 4-5).\n",
    );
    out
}

/// Ablation 3: rule (b) queue compaction. `Detector::prepare` announces the
/// thread count, enabling prefix compaction of the per-(lock, thread)
/// acquire/release logs (DESIGN.md §5 item 10); without it the logs must be
/// retained for threads that might still appear.
pub fn queue_compaction(cfg: &ExperimentConfig) -> String {
    let mut out =
        String::from("Ablation: DC rule (b) queue compaction (with prepare / without prepare)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>16} {:>16} {:>16}",
        "program", "Unopt-DC mem", "FTO-DC mem", "ST-DC mem"
    );
    let run = |level: OptLevel, trace: &smarttrack_trace::Trace, prepare: bool| -> usize {
        let mut det = AnalysisConfig::new(Relation::Dc, level)
            .detector()
            .expect("valid");
        if prepare {
            det.prepare(trace);
        }
        let stride = (trace.len() / 256).max(1);
        let mut peak = 0usize;
        for (id, e) in trace.iter() {
            det.process(id, e);
            if id.index() % stride == 0 {
                peak = peak.max(det.footprint_bytes());
            }
        }
        peak.max(det.footprint_bytes())
    };
    let rounds = ((5e6 * cfg.scale) as usize).max(2_000);
    let cases = [
        ("xalan", profiles::xalan().trace(cfg.scale, cfg.seed)),
        ("h2", profiles::h2().trace(cfg.scale, cfg.seed)),
        ("avrora", profiles::avrora().trace(cfg.scale, cfg.seed)),
        ("ping-pong", lock_ping_pong(rounds)),
    ];
    for (name, trace) in cases {
        let mut cells = Vec::new();
        for level in [OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack] {
            let with = run(level, &trace, true);
            let without = run(level, &trace, false);
            cells.push(format!("{}×", sig2(without as f64 / with.max(1) as f64)));
        }
        let _ = writeln!(
            out,
            "{:<10} {:>16} {:>16} {:>16}",
            name, cells[0], cells[1], cells[2]
        );
    }
    out.push_str(
        "\nValues are peak-metadata ratios (no-prepare / prepare); >1 means the\n\
         compaction enabled by announcing the thread set up front saves that\n\
         factor of rule (b) queue memory. On the calibrated workloads logs\n\
         stay short (ratios ≈1), which is itself a finding: compaction is a\n\
         safety net for lock ping-pong patterns, where two threads trade one\n\
         lock with conflicting accesses and the consumed log prefix would\n\
         otherwise be retained for threads that might appear later.\n",
    );
    out
}

/// Two threads trading one lock with conflicting accesses: every release
/// consumes the peer's acquire entries (rule (a) ordering makes the rule (b)
/// check succeed), so the log prefix is fully consumed and compactable —
/// but only a declared thread bound makes dropping it sound.
fn lock_ping_pong(rounds: usize) -> smarttrack_trace::Trace {
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
    let mut b = TraceBuilder::new();
    let m = LockId::new(0);
    let x = VarId::new(0);
    for _ in 0..rounds {
        for t in [ThreadId::new(0), ThreadId::new(1)] {
            b.push(t, Op::Acquire(m)).expect("well formed");
            b.push(t, Op::Write(x)).expect("well formed");
            b.push(t, Op::Release(m)).expect("well formed");
        }
    }
    b.finish()
}

/// §6 related work, run live: (a) bounded-window analysis misses distant
/// races that every unbounded predictive analysis finds; (b) Eraser lockset
/// analysis false-positives on executions the whole Table 1 matrix (and the
/// exhaustive oracle) prove race free.
pub fn related_work(cfg: &ExperimentConfig) -> String {
    let mut out = String::from(
        "Related work (§6): bounded windows and lockset analysis\n\n\
         (a) windowed analysis (window 512, 50% overlap) vs SmartTrack-WDC on a\n\
         race whose accesses are `distance` events apart:\n",
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>16}",
        "distance", "windowed", "SmartTrack-WDC"
    );
    for distance in [200usize, 2_000, 20_000] {
        let (trace, _, _) = distant_race_trace(distance);
        let windowed =
            WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(512)).analyze();
        let outcome = analyze(
            &trace,
            AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack),
        );
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>16}",
            distance,
            if windowed.races().is_empty() {
                "MISSED"
            } else {
                "found"
            },
            if outcome.report.dynamic_count() > 0 {
                "found"
            } else {
                "MISSED"
            },
        );
    }

    out.push_str(
        "\n(b) Eraser lockset discipline vs the sound end of the matrix on the\n\
         paper's example executions (figure 3 and figures 4a-4d are race free):\n",
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>12}",
        "figure", "Eraser", "ST-DC", "ground truth"
    );
    for (name, trace) in smarttrack_trace::paper::all_figures() {
        let mut eraser = EraserLockset::new();
        eraser.run(&trace);
        let dc = analyze(
            &trace,
            AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
        );
        let truth = match name {
            "figure1" | "figure2" => "race",
            _ => "race-free",
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>12}",
            name,
            eraser.report().dynamic_count(),
            dc.report.dynamic_count(),
            truth
        );
    }
    let _ = cfg; // geometry is fixed; the section is scale-independent
    out.push_str(
        "\nEraser reports a violation on every race-free figure (false positives)\n\
         while the predictive matrix and the exhaustive oracle agree; see\n\
         `cargo run --release --example windowed_vs_unbounded` for the window\n\
         cost curve and tests/lockset_baseline.rs for the assertions.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_render() {
        let cfg = ExperimentConfig {
            scale: 5e-6,
            trials: 1,
            seed: 2,
        };
        let a = rule_b_cost(&cfg);
        assert!(a.contains("avrora"), "{a}");
        let b = ccs_fidelity(&cfg);
        assert!(b.contains("xalan"), "{b}");
        // On the calibrated workloads, both fidelity modes must agree.
        assert!(!b.contains('≠'), "{b}");
    }

    #[test]
    fn compaction_ablation_renders() {
        let cfg = ExperimentConfig {
            scale: 2e-6,
            trials: 1,
            seed: 2,
        };
        let text = queue_compaction(&cfg);
        assert!(text.contains("xalan"), "{text}");
        assert!(text.contains('×'), "{text}");
    }

    #[test]
    fn related_work_section_shows_the_miss_and_the_false_positives() {
        let cfg = ExperimentConfig {
            scale: 2e-6,
            trials: 1,
            seed: 2,
        };
        let text = related_work(&cfg);
        assert!(text.contains("MISSED"), "{text}");
        assert!(text.contains("figure4d"), "{text}");
    }
}
