//! Regeneration of the paper's evaluation tables.
//!
//! Each `table*` function runs the necessary analyses on the synthetic
//! DaCapo-style workloads and renders the paper's table layout; appendix
//! variants (Tables 8–11) add 95% confidence intervals over trials.

use std::collections::HashMap;
use std::fmt::Write as _;

use smarttrack::{AnalysisConfig, FtoCase, OptLevel, Relation};
use smarttrack_trace::stats::TraceStats;
use smarttrack_workloads::{profiles, Workload};

use crate::measure::{measure_analysis, null_pass_nanos, Measurement};
use crate::stats::{geomean, sig2, Summary};

/// Global experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Event-count scale relative to the paper's executions (e.g. `2e-5`
    /// turns avrora's 1,400M events into 28k).
    pub scale: f64,
    /// Trials per measurement (the paper uses 10).
    pub trials: usize,
    /// Base seed; trial `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 2e-5,
            trials: 3,
            seed: 42,
        }
    }
}

/// All grid measurements for one experiment run: per program, per analysis,
/// one [`Measurement`] per trial.
pub struct Grid {
    /// Programs measured.
    pub programs: Vec<Workload>,
    /// Analyses measured.
    pub configs: Vec<AnalysisConfig>,
    /// `results[program][config]` = per-trial measurements.
    pub results: Vec<Vec<Vec<Measurement>>>,
}

/// Runs `configs` over every workload for `cfg.trials` trials.
pub fn run_grid(cfg: &ExperimentConfig, configs: &[AnalysisConfig]) -> Grid {
    let programs = profiles::all();
    let mut results = Vec::with_capacity(programs.len());
    for w in &programs {
        let mut per_config: Vec<Vec<Measurement>> = vec![Vec::new(); configs.len()];
        for trial in 0..cfg.trials {
            let trace = w.trace(cfg.scale, cfg.seed + trial as u64);
            // Warmed null pass: take the min of 3 as the baseline.
            let baseline = (0..3).map(|_| null_pass_nanos(&trace)).min().unwrap_or(1);
            for (ci, &config) in configs.iter().enumerate() {
                per_config[ci].push(measure_analysis(&trace, config, baseline));
            }
        }
        results.push(per_config);
    }
    Grid {
        programs,
        configs: configs.to_vec(),
        results,
    }
}

fn render(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, row: &[String]| {
        for (i, cell) in row.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(8);
            let _ = write!(out, "{cell:>w$}  ");
        }
        out.pop();
        out.pop();
        out.push('\n');
    };
    fmt_row(&mut out, header);
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Table 1: the analysis matrix (static — documents what exists).
pub fn table1() -> String {
    let header = vec![
        "".to_string(),
        "Unopt w/G".to_string(),
        "Unopt (w/o G)".to_string(),
        "Epochs".to_string(),
        "+ Ownership".to_string(),
        "+ CS opts".to_string(),
    ];
    let rows = vec![
        vec!["HB", "N/A", "Unopt-HB", "FT2", "FTO-HB", "N/A"],
        vec!["WCP", "N/A", "Unopt-WCP", "—", "FTO-WCP", "SmartTrack-WCP"],
        vec![
            "DC",
            "Unopt-DC w/G",
            "Unopt-DC",
            "—",
            "FTO-DC",
            "SmartTrack-DC",
        ],
        vec![
            "WDC",
            "Unopt-WDC w/G",
            "Unopt-WDC",
            "—",
            "FTO-WDC",
            "SmartTrack-WDC",
        ],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(String::from).collect())
    .collect::<Vec<Vec<String>>>();
    format!("Table 1: evaluated analyses\n{}", render(&header, &rows))
}

/// Table 2: run-time characteristics of the synthetic workloads, next to the
/// paper's measured targets.
pub fn table2(cfg: &ExperimentConfig) -> String {
    let header: Vec<String> = [
        "Program", "#Thr", "All", "NSEAs", ">=1", ">=2", ">=3", "paper>=1", "paper>=2", "paper>=3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in profiles::all() {
        let tr = w.trace(cfg.scale, cfg.seed);
        let s = TraceStats::compute(&tr);
        rows.push(vec![
            w.name.to_string(),
            format!("{} ({})", s.threads_total, s.threads_max_live),
            format!("{}", s.total_events),
            format!("{}", s.nsea_count),
            format!("{}%", sig2(s.pct_nsea_holding(1))),
            format!("{}%", sig2(s.pct_nsea_holding(2))),
            format!("{}%", sig2(s.pct_nsea_holding(3))),
            format!("{}%", sig2(w.paper.pct_ge1)),
            format!("{}%", sig2(w.paper.pct_ge2)),
            format!("{}%", sig2(w.paper.pct_ge3)),
        ]);
    }
    format!(
        "Table 2: run-time characteristics (scale {:.0e}; paper targets on the right)\n{}",
        cfg.scale,
        render(&header, &rows)
    )
}

fn baseline_configs() -> Vec<AnalysisConfig> {
    vec![
        AnalysisConfig::new(Relation::Hb, OptLevel::Epochs),
        AnalysisConfig::new(Relation::Hb, OptLevel::Fto),
        AnalysisConfig::new(Relation::Dc, OptLevel::Unopt).with_graph(),
        AnalysisConfig::new(Relation::Dc, OptLevel::Unopt),
        AnalysisConfig::new(Relation::Wdc, OptLevel::Unopt).with_graph(),
        AnalysisConfig::new(Relation::Wdc, OptLevel::Unopt),
    ]
}

fn main_configs() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for relation in Relation::ALL {
        for level in [OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack] {
            let cfg = AnalysisConfig::new(relation, level);
            if cfg.is_available() {
                out.push(cfg);
            } else if relation == Relation::Hb && level == OptLevel::SmartTrack {
                // N/A cell: skipped.
            }
        }
    }
    out
}

fn grid_metric(grid: &Grid, pi: usize, ci: usize, metric: impl Fn(&Measurement) -> f64) -> Summary {
    let samples: Vec<f64> = grid.results[pi][ci].iter().map(&metric).collect();
    Summary::of(&samples)
}

fn factor_table(
    title: &str,
    grid: &Grid,
    metric: impl Fn(&Measurement) -> f64 + Copy,
    with_ci: bool,
) -> String {
    let mut header = vec!["Program".to_string()];
    header.extend(grid.configs.iter().map(|c| c.to_string()));
    let mut rows = Vec::new();
    let mut per_config_means: Vec<Vec<f64>> = vec![Vec::new(); grid.configs.len()];
    for (pi, w) in grid.programs.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        for (ci, means) in per_config_means.iter_mut().enumerate() {
            let s = grid_metric(grid, pi, ci, metric);
            means.push(s.mean);
            row.push(if with_ci { s.factor_ci() } else { s.factor() });
        }
        rows.push(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for means in &per_config_means {
        geo.push(format!("{}×", sig2(geomean(means))));
    }
    rows.push(geo);
    format!("{title}\n{}", render(&header, &rows))
}

/// Table 3: run time and memory of the FastTrack baselines and the
/// unoptimized DC/WDC analyses with and without graph recording.
pub fn table3(cfg: &ExperimentConfig, with_ci: bool) -> String {
    let grid = run_grid(cfg, &baseline_configs());
    let time = factor_table(
        "Table 3 (run time): FastTrack baselines vs unoptimized predictive analyses",
        &grid,
        |m| m.slowdown,
        with_ci,
    );
    let mem = factor_table(
        "Table 3 (memory): peak metadata vs trace footprint",
        &grid,
        |m| m.memory_factor,
        with_ci,
    );
    format!("{time}\n{mem}")
}

/// Tables 4+5 (run time): per-program slowdowns of the full Unopt/FTO/ST ×
/// HB/WCP/DC/WDC matrix, with the geometric-mean row (Table 4).
pub fn table5(cfg: &ExperimentConfig, with_ci: bool) -> String {
    let grid = run_grid(cfg, &main_configs());
    factor_table(
        "Tables 4+5 (run time, relative to the null pass; geomean row = Table 4)",
        &grid,
        |m| m.slowdown,
        with_ci,
    )
}

/// Tables 4+6 (memory): per-program memory factors of the full matrix.
pub fn table6(cfg: &ExperimentConfig, with_ci: bool) -> String {
    let grid = run_grid(cfg, &main_configs());
    factor_table(
        "Tables 4+6 (memory, peak metadata / trace bytes; geomean row = Table 4)",
        &grid,
        |m| m.memory_factor,
        with_ci,
    )
}

/// Table 7: races reported — statically distinct (total dynamic) per
/// analysis per program, with optional CIs on the dynamic counts.
pub fn table7(cfg: &ExperimentConfig, with_ci: bool) -> String {
    let grid = run_grid(cfg, &main_configs());
    let mut header = vec!["Program".to_string()];
    header.extend(grid.configs.iter().map(|c| c.to_string()));
    let mut rows = Vec::new();
    for (pi, w) in grid.programs.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        for ci in 0..grid.configs.len() {
            let stat: Vec<f64> = grid.results[pi][ci]
                .iter()
                .map(|m| m.report.static_count() as f64)
                .collect();
            let dyn_: Vec<f64> = grid.results[pi][ci]
                .iter()
                .map(|m| m.report.dynamic_count() as f64)
                .collect();
            let s = Summary::of(&stat);
            let d = Summary::of(&dyn_);
            row.push(if with_ci {
                format!(
                    "{}±{} ({}±{})",
                    sig2(s.mean),
                    sig2(s.ci),
                    sig2(d.mean),
                    sig2(d.ci)
                )
            } else {
                format!("{} ({})", sig2(s.mean), sig2(d.mean))
            });
        }
        rows.push(row);
    }
    format!(
        "Table 7: statically distinct races (total dynamic races)\n{}",
        render(&header, &rows)
    )
}

/// Table 12: FTO case frequencies for SmartTrack-WDC, per program.
pub fn table12(cfg: &ExperimentConfig) -> String {
    let st_wdc = [AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack)];
    let grid = run_grid(&ExperimentConfig { trials: 1, ..*cfg }, &st_wdc);
    let header: Vec<String> = [
        "Program",
        "Kind",
        "Total",
        "Owned Excl",
        "Owned Shared",
        "Unowned Excl",
        "Share",
        "Unowned Shared",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (pi, w) in grid.programs.iter().enumerate() {
        let m = &grid.results[pi][0][0];
        let Some(c) = &m.cases else { continue };
        rows.push(vec![
            w.name.to_string(),
            "Read".to_string(),
            format!("{}", c.nse_reads()),
            format!("{}%", sig2(c.read_pct(FtoCase::ReadOwned))),
            format!("{}%", sig2(c.read_pct(FtoCase::ReadSharedOwned))),
            format!("{}%", sig2(c.read_pct(FtoCase::ReadExclusive))),
            format!("{}%", sig2(c.read_pct(FtoCase::ReadShare))),
            format!("{}%", sig2(c.read_pct(FtoCase::ReadShared))),
        ]);
        rows.push(vec![
            String::new(),
            "Write".to_string(),
            format!("{}", c.nse_writes()),
            format!("{}%", sig2(c.write_pct(FtoCase::WriteOwned))),
            "N/A".to_string(),
            format!("{}%", sig2(c.write_pct(FtoCase::WriteExclusive))),
            "N/A".to_string(),
            format!("{}%", sig2(c.write_pct(FtoCase::WriteShared))),
        ]);
    }
    format!(
        "Table 12: frequencies of non-same-epoch accesses per FTO case (SmartTrack-WDC)\n{}",
        render(&header, &rows)
    )
}

/// The paper's figures (example executions): which analyses detect a race on
/// each, plus vindication outcomes.
pub fn figures() -> String {
    use smarttrack::analyze_all;
    use smarttrack_trace::paper;
    use smarttrack_vindicate::{vindicate_first_race, VindicationResult};

    let mut header = vec!["Figure".to_string()];
    let outcome_names: Vec<String> = analyze_all(&paper::figure1())
        .iter()
        .map(|o| o.name.clone())
        .collect();
    header.extend(outcome_names);
    header.push("vindicated".to_string());
    let mut rows = Vec::new();
    for (name, tr) in paper::all_figures() {
        let outcomes = analyze_all(&tr);
        let mut row = vec![name.to_string()];
        let mut racy = None;
        for o in &outcomes {
            row.push(if o.report.is_empty() {
                "-".to_string()
            } else {
                format!("{}", o.report.dynamic_count())
            });
            if racy.is_none() && !o.report.is_empty() {
                racy = Some(o.report.clone());
            }
        }
        row.push(match racy {
            None => "(no race)".to_string(),
            Some(report) => match vindicate_first_race(&tr, &report) {
                Some(VindicationResult::Race(_)) => "yes".to_string(),
                Some(VindicationResult::Unknown) => "NO (false race)".to_string(),
                None => "?".to_string(),
            },
        });
        rows.push(row);
    }
    format!(
        "Figures 1-4: dynamic races per analysis (`-` = none) and vindication of the first race\n{}",
        render(&header, &rows)
    )
}

/// A one-line summary of the headline result (§5.5): geomean slowdowns by
/// optimization level, and key ratios to compare against the paper's.
pub fn headline(cfg: &ExperimentConfig) -> String {
    let grid = run_grid(cfg, &main_configs());
    let mut by_config: HashMap<String, Vec<f64>> = HashMap::new();
    for (pi, _) in grid.programs.iter().enumerate() {
        for (ci, c) in grid.configs.iter().enumerate() {
            by_config
                .entry(c.to_string())
                .or_default()
                .push(grid_metric(&grid, pi, ci, |m| m.slowdown).mean);
        }
    }
    let geo = |name: &str| geomean(&by_config[name]);
    let fto_hb = geo("FTO-HB");
    let mut out = String::from("Headline (geomean slowdowns relative to FTO-HB = 1.0):\n");
    for c in &grid.configs {
        let name = c.to_string();
        let _ = writeln!(out, "  {name:>12}: {:>6}", sig2(geo(&name) / fto_hb));
    }
    out.push_str(
        "\nPaper (Table 4, run time relative to FTO-HB 7.0x): Unopt-WCP 4.9, Unopt-DC 4.1, \
         Unopt-WDC 3.9, FTO-WCP 2.0, FTO-DC 2.1, FTO-WDC 1.9, ST-WCP 1.3, ST-DC 1.4, ST-WDC 1.2\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 2e-6,
            trials: 1,
            seed: 1,
        }
    }

    #[test]
    fn table1_matrix_renders() {
        let t = table1();
        assert!(t.contains("SmartTrack-DC"));
        assert!(t.contains("N/A"));
    }

    #[test]
    fn table2_includes_all_programs() {
        let t = table2(&tiny());
        for name in ["avrora", "xalan", "tomcat"] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn table7_reports_races_shape() {
        let cfg = ExperimentConfig {
            scale: 1e-5,
            trials: 1,
            seed: 3,
        };
        let t = table7(&cfg, false);
        assert!(t.contains("avrora"));
        // batik and lusearch report no races under any analysis.
        for line in t
            .lines()
            .filter(|l| l.contains("batik") || l.contains("lusearch"))
        {
            assert!(
                line.split_whitespace()
                    .skip(1)
                    .all(|c| c == "0" || c == "(0)"),
                "{line}"
            );
        }
    }

    #[test]
    fn figures_table_shows_wdc_false_race() {
        let t = figures();
        assert!(t.contains("figure3"));
        assert!(t.contains("NO (false race)"), "{t}");
        assert!(t.contains("yes"), "{t}");
    }
}
