//! Means, geometric means, and 95% confidence intervals (the paper reports
//! arithmetic means of 10 trials with 95% CIs, and geometric means across
//! programs).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean (0 for an empty slice; requires positive values).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Two-sided Student-t critical values at 95% for n−1 degrees of freedom
/// (n = sample count), n = 2..=30.
fn t_crit(n: usize) -> f64 {
    const T: [f64; 29] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045,
    ];
    if n < 2 {
        return 0.0;
    }
    T.get(n - 2).copied().unwrap_or(1.96)
}

/// Half-width of the 95% confidence interval of the mean.
pub fn ci95(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (n as f64 - 1.0);
    t_crit(n) * (var / n as f64).sqrt()
}

/// A mean with its confidence interval, formatted like the paper's appendix
/// tables (`4.2× ± 0.03×`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 95% CI half-width.
    pub ci: f64,
}

impl Summary {
    /// Summarizes samples.
    pub fn of(xs: &[f64]) -> Self {
        Summary {
            mean: mean(xs),
            ci: ci95(xs),
        }
    }

    /// Formats as a factor with 2 significant digits (paper style).
    pub fn factor(&self) -> String {
        format!("{}×", sig2(self.mean))
    }

    /// Formats as a factor with CI.
    pub fn factor_ci(&self) -> String {
        format!("{}× ± {}×", sig2(self.mean), sig2(self.ci))
    }
}

/// Rounds to two significant digits, paper-table style.
pub fn sig2(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (1 - mag).max(0) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn ci_matches_paper_trial_count() {
        // n = 10 → t = 2.262.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let m = mean(&xs);
        let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / 9.0;
        let expected = 2.262 * (var / 10.0).sqrt();
        assert!((ci95(&xs) - expected).abs() < 1e-9);
    }

    #[test]
    fn ci_is_zero_for_singletons() {
        assert_eq!(ci95(&[5.0]), 0.0);
        assert_eq!(ci95(&[]), 0.0);
    }

    #[test]
    fn two_significant_digits() {
        assert_eq!(sig2(4.234), "4.2");
        assert_eq!(sig2(0.0789), "0.079");
        assert_eq!(sig2(32.4), "32");
        assert_eq!(sig2(110.0), "110");
    }

    #[test]
    fn summary_formatting() {
        let s = Summary::of(&[4.0, 4.4]);
        assert_eq!(s.factor(), "4.2×");
        assert!(s.factor_ci().starts_with("4.2× ± "));
    }
}
