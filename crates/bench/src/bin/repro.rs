//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! repro [--table N | --figures | --headline | --all] [--scale S] [--trials K] [--seed S]
//!
//!   --table 1          analysis matrix (Table 1)
//!   --table 2          workload characteristics (Table 2)
//!   --table 3          FastTrack vs unoptimized predictive analyses (Table 3)
//!   --table 4|5        per-program run time + geomean (Tables 4/5)
//!   --table 6          per-program memory + geomean (Tables 4/6)
//!   --table 7          race counts (Table 7)
//!   --table 8..=11     appendix variants with 95% CIs (Tables 8-11)
//!   --table 12         SmartTrack-WDC case frequencies (Table 12)
//!   --figures          the Figure 1-4 example executions + vindication
//!   --ablation         design-choice ablations (rule (b) cost, CCS fidelity,
//!                      rule (b) queue compaction)
//!   --related          §6 related-work baselines (bounded windows, lockset)
//!   --parallel         §5.1 parallel-analysis scaling (in-thread hooks)
//!   --headline         geomean slowdown ratios vs FTO-HB (the §5.5 claim)
//!   --all              everything above
//!   --scale S          event scale vs the paper's runs (default 2e-5)
//!   --trials K         trials per measurement (default 3; paper used 10)
//!   --seed S           base seed (default 42)
//! ```

use std::process::ExitCode;

use smarttrack_bench::tables::{self, ExperimentConfig};

fn parse_args() -> Result<(Vec<String>, ExperimentConfig), String> {
    let mut cfg = ExperimentConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--table" => wanted.push(value("--table")?),
            "--figures" => wanted.push("figures".to_string()),
            "--ablation" => wanted.push("ablation".to_string()),
            "--related" => wanted.push("related".to_string()),
            "--parallel" => wanted.push("parallel".to_string()),
            "--headline" => wanted.push("headline".to_string()),
            "--all" => {
                wanted.extend(
                    [
                        "1", "2", "3", "5", "6", "7", "12", "figures", "ablation", "related",
                        "parallel", "headline",
                    ]
                    .map(String::from),
                );
            }
            "--scale" => {
                cfg.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--trials" => {
                cfg.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("bad --trials: {e}"))?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}` (see --help in source)")),
        }
    }
    if wanted.is_empty() {
        wanted.push("headline".to_string());
    }
    Ok((wanted, cfg))
}

fn main() -> ExitCode {
    let (wanted, cfg) = match parse_args() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "SmartTrack reproduction — scale {:.0e}, {} trial(s), seed {}\n",
        cfg.scale, cfg.trials, cfg.seed
    );
    for item in wanted {
        let out = match item.as_str() {
            "1" => tables::table1(),
            "2" => tables::table2(&cfg),
            "3" => tables::table3(&cfg, false),
            "4" | "5" => tables::table5(&cfg, false),
            "6" => tables::table6(&cfg, false),
            "7" => tables::table7(&cfg, false),
            "8" => tables::table3(&cfg, true),
            "9" => tables::table5(&cfg, true),
            "10" => tables::table6(&cfg, true),
            "11" => tables::table7(&cfg, true),
            "12" => tables::table12(&cfg),
            "figures" => tables::figures(),
            "ablation" => format!(
                "{}\n{}\n{}",
                smarttrack_bench::ablation::rule_b_cost(&cfg),
                smarttrack_bench::ablation::ccs_fidelity(&cfg),
                smarttrack_bench::ablation::queue_compaction(&cfg)
            ),
            "related" => smarttrack_bench::ablation::related_work(&cfg),
            "parallel" => smarttrack_bench::parallel_scaling::report(&cfg),
            "headline" => tables::headline(&cfg),
            other => {
                eprintln!("error: unknown table `{other}`");
                return ExitCode::FAILURE;
            }
        };
        println!("{out}");
    }
    ExitCode::SUCCESS
}
