//! Parallel-analysis scalability (§5.1 deployment model).
//!
//! The paper's implementations run their analysis hooks inside the
//! application threads, synchronizing on fine-grained metadata. This
//! experiment measures how analysis throughput scales with application
//! thread count for the two parallel analyses
//! ([`ConcurrentFtoHb`] and [`ConcurrentSmartTrackWdc`]),
//! holding the *total work* fixed: `N` threads each execute `W / N`
//! operations.
//!
//! Two workload shapes bracket the contention range:
//!
//! * **disjoint** — threads touch thread-private variables and disjoint
//!   locks: the fine-grained metadata never contends, so throughput should
//!   scale with cores (the common case the paper's same-epoch fast paths
//!   target);
//! * **shared** — all threads hammer one lock and one variable: every hook
//!   serializes on the same metadata, the worst case.

use std::time::Instant;

use smarttrack_parallel::{run_online, ConcurrentFtoHb, ConcurrentSmartTrackWdc, WorldSpec};
use smarttrack_runtime::{Program, ThreadSpec};
use smarttrack_trace::{LockId, VarId};

use crate::tables::ExperimentConfig;

/// Workload shape for the scaling experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contention {
    /// Thread-private variables, per-thread locks (no metadata contention).
    Disjoint,
    /// One lock, one shared variable (maximal metadata contention).
    Shared,
}

impl Contention {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Contention::Disjoint => "disjoint",
            Contention::Shared => "shared",
        }
    }
}

/// Builds the scaling program: `threads` threads, ~`total_ops` operations in
/// total, with the given contention shape. Lock acquisition order is globally
/// consistent (no real-deadlock potential).
pub fn scaling_program(threads: u32, total_ops: usize, contention: Contention) -> Program {
    let per_thread = total_ops / threads as usize;
    // Each round is 8 operations.
    let rounds = (per_thread / 8).max(1);
    let specs = (0..threads)
        .map(|i| {
            let mut spec = ThreadSpec::new();
            let (lock, var, private) = match contention {
                Contention::Disjoint => (LockId::new(i), VarId::new(i), VarId::new(1000 + i)),
                Contention::Shared => (LockId::new(0), VarId::new(0), VarId::new(1000 + i)),
            };
            for _ in 0..rounds {
                spec = spec
                    .acquire(lock)
                    .read(var)
                    .write(var)
                    .release(lock)
                    .read(private)
                    .write(private)
                    .read(private)
                    .write(private);
            }
            spec
        })
        .collect();
    Program::new(specs)
}

/// One measured cell: thread count → events/second.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Application (= analysis) thread count.
    pub threads: u32,
    /// Analyzed events per second (best of `trials`).
    pub events_per_sec: f64,
}

fn best_throughput(program: &Program, analysis_name: &str, trials: usize) -> f64 {
    let mut best = 0f64;
    for _ in 0..trials.max(1) {
        let eps = match analysis_name {
            "hb" => {
                let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(program));
                let start = Instant::now();
                let run = run_online(program, &analysis, false).expect("valid program");
                run.events as f64 / start.elapsed().as_secs_f64()
            }
            "wdc" => {
                let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(program));
                let start = Instant::now();
                let run = run_online(program, &analysis, false).expect("valid program");
                run.events as f64 / start.elapsed().as_secs_f64()
            }
            other => unreachable!("unknown analysis {other}"),
        };
        best = best.max(eps);
    }
    best
}

/// Runs the scaling sweep for one analysis and contention shape.
pub fn sweep(
    analysis_name: &str,
    contention: Contention,
    total_ops: usize,
    trials: usize,
) -> Vec<ScalePoint> {
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let program = scaling_program(threads, total_ops, contention);
            ScalePoint {
                threads,
                events_per_sec: best_throughput(&program, analysis_name, trials),
            }
        })
        .collect()
}

/// Renders the full parallel-scaling report (`repro --parallel`).
pub fn report(cfg: &ExperimentConfig) -> String {
    // The scale knob maps the paper's ~1e9-event runs to a local budget the
    // same way the table experiments do, with a floor that keeps timings
    // meaningful.
    let total_ops = ((1.0e9 * cfg.scale) as usize).max(40_000);
    let mut out = String::new();
    out.push_str(&format!(
        "## Parallel analysis scaling (§5.1) — fixed total work {total_ops} ops, best of {} trial(s)\n\n",
        cfg.trials
    ));
    out.push_str("analysis          workload   1 thr        2 thr        4 thr        8 thr    (events/s; speedup vs 1 thr)\n");
    for (name, label) in [("hb", "FTO-HB"), ("wdc", "ST-WDC")] {
        for contention in [Contention::Disjoint, Contention::Shared] {
            let points = sweep(name, contention, total_ops, cfg.trials);
            let base = points[0].events_per_sec;
            out.push_str(&format!("{label:<17} {:<9}", contention.label()));
            for p in &points {
                out.push_str(&format!(
                    " {:>7.2}M({:>4.2}x)",
                    p.events_per_sec / 1e6,
                    p.events_per_sec / base
                ));
            }
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "\nExpected shape: disjoint workloads scale up to the machine's core\n\
         count ({} available here) — fine-grained metadata and lock-free\n\
         same-epoch fast paths never contend; shared workloads plateau (every\n\
         hook serializes on one variable's mutex, §5.1's worst case). Thread\n\
         counts beyond the core count only add scheduling overhead.\n",
        smarttrack_parallel::worker_count(None)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_program_splits_work() {
        let p = scaling_program(4, 8000, Contention::Disjoint);
        assert_eq!(p.num_threads(), 4);
        let per_thread = p.threads()[0].len();
        assert!((1000..=2100).contains(&per_thread), "{per_thread}");
    }

    #[test]
    fn sweep_produces_positive_throughput() {
        let points = sweep("wdc", Contention::Shared, 4000, 1);
        assert_eq!(points.len(), 4);
        for p in points {
            assert!(p.events_per_sec > 0.0);
        }
    }
}
