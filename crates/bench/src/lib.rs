//! The experiment harness: regenerates every table of the paper's evaluation
//! (§5, Tables 2–7 and Appendix Tables 8–12) on the synthetic DaCapo-style
//! workloads.
//!
//! Methodology mapping (see DESIGN.md for the full substitution table):
//!
//! * *slowdown vs. uninstrumented execution* → analysis wall-clock time
//!   divided by the time of a null pass over the same trace (the
//!   "uninstrumented" event stream). Absolute factors differ from the
//!   paper's (a JVM executes real work between events; our baseline is
//!   nearly free), but the *ratios between analyses* — the paper's actual
//!   claims — carry over and are what `EXPERIMENTS.md` compares.
//! * *memory vs. uninstrumented execution* → peak analysis metadata bytes
//!   divided by the trace-representation bytes.
//! * *10 trials, 95% confidence intervals* → configurable trials over
//!   different workload seeds; Student-t intervals ([`stats`]).
//!
//! Use the `repro` binary to print any table:
//!
//! ```text
//! cargo run --release -p smarttrack-bench --bin repro -- --table 5 --scale 2e-5 --trials 3
//! ```

pub mod ablation;
pub mod measure;
pub mod parallel_scaling;
pub mod stats;
pub mod tables;

pub use measure::{measure_analysis, null_pass_nanos, Measurement};
pub use stats::{ci95, geomean, mean, Summary};
