//! Single-pass fan-out vs. N-pass analysis of the same matrix.
//!
//! `analyze_all` historically ran one whole-trace pass per Table 1 cell
//! (14 passes). The `Engine`/`Session` redesign fans all cells out over a
//! *single* pass. This bench measures both shapes on a calibrated workload
//! — the per-event analysis work is identical, so the delta isolates what
//! the N-pass shape wastes: N× event-stream iteration, validation, and
//! cache refilling. A second pair measures the headline production subset
//! (FTO-HB baseline + the three SmartTrack analyses).
//!
//! Run with:
//!
//! ```text
//! cargo bench -p smarttrack-bench --bench fanout
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smarttrack::{analyze, AnalysisConfig, Engine};
use smarttrack_trace::Trace;
use smarttrack_workloads::profiles;

/// The headline subset: the HB baseline plus the paper's three optimized
/// predictive analyses (the CLI's default selection).
fn headline_configs() -> Vec<AnalysisConfig> {
    ["fto-hb", "st-wcp", "st-dc", "st-wdc"]
        .into_iter()
        .map(|name| name.parse().expect("known analysis"))
        .collect()
}

fn single_pass(trace: &Trace, configs: &[AnalysisConfig]) -> usize {
    let engine = Engine::builder()
        .fanout(configs.iter().copied())
        .build()
        .expect("valid cells");
    let mut session = engine.open();
    session.feed_trace(trace).expect("well-formed trace");
    session
        .finish()
        .iter()
        .map(|o| o.report.dynamic_count())
        .sum()
}

fn n_pass(trace: &Trace, configs: &[AnalysisConfig]) -> usize {
    configs
        .iter()
        .map(|&config| analyze(trace, config).report.dynamic_count())
        .sum()
}

fn bench_fanout_vs_n_pass(c: &mut Criterion) {
    for workload in [profiles::xalan(), profiles::avrora()] {
        let trace = workload.trace(1e-5, 42);
        let table1 = AnalysisConfig::table1();
        let headline = headline_configs();

        let mut group = c.benchmark_group(format!("fanout/{}", workload.name));
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.sample_size(10);
        for (label, configs) in [("table1", &table1), ("headline", &headline)] {
            group.bench_with_input(
                BenchmarkId::new("single-pass", label),
                &trace,
                |b, trace| b.iter(|| single_pass(trace, configs)),
            );
            group.bench_with_input(BenchmarkId::new("n-pass", label), &trace, |b, trace| {
                b.iter(|| n_pass(trace, configs))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fanout_vs_n_pass);
criterion_main!(benches);
