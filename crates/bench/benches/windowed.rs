//! Criterion bench for the paper's §6 comparison: bounded-window
//! predictive analysis (the SMT-based related work) vs. the unbounded
//! linear-time partial-order analyses this paper optimizes.
//!
//! Two series:
//! * `distant_race/*` — detection cost on a trace whose only race spans a
//!   configurable distance; SmartTrack-WDC stays linear while the windowed
//!   analysis pays per-window exhaustive-search cost *and* misses the race
//!   once the distance exceeds the window.
//! * `window_size/*` — per-window cost growth on a racy avrora-profile
//!   workload, the pressure that forces SMT approaches to bound windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smarttrack_detect::{run_detector, Detector, SmartTrackWdc};
use smarttrack_vindicate::{WindowedConfig, WindowedRaceAnalysis};
use smarttrack_workloads::{distant_race_trace, profiles};

fn bench_distant_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("distant_race");
    group.sample_size(10);
    for distance in [500usize, 2_000, 8_000] {
        let (trace, _, _) = distant_race_trace(distance);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("smarttrack-wdc", distance),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut det = SmartTrackWdc::new();
                    run_detector(&mut det, trace);
                    det.report().dynamic_count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("windowed-512", distance),
            &trace,
            |b, trace| {
                b.iter(|| {
                    WindowedRaceAnalysis::new(trace, WindowedConfig::with_window(512))
                        .analyze()
                        .races()
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_window_size(c: &mut Criterion) {
    let trace = profiles::avrora().trace(0.000_001, 7);
    let mut group = c.benchmark_group("window_size");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for window in [32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &trace, |b, trace| {
            let config = WindowedConfig {
                window,
                stride: window,
                budget_per_query: 20_000,
            };
            b.iter(|| {
                WindowedRaceAnalysis::new(trace, config.clone())
                    .analyze()
                    .states_explored()
            })
        });
    }
    group.bench_with_input(
        BenchmarkId::from_parameter("unbounded-smarttrack-wdc"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let mut det = SmartTrackWdc::new();
                run_detector(&mut det, trace);
                det.report().dynamic_count()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_distant_race, bench_window_size);
criterion_main!(benches);
