//! Serving-layer throughput scaling: one `smarttrack serve` daemon on
//! loopback, swept over concurrent client connections.
//!
//! Each point replays the same generated corpus through [`run_load`] at a
//! given connection count; every trace is one streamed session, so the
//! sweep exercises connections × streams × the full frame/assembler/
//! session pipeline. Throughput is end-to-end events/second — encode,
//! frame, loopback TCP, reassemble, analyze, report — and the result
//! lands in `BENCH_SERVE.json` at the repo root. `--check` re-measures
//! and fails on regression against the committed file (tolerance
//! `SERVE_TOLERANCE`, default 35%, for cross-machine noise).
//!
//! Run with:
//!
//! ```text
//! cargo bench -p smarttrack-bench --bench serve_scaling -- \
//!     [--scale 1e-5] [--trials 3] [--out path.json] [--check]
//! ```

use std::time::Duration;

use smarttrack_serve::{run_load, LoadOptions, Server, ServerConfig};
use smarttrack_trace::Trace;

/// Connection counts swept, matching the batch bench's 1/2/4/8 shape.
const CONNECTION_POINTS: [usize; 4] = [1, 2, 4, 8];

/// Default allowed regression vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.35;

fn tolerance() -> f64 {
    std::env::var("SERVE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(REGRESSION_TOLERANCE)
}

struct Point {
    connections: usize,
    events_per_sec: f64,
    busy_retries: u64,
}

/// Pulls `"key": <number>` out of our own JSON after an anchor substring.
fn extract_number(json: &str, after: &str, key: &str) -> Option<f64> {
    let start = json.find(after)?;
    let rest = &json[start..];
    let kpos = rest.find(&format!("\"{key}\":"))?;
    let tail = rest[kpos + key.len() + 3..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn check_against(committed: &str, points: &[Point]) -> Result<(), String> {
    let tol = tolerance();
    let mut failures = Vec::new();
    for p in points {
        let anchor = format!("\"connections\": {}", p.connections);
        let Some(base) = extract_number(committed, &anchor, "events_per_sec") else {
            continue; // new point, not a regression
        };
        if p.events_per_sec < base * (1.0 - tol) {
            failures.push(format!(
                "{} connection(s): {:.0} events/s vs committed {:.0} (-{:.0}% allowed)",
                p.connections,
                p.events_per_sec,
                base,
                tol * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn parse_args() -> (f64, usize, String, bool) {
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json").to_string();
    let (mut scale, mut trials, mut out, mut check) = (1e-5_f64, 3usize, default_out, false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("numeric --scale"),
            "--trials" => trials = value("--trials").parse().expect("numeric --trials"),
            "--out" => out = value("--out"),
            "--check" => check = true,
            // `cargo bench` forwards its own filter/flag arguments (e.g.
            // `--bench`); ignore anything we do not recognize.
            _ => {}
        }
    }
    (scale, trials.max(1), out, check)
}

fn main() {
    let (scale, mut trials, out_path, check) = parse_args();
    if check {
        trials = trials.max(5);
    }
    let corpus: Vec<(String, Trace)> = smarttrack_workloads::corpus(scale, &[11, 12, 13, 14]);
    let streams = corpus.len();
    let events: usize = corpus.iter().map(|(_, t)| t.len()).sum();
    let cores = smarttrack_parallel::worker_count(None);
    println!(
        "serve_scaling: {streams} streams, {events} events (scale {scale:e}), best of \
         {trials} trial(s), {cores} core(s) available"
    );

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_secs(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind bench server");
    let addr = server.local_addr();

    let mut points: Vec<Point> = Vec::new();
    for connections in CONNECTION_POINTS {
        let options = LoadOptions {
            clients: connections,
            chunk_bytes: 0,
            validate: false,
            tenant: "bench".to_string(),
        };
        let mut best: Option<Point> = None;
        for _ in 0..trials {
            let report = run_load(addr, &corpus, &options).expect("load run");
            assert!(
                report.failures.is_empty(),
                "bench load must not fail: {:?}",
                report.failures
            );
            assert_eq!(report.events, events as u64, "every event must be served");
            let eps = report.events_per_sec();
            if best.as_ref().is_none_or(|b| eps > b.events_per_sec) {
                best = Some(Point {
                    connections,
                    events_per_sec: eps,
                    busy_retries: report.busy_retries,
                });
            }
        }
        let point = best.expect("at least one trial");
        let speedup = point.events_per_sec
            / points
                .first()
                .map_or(point.events_per_sec, |p| p.events_per_sec);
        println!(
            "  {connections} connection(s): {:>8.3}M events/s  ({speedup:.2}x vs 1, \
             {} busy retr{})",
            point.events_per_sec / 1e6,
            point.busy_retries,
            if point.busy_retries == 1 { "y" } else { "ies" }
        );
        points.push(point);
    }
    server.shutdown();

    if check {
        let committed = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("--check needs {out_path}: {e}"));
        match check_against(&committed, &points) {
            Ok(()) => {
                println!(
                    "check: within {:.0}% of committed baseline",
                    tolerance() * 100.0
                );
                return;
            }
            Err(failures) => panic!("serve throughput regressed:\n{failures}"),
        }
    }

    let base = points[0].events_per_sec;
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"smarttrack-bench-serve/v1\",\n");
    json.push_str(&format!(
        "  \"scale\": {scale:e}, \"trials\": {trials}, \"streams\": {streams}, \
         \"events\": {events},\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(
        "  \"analyses\": [\"FTO-HB\", \"SmartTrack-WCP\", \"SmartTrack-DC\", \
         \"SmartTrack-WDC\"],\n",
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"connections\": {}, \"events_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}, \
             \"busy_retries\": {}}}{}\n",
            p.connections,
            p.events_per_sec,
            p.events_per_sec / base,
            p.busy_retries,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"caveat\": \"end-to-end loopback serving (encode + frame + TCP + reassemble + \
         analyze); sessions parallelize across connections, so throughput tracks \
         available_parallelism ({cores} cores here) until analysis workers saturate\"\n}}\n"
    ));
    std::fs::write(&out_path, json).expect("write BENCH_SERVE.json");
    println!("wrote {out_path}");
}
