//! Batch-analysis throughput scaling: one `EnginePool` over a mixed
//! xalan+avrora corpus at 1/2/4/8 workers.
//!
//! The corpus problem (thousands of recorded traces, one aggregated
//! report) parallelizes across *jobs*, so throughput should scale with
//! cores until the machine runs out of them. This bench measures
//! end-to-end corpus analysis (events/second over the whole batch,
//! including aggregation) and writes the result to `BENCH_BATCH.json` at
//! the repo root so the performance trajectory is machine-readable. It
//! also cross-checks that every worker count produced the bit-identical
//! `CorpusReport` — a perf run doubling as an equivalence smoke test.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p smarttrack-bench --bench batch_scaling -- \
//!     [--scale 1e-5] [--trials 3] [--out path.json]
//! ```
//!
//! The workload mix deliberately brackets the analysis cost spectrum
//! (lock-saturated xalan vs same-epoch-heavy avrora), so the job
//! durations are uneven — exactly the shape the shared injector queue is
//! for.

use std::time::Instant;

use smarttrack::{AnalysisConfig, BatchJob, Engine, EnginePool};
use smarttrack_trace::Trace;

/// Worker counts swept, matching the paper-style 1/2/4/8 presentation.
const WORKER_POINTS: [usize; 4] = [1, 2, 4, 8];

/// The CLI's default analysis selection (HB baseline + the three
/// SmartTrack-optimized predictive analyses).
fn default_engine() -> Engine {
    let configs: Vec<AnalysisConfig> = ["fto-hb", "st-wcp", "st-dc", "st-wdc"]
        .into_iter()
        .map(|name| name.parse().expect("known analysis"))
        .collect();
    Engine::builder().fanout(configs).build().expect("valid")
}

fn parse_args() -> (f64, usize, String) {
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BATCH.json").to_string();
    let (mut scale, mut trials, mut out) = (1e-5_f64, 3usize, default_out);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("numeric --scale"),
            "--trials" => trials = value("--trials").parse().expect("numeric --trials"),
            "--out" => out = value("--out"),
            // `cargo bench` forwards its own filter/flag arguments (e.g.
            // `--bench`); ignore anything we do not recognize.
            _ => {}
        }
    }
    (scale, trials.max(1), out)
}

fn main() {
    let (scale, trials, out_path) = parse_args();
    let corpus: Vec<(String, Trace)> = smarttrack_workloads::corpus(scale, &[11, 12, 13, 14]);
    let jobs = corpus.len();
    let events: usize = corpus.iter().map(|(_, t)| t.len()).sum();
    let engine = default_engine();
    let cores = smarttrack_parallel::worker_count(None);
    println!(
        "batch_scaling: {jobs} jobs, {events} events (scale {scale:e}), best of {trials} \
         trial(s), {cores} core(s) available"
    );

    let mut points: Vec<(usize, f64)> = Vec::new();
    let mut reports_identical = true;
    let mut baseline_json: Option<String> = None;
    for workers in WORKER_POINTS {
        let pool = EnginePool::new(engine.clone()).with_workers(workers);
        let mut best = 0f64;
        for _ in 0..trials {
            let batch: Vec<BatchJob> = corpus
                .iter()
                .map(|(label, trace)| BatchJob::from_trace(label.clone(), trace.clone()))
                .collect();
            let start = Instant::now();
            let report = pool.run(batch);
            let eps = events as f64 / start.elapsed().as_secs_f64();
            best = best.max(eps);
            assert_eq!(report.failed(), 0, "in-memory jobs cannot fail");
            let json = report.to_json();
            match &baseline_json {
                None => baseline_json = Some(json),
                Some(base) => reports_identical &= *base == json,
            }
        }
        let speedup = best / points.first().map_or(best, |&(_, b)| b);
        println!(
            "  {workers} worker(s): {:>8.2}M events/s  ({speedup:.2}x vs 1)",
            best / 1e6
        );
        points.push((workers, best));
    }
    assert!(
        reports_identical,
        "CorpusReport must not depend on worker count"
    );

    let base = points[0].1;
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"smarttrack-bench-batch/v1\",\n");
    json.push_str(&format!(
        "  \"scale\": {scale:e}, \"trials\": {trials}, \"jobs\": {jobs}, \"events\": {events},\n"
    ));
    json.push_str(&format!(
        "  \"available_parallelism\": {cores}, \"reports_identical_across_workers\": {reports_identical},\n"
    ));
    json.push_str("  \"analyses\": [\"FTO-HB\", \"SmartTrack-WCP\", \"SmartTrack-DC\", \"SmartTrack-WDC\"],\n");
    json.push_str("  \"points\": [\n");
    for (i, &(workers, eps)) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"events_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}}}{}\n",
            eps,
            eps / base,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"caveat\": \"pool scheduling adds no analysis work, so speedup tracks \
         available_parallelism; on a {cores}-core host the expected ceiling is ~{cores}x\"\n}}\n"
    ));
    std::fs::write(&out_path, json).expect("write BENCH_BATCH.json");
    println!("wrote {out_path}");
}
