//! Trace-ingest throughput: STB binary vs. the text formats.
//!
//! The motivating claim for STB (`docs/TRACE_FORMATS.md`) is that on long
//! recorded executions the *parse* cost of the line formats dominates the
//! analyses themselves. This bench measures, per format on the calibrated
//! xalan/avrora workloads:
//!
//! * `parse` — decode bytes to a validated `Trace` (no analysis);
//! * `parse+analyze` — decode, then run the headline SmartTrack-WDC
//!   analysis over a session (the end-to-end `smarttrack analyze` shape);
//! * `stream+analyze` (STB only) — decode chunk-at-a-time straight into
//!   the session, never materializing the `Trace` (the bounded-memory
//!   path the CLI takes for `.stb` input).
//!
//! Run with:
//!
//! ```text
//! cargo bench -p smarttrack-bench --bench ingest
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smarttrack::{AnalysisConfig, Engine, StreamHint};
use smarttrack_trace::binary::StbReader;
use smarttrack_trace::formats::{self, TraceFormat};
use smarttrack_workloads::profiles;

fn headline_engine() -> Engine {
    Engine::for_config("st-wdc".parse::<AnalysisConfig>().expect("known analysis"))
        .expect("available cell")
}

/// Decode + whole-trace analysis (what `analyze` does for text input).
fn parse_and_analyze(bytes: &[u8], format: TraceFormat, engine: &Engine) -> usize {
    let trace = formats::parse_bytes(bytes, format).expect("well-formed input");
    let mut session = engine.open();
    session.feed_trace(&trace).expect("validated trace");
    session.finish_one().report.dynamic_count()
}

/// Chunked STB decode fed straight into the session (what `analyze` does
/// for STB input) — no intermediate `Trace`.
fn stream_and_analyze(bytes: &[u8]) -> usize {
    let reader = StbReader::new(bytes).expect("valid STB");
    let engine = Engine::builder()
        .config("st-wdc".parse::<AnalysisConfig>().expect("known analysis"))
        .hint(StreamHint::of_stb_header(reader.header()))
        .build()
        .expect("available cell");
    let mut session = engine.open();
    for event in reader {
        session
            .feed(event.expect("valid STB"))
            .expect("well-formed");
    }
    session.finish_one().report.dynamic_count()
}

fn bench_ingest(c: &mut Criterion) {
    for workload in [profiles::xalan(), profiles::avrora()] {
        let trace = workload.trace(1e-5, 42);
        let encodings = [
            (
                "native",
                formats::render_bytes(&trace, TraceFormat::Native),
                TraceFormat::Native,
            ),
            (
                "std",
                formats::render_bytes(&trace, TraceFormat::Std),
                TraceFormat::Std,
            ),
            (
                "stb",
                formats::render_bytes(&trace, TraceFormat::Stb),
                TraceFormat::Stb,
            ),
        ];
        for (label, bytes, _) in &encodings {
            eprintln!(
                "ingest/{}: {} = {} bytes for {} events ({:.2} B/event)",
                workload.name,
                label,
                bytes.len(),
                trace.len(),
                bytes.len() as f64 / trace.len() as f64
            );
        }

        let engine = headline_engine();
        let mut group = c.benchmark_group(format!("ingest/{}", workload.name));
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.sample_size(10);
        for (label, bytes, format) in &encodings {
            group.bench_with_input(BenchmarkId::new("parse", *label), bytes, |b, bytes| {
                b.iter(|| formats::parse_bytes(bytes, *format).expect("parses").len())
            });
            group.bench_with_input(
                BenchmarkId::new("parse+analyze", *label),
                bytes,
                |b, bytes| b.iter(|| parse_and_analyze(bytes, *format, &engine)),
            );
        }
        let stb_bytes = &encodings[2].1;
        group.bench_with_input(
            BenchmarkId::new("stream+analyze", "stb"),
            stb_bytes,
            |b, bytes| b.iter(|| stream_and_analyze(bytes)),
        );
        group.finish();
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
