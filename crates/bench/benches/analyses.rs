//! Criterion benches: analysis throughput per (workload, analysis) cell —
//! the timing source behind Tables 3, 4, 5 (run `repro` for the formatted
//! paper tables; these benches give statistically robust per-cell numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smarttrack::{AnalysisConfig, OptLevel, Relation};
use smarttrack_detect::run_detector;
use smarttrack_workloads::profiles;

/// The analyses benched per workload: one per optimization level and
/// relation family (full grid × all programs would take hours; `repro`
/// covers the full grid with fewer samples).
fn bench_configs() -> Vec<AnalysisConfig> {
    vec![
        AnalysisConfig::new(Relation::Hb, OptLevel::Epochs),
        AnalysisConfig::new(Relation::Hb, OptLevel::Fto),
        AnalysisConfig::new(Relation::Wcp, OptLevel::Unopt),
        AnalysisConfig::new(Relation::Wcp, OptLevel::Fto),
        AnalysisConfig::new(Relation::Wcp, OptLevel::SmartTrack),
        AnalysisConfig::new(Relation::Dc, OptLevel::Unopt).with_graph(),
        AnalysisConfig::new(Relation::Dc, OptLevel::Unopt),
        AnalysisConfig::new(Relation::Dc, OptLevel::Fto),
        AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
        AnalysisConfig::new(Relation::Wdc, OptLevel::Unopt),
        AnalysisConfig::new(Relation::Wdc, OptLevel::Fto),
        AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack),
    ]
}

fn bench_workloads(c: &mut Criterion) {
    // The two performance extremes of Table 2: xalan (locks everywhere,
    // SmartTrack's best case) and sunflow-like same-epoch-heavy avrora.
    for workload in [profiles::xalan(), profiles::avrora(), profiles::h2()] {
        let trace = workload.trace(1e-5, 42);
        let mut group = c.benchmark_group(format!("analyze/{}", workload.name));
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.sample_size(10);
        for config in bench_configs() {
            group.bench_with_input(
                BenchmarkId::from_parameter(config.to_string()),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let mut det = config.detector().expect("valid cell");
                        run_detector(det.as_mut(), trace);
                        det.report().dynamic_count()
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_paper_figures(c: &mut Criterion) {
    // Microbenchmark on the Figure 1 pattern repeated: isolates per-event
    // analysis cost without workload noise.
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
    let mut b = TraceBuilder::new();
    for i in 0..2_000u32 {
        let x = VarId::new(3 * i);
        let y = VarId::new(3 * i + 1);
        let z = VarId::new(3 * i + 2);
        let m = LockId::new(0);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        b.push(t0, Op::Read(x)).unwrap();
        b.push(t0, Op::Acquire(m)).unwrap();
        b.push(t0, Op::Write(y)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        b.push(t1, Op::Read(z)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        b.push(t1, Op::Write(x)).unwrap();
    }
    let trace = b.finish();
    let mut group = c.benchmark_group("figure1_pattern");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    for config in [
        AnalysisConfig::new(Relation::Hb, OptLevel::Fto),
        AnalysisConfig::new(Relation::Dc, OptLevel::Unopt),
        AnalysisConfig::new(Relation::Dc, OptLevel::Fto),
        AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(config.to_string()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut det = config.detector().expect("valid cell");
                    run_detector(det.as_mut(), trace);
                    det.report().dynamic_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_paper_figures);
criterion_main!(benches);
