//! Criterion benches for the logical-time primitives: the constant-vs-O(T)
//! contrast between epochs and vector clocks that motivates FastTrack's (and
//! SmartTrack's) optimizations (§2.5, "Vector clocks").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smarttrack_clock::{Epoch, ThreadId, VectorClock};

fn bench_clock_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_ops");
    for threads in [8usize, 64, 512] {
        let a: VectorClock = (0..threads)
            .map(|i| (ThreadId::new(i as u32), i as u32 + 1))
            .collect();
        let mut b = a.clone();
        b.set(ThreadId::new(0), 1_000);
        group.bench_with_input(
            BenchmarkId::new("vc_join", threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    let mut x = a.clone();
                    x.join(&b);
                    x.get(ThreadId::new(0))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("vc_leq", threads), &threads, |bench, _| {
            bench.iter(|| a.leq(&b))
        });
        let e = Epoch::new(ThreadId::new((threads - 1) as u32), 3);
        group.bench_with_input(
            BenchmarkId::new("epoch_leq", threads),
            &threads,
            |bench, _| bench.iter(|| e.leq_vc(&b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clock_ops);
criterion_main!(benches);
