//! Single-stream hot-path throughput: per-analysis Mevents/s on the
//! calibrated xalan/avrora workloads over in-memory, text, and STB ingest,
//! plus the headline *mixed* number — the whole mixed corpus fed through
//! sequential 4-analysis fan-out sessions, directly comparable to the
//! 1-worker point of `BENCH_BATCH.json` (PR 3 measured 0.72 Mevents/s on
//! this container).
//!
//! Writes `BENCH_HOTPATH.json` at the repo root. `--check` re-measures and
//! compares against the committed JSON instead of overwriting it, failing
//! on a >20% throughput regression on the mixed headline or any matching
//! per-analysis point — the perf-regression harness CI runs in release
//! mode.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p smarttrack-bench --bench hotpath -- \
//!     [--scale 1e-5] [--trials 3] [--out path.json] [--check]
//! ```

use std::time::Instant;

use smarttrack::{AnalysisConfig, Engine, StreamHint};
use smarttrack_trace::binary::{to_stb_bytes, StbReader};
use smarttrack_trace::{fmt, Trace};

/// Maximum tolerated throughput drop vs the committed baseline, as a
/// fraction (0.20 = 20%). The committed numbers were measured on the
/// reference container; on different hardware set `HOTPATH_TOLERANCE`
/// (e.g. `0.5`) or re-baseline by re-running without `--check`.
const REGRESSION_TOLERANCE: f64 = 0.20;

fn tolerance() -> f64 {
    std::env::var("HOTPATH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(REGRESSION_TOLERANCE)
}

/// The PR 3 single-worker batch throughput on this container, in Mevents/s
/// (see `BENCH_BATCH.json`): the baseline the overhaul is measured against.
const PR3_BASELINE_MEVENTS_PER_S: f64 = 0.72;

/// The CLI's default analysis selection (HB baseline + the three
/// SmartTrack-optimized predictive analyses).
const ANALYSES: [&str; 4] = ["fto-hb", "st-wcp", "st-dc", "st-wdc"];

/// Beyond-Table-1 lanes measured per workload alongside the defaults.
/// Not part of the mixed headline, which stays the CLI's default 4-analysis
/// fan-out so `speedup_vs_pr3` remains comparable across PRs.
const EXTENDED_ANALYSES: [&str; 2] = ["syncp", "osr"];

struct Point {
    workload: String,
    ingest: &'static str,
    analysis: String,
    mevents_per_s: f64,
}

fn engine_for(analysis: &str) -> Engine {
    let config: AnalysisConfig = analysis.parse().expect("known analysis");
    Engine::for_config(config).expect("known analysis config")
}

fn default_engine() -> Engine {
    let configs: Vec<AnalysisConfig> = ANALYSES
        .into_iter()
        .map(|name| name.parse().expect("known analysis"))
        .collect();
    Engine::builder().fanout(configs).build().expect("valid")
}

/// Best observed events/second over `trials` runs of `work` (which returns
/// the number of events it processed).
///
/// Fast workloads finish in well under a millisecond, where a single
/// execution is dominated by timer granularity and cache noise — so each
/// trial repeats `work` enough times (calibrated from a warm-up run) to
/// span at least ~10 ms of measurement.
fn best_eps(trials: usize, mut work: impl FnMut() -> usize) -> f64 {
    const MIN_TRIAL: std::time::Duration = std::time::Duration::from_millis(10);
    let start = Instant::now();
    let events = work(); // warm-up + calibration
    let once = start.elapsed().max(std::time::Duration::from_micros(1));
    let reps = (MIN_TRIAL.as_secs_f64() / once.as_secs_f64())
        .ceil()
        .max(1.0) as usize;
    let mut best = events as f64 / once.as_secs_f64();
    for _ in 0..trials {
        let start = Instant::now();
        let mut n = 0usize;
        for _ in 0..reps {
            n += work();
        }
        best = best.max(n as f64 / start.elapsed().as_secs_f64());
    }
    best
}

fn measure_points(corpus: &[(String, Trace)], trials: usize) -> Vec<Point> {
    let mut points = Vec::new();
    for (label, trace) in corpus {
        let text = fmt::render(trace);
        let stb = to_stb_bytes(trace);
        for analysis in ANALYSES.into_iter().chain(EXTENDED_ANALYSES) {
            let engine = engine_for(analysis);
            let name = engine.configs()[0].to_string();

            // In-memory: pre-parsed trace, analysis cost only.
            let mem = best_eps(trials, || {
                let mut session = engine.open();
                session.feed_trace(trace).expect("calibrated trace");
                session.finish_one().report.dynamic_count();
                trace.len()
            });
            // Text: parse the native line format, then analyze.
            let text_eps = best_eps(trials, || {
                let parsed = fmt::parse(&text).expect("self-rendered text");
                let mut session = engine.open();
                session.feed_trace(&parsed).expect("calibrated trace");
                session.finish_one();
                parsed.len()
            });
            // STB: decode the binary stream straight into the session,
            // never materializing a Trace (the live-ingest shape).
            let stb_eps = best_eps(trials, || {
                let reader = StbReader::new(&stb[..]).expect("self-written STB");
                let hint = StreamHint::of_stb_header(reader.header());
                let mut session = engine.open_with_hint(hint);
                let mut n = 0usize;
                for event in reader {
                    session.feed(event.expect("clean stream")).expect("valid");
                    n += 1;
                }
                session.finish_one();
                n
            });
            for (ingest, eps) in [("mem", mem), ("text", text_eps), ("stb", stb_eps)] {
                points.push(Point {
                    workload: label.clone(),
                    ingest,
                    analysis: name.clone(),
                    mevents_per_s: eps / 1e6,
                });
            }
        }
    }
    points
}

/// The headline: every corpus trace through one sequential 4-analysis
/// fan-out session (the 1-worker batch shape, minus pool scheduling).
fn measure_mixed(corpus: &[(String, Trace)], trials: usize) -> f64 {
    let engine = default_engine();
    let events: usize = corpus.iter().map(|(_, t)| t.len()).sum();
    best_eps(trials, || {
        for (_, trace) in corpus {
            let mut session = engine.open();
            session.feed_trace(trace).expect("calibrated trace");
            session.finish();
        }
        events
    }) / 1e6
}

fn render_json(
    scale: f64,
    trials: usize,
    events: usize,
    cores: usize,
    mixed: f64,
    points: &[Point],
) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"smarttrack-bench-hotpath/v1\",\n");
    json.push_str(&format!(
        "  \"scale\": {scale:e}, \"trials\": {trials}, \"events\": {events},\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    json.push_str(&format!(
        "  \"baseline_pr3_mixed_mevents_per_s\": {PR3_BASELINE_MEVENTS_PER_S},\n"
    ));
    json.push_str(&format!(
        "  \"mixed\": {{ \"mevents_per_s\": {:.4}, \"speedup_vs_pr3\": {:.2} }},\n",
        mixed,
        mixed / PR3_BASELINE_MEVENTS_PER_S
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"ingest\": \"{}\", \"analysis\": \"{}\", \
             \"mevents_per_s\": {:.4} }}{}\n",
            p.workload,
            p.ingest,
            p.analysis,
            p.mevents_per_s,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Minimal extraction of `"key": number` pairs from the committed JSON
/// (schema is ours; no external JSON dependency in this workspace).
fn extract_number(json: &str, after: &str, key: &str) -> Option<f64> {
    let start = json.find(after)?;
    let rest = &json[start..];
    let kpos = rest.find(&format!("\"{key}\":"))?;
    let tail = rest[kpos + key.len() + 3..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn check_against(committed: &str, mixed: f64, points: &[Point]) -> Result<(), String> {
    // The mixed headline spans the whole corpus and is stable; individual
    // points measure sub-second windows where shared-machine noise is
    // irreducible, so they get double the tolerance.
    let tol = tolerance();
    let point_tol = (2.0 * tol).min(0.95);
    let mut failures = Vec::new();
    let base_mixed = extract_number(committed, "\"mixed\"", "mevents_per_s")
        .ok_or("committed JSON lacks mixed.mevents_per_s")?;
    if mixed < base_mixed * (1.0 - tol) {
        failures.push(format!(
            "mixed: {mixed:.3} Mev/s < {:.3} (committed {base_mixed:.3} - {:.0}%)",
            base_mixed * (1.0 - tol),
            tol * 100.0
        ));
    }
    for p in points {
        let anchor = format!(
            "\"workload\": \"{}\", \"ingest\": \"{}\", \"analysis\": \"{}\"",
            p.workload, p.ingest, p.analysis
        );
        let Some(base) = extract_number(committed, &anchor, "mevents_per_s") else {
            // Points absent from the committed file (e.g. new analyses) are
            // not regressions.
            continue;
        };
        if p.mevents_per_s < base * (1.0 - point_tol) {
            failures.push(format!(
                "{} {} {}: {:.3} Mev/s vs committed {:.3} (-{:.0}% allowed)",
                p.workload,
                p.ingest,
                p.analysis,
                p.mevents_per_s,
                base,
                point_tol * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn parse_args() -> (f64, usize, String, bool) {
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_HOTPATH.json").to_string();
    let (mut scale, mut trials, mut out, mut check) = (1e-5_f64, 3usize, default_out, false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--scale" => scale = value("--scale").parse().expect("numeric --scale"),
            "--trials" => trials = value("--trials").parse().expect("numeric --trials"),
            "--out" => out = value("--out"),
            "--check" => check = true,
            // `cargo bench` forwards its own filter/flag arguments (e.g.
            // `--bench`); ignore anything we do not recognize.
            _ => {}
        }
    }
    (scale, trials.max(1), out, check)
}

fn main() {
    let (scale, mut trials, out_path, check) = parse_args();
    if check {
        // Regression checking compares best-of-N throughput against the
        // committed baseline; a low N under-measures on a noisy shared
        // container and flags phantom regressions.
        trials = trials.max(5);
    }
    // Per-analysis points use one seed per workload; the mixed headline uses
    // the full 8-trace corpus matching BENCH_BATCH.json.
    let corpus: Vec<(String, Trace)> = smarttrack_workloads::corpus(scale, &[11, 12, 13, 14]);
    let mut point_corpus: Vec<(String, Trace)> = corpus
        .iter()
        .take(2)
        .map(|(l, t)| (l.trim_end_matches("-s11").to_string(), t.clone()))
        .collect();
    // The condvar/barrier-heavy lane: covers the wait/notify/barrier clock
    // rules (hard edges + composed release/reacquire) on every analysis hot
    // path, so a regression in the new sync handlers is caught by --check.
    point_corpus.push((
        "condsync".to_string(),
        smarttrack_workloads::profiles::condsync().trace(scale, 11),
    ));
    // The reader/writer-lock-heavy lane: mostly-read-mode sections with a
    // trylock-failure sprinkle, exercising the acqr/acqw/tryf clock rules
    // (read-clock aggregates, rule (b) read-mode peeks) on every analysis
    // hot path, so a regression in the rwlock handlers is caught by --check.
    point_corpus.push((
        "rwmix".to_string(),
        smarttrack_workloads::profiles::rwmix().trace(scale, 11),
    ));
    let events: usize = corpus.iter().map(|(_, t)| t.len()).sum();
    let cores = smarttrack_parallel::worker_count(None);
    println!(
        "hotpath: {events} events (scale {scale:e}), best of {trials} trial(s), \
         {cores} core(s) available"
    );

    let points = measure_points(&point_corpus, trials);
    for p in &points {
        println!(
            "  {:<10} {:<5} {:<15} {:>7.3} Mevents/s",
            p.workload, p.ingest, p.analysis, p.mevents_per_s
        );
    }
    let mixed = measure_mixed(&corpus, trials);
    println!(
        "  mixed 4-analysis single stream: {mixed:.3} Mevents/s ({:.2}x vs PR3's \
         {PR3_BASELINE_MEVENTS_PER_S})",
        mixed / PR3_BASELINE_MEVENTS_PER_S
    );

    if check {
        let committed = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("--check needs {out_path}: {e}"));
        let mut verdict = check_against(&committed, mixed, &points);
        if verdict.is_err() {
            // A whole measurement pass can be slowed by transient
            // contention on a shared machine; re-measure once and keep the
            // best of both passes before declaring a regression.
            println!("regression suspected; re-measuring once to rule out transient noise");
            let retry_points = measure_points(&point_corpus, trials);
            let merged: Vec<Point> = points
                .into_iter()
                .zip(retry_points)
                .map(|(a, b)| {
                    if b.mevents_per_s > a.mevents_per_s {
                        b
                    } else {
                        a
                    }
                })
                .collect();
            let mixed = mixed.max(measure_mixed(&corpus, trials));
            verdict = check_against(&committed, mixed, &merged);
        }
        match verdict {
            Ok(()) => println!("within {:.0}% of committed baseline", tolerance() * 100.0),
            Err(report) => {
                eprintln!("throughput regression vs committed {out_path}:\n{report}");
                std::process::exit(1);
            }
        }
    } else {
        let json = render_json(scale, trials, events, cores, mixed, &points);
        std::fs::write(&out_path, json).expect("write BENCH_HOTPATH.json");
        println!("wrote {out_path}");
    }
}
