//! Criterion benches for the parallel analyses (§5.1): online analysis
//! throughput as application thread count grows, for the no-contention and
//! full-contention workload shapes, plus the lock-free same-epoch fast path
//! against the locked slow path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smarttrack_bench::parallel_scaling::{scaling_program, Contention};
use smarttrack_parallel::{run_online, ConcurrentFtoHb, ConcurrentSmartTrackWdc, WorldSpec};

const TOTAL_OPS: usize = 24_000;

fn bench_online_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_online");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL_OPS as u64));
    for contention in [Contention::Disjoint, Contention::Shared] {
        for threads in [1u32, 2, 4, 8] {
            let program = scaling_program(threads, TOTAL_OPS, contention);
            group.bench_with_input(
                BenchmarkId::new(format!("FTO-HB/{}", contention.label()), threads),
                &threads,
                |bench, _| {
                    bench.iter(|| {
                        let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
                        run_online(&program, &analysis, false).expect("valid program")
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("ST-WDC/{}", contention.label()), threads),
                &threads,
                |bench, _| {
                    bench.iter(|| {
                        let analysis =
                            ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
                        run_online(&program, &analysis, false).expect("valid program")
                    })
                },
            );
        }
    }
    group.finish();
}

/// The §5.1 claim in isolation: a same-epoch hit costs one atomic load; a
/// miss pays the mutex. Single-threaded feed over two extreme traces.
fn bench_fast_path(c: &mut Criterion) {
    use smarttrack_clock::ThreadId;
    use smarttrack_parallel::feed_trace;
    use smarttrack_trace::{Op, TraceBuilder, VarId};

    let mut group = c.benchmark_group("same_epoch_fast_path");
    let n = 20_000u32;
    // All hits: one thread re-reads one variable.
    let mut hits = TraceBuilder::new();
    for _ in 0..n {
        hits.push(ThreadId::new(0), Op::Read(VarId::new(0)))
            .unwrap();
    }
    let hits = hits.finish();
    // All misses: one thread walks distinct variables.
    let mut misses = TraceBuilder::new();
    for i in 0..n {
        misses
            .push(ThreadId::new(0), Op::Read(VarId::new(i)))
            .unwrap();
    }
    let misses = misses.finish();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("hits", |bench| {
        bench.iter(|| {
            let analysis = ConcurrentFtoHb::new(WorldSpec::of_trace(&hits));
            feed_trace(&analysis, &hits)
        })
    });
    group.bench_function("misses", |bench| {
        bench.iter(|| {
            let analysis = ConcurrentFtoHb::new(WorldSpec::of_trace(&misses));
            feed_trace(&analysis, &misses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_online_scaling, bench_fast_path);
criterion_main!(benches);
