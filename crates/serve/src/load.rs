//! A load generator for the serve daemon.
//!
//! [`run_load`] replays a workload corpus over `clients` concurrent
//! connections, each streaming its share of the traces as back-to-back
//! sessions on one connection. With validation on, every returned report
//! is checked race-for-race against an offline [`analyze`] of the same
//! trace, and every pushed race notice must appear in its session's final
//! report — the server may drop pushes under pressure, but must never
//! invent one.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use smarttrack_detect::{analyze, AnalysisConfig};
use smarttrack_trace::Trace;

use crate::client::{ClientError, ServeClient};
use crate::protocol::WireRace;
use crate::server::wire_race;

/// Distinguishes concurrent [`run_load`] probes against one server.
static PROBE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Knobs for [`run_load`].
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Data frame payload size (0 = protocol default).
    pub chunk_bytes: usize,
    /// Check every report against offline analysis of the same trace.
    pub validate: bool,
    /// Tenant name sessions are registered under.
    pub tenant: String,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 4,
            chunk_bytes: 0,
            validate: true,
            tenant: "load".to_string(),
        }
    }
}

/// What a [`run_load`] run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Connections opened.
    pub clients: usize,
    /// Sessions streamed to completion.
    pub sessions: usize,
    /// Events analyzed across all sessions (from the final reports).
    pub events: u64,
    /// STB bytes streamed.
    pub bytes: u64,
    /// Wall-clock time from first connect to last report.
    pub elapsed: Duration,
    /// Data frames that bounced with `Busy` before acceptance.
    pub busy_retries: u64,
    /// Dynamic races in the final reports, summed over lanes.
    pub races: u64,
    /// Race notices pushed over the sockets mid-stream.
    pub pushed: u64,
    /// Validation and transport failures, one line each.
    pub failures: Vec<String>,
}

impl LoadReport {
    /// Events per second of wall-clock time.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// One session's races: per lane, the lane index and its sorted list.
type LaneRaces = Vec<(u16, Vec<WireRace>)>;

/// Sorted per-lane race lists, as the server would wire-encode them.
fn offline_expected(trace: &Trace, lanes: &[(u16, AnalysisConfig)]) -> LaneRaces {
    lanes
        .iter()
        .map(|&(lane, config)| {
            let outcome = analyze(trace, config);
            let mut races: Vec<WireRace> = outcome
                .report
                .races()
                .iter()
                .map(|r| wire_race(lane, r))
                .collect();
            races.sort();
            (lane, races)
        })
        .collect()
}

struct ClientTally {
    sessions: usize,
    events: u64,
    bytes: u64,
    busy_retries: u64,
    races: u64,
    pushed: u64,
    failures: Vec<String>,
}

fn drive_client(
    addr: SocketAddr,
    tenant: &str,
    chunk_bytes: usize,
    work: &[(usize, &str, &Trace)],
    expected: Option<&[LaneRaces]>,
) -> ClientTally {
    let mut tally = ClientTally {
        sessions: 0,
        events: 0,
        bytes: 0,
        busy_retries: 0,
        races: 0,
        pushed: 0,
        failures: Vec::new(),
    };
    let mut client: Option<ServeClient> = None;
    for &(trace_idx, name, trace) in work {
        let session_name = format!("load-{trace_idx}-{name}");
        let attach = match client.as_mut() {
            None => ServeClient::connect(addr, tenant, &session_name, false).map(|c| {
                client = Some(c);
            }),
            Some(c) => c.hello_again(tenant, &session_name, false),
        };
        if let Err(e) = attach {
            tally.failures.push(format!("{session_name}: hello: {e}"));
            client = None;
            continue;
        }
        let c = client.as_mut().expect("attached client");
        let busy_before = c.busy_retries();
        let result = stream_session(c, trace, chunk_bytes);
        tally.busy_retries += c.busy_retries() - busy_before;
        match result {
            Ok((report_events, report_bytes, lanes, pushed)) => {
                tally.sessions += 1;
                tally.events += report_events;
                tally.bytes += report_bytes;
                tally.pushed += pushed.len() as u64;
                tally.races += lanes.iter().map(|(_, r)| r.len() as u64).sum::<u64>();
                if let Some(expected) = expected {
                    validate_session(
                        &session_name,
                        &lanes,
                        &pushed,
                        &expected[trace_idx],
                        &mut tally.failures,
                    );
                }
            }
            Err(e) => {
                tally.failures.push(format!("{session_name}: {e}"));
                // The session may be wedged server-side; drop the
                // connection so the next session starts clean.
                client = None;
            }
        }
    }
    tally
}

/// Streams one trace as one session; returns (events, bytes, sorted
/// per-lane races, pushed races).
#[allow(clippy::type_complexity)]
fn stream_session(
    client: &mut ServeClient,
    trace: &Trace,
    chunk_bytes: usize,
) -> Result<(u64, u64, Vec<(u16, Vec<WireRace>)>, Vec<WireRace>), ClientError> {
    let stb = smarttrack_trace::binary::to_stb_bytes(trace);
    let bytes = stb.len() as u64;
    client.stream_bytes(&stb, chunk_bytes)?;
    let report = client.finish()?;
    let pushed = client.pushed_races();
    let lanes = report
        .lanes
        .iter()
        .enumerate()
        .map(|(i, lane)| {
            let mut races = lane.races.clone();
            races.sort();
            (i as u16, races)
        })
        .collect();
    Ok((report.events, bytes, lanes, pushed))
}

fn validate_session(
    session: &str,
    got: &[(u16, Vec<WireRace>)],
    pushed: &[WireRace],
    expected: &[(u16, Vec<WireRace>)],
    failures: &mut Vec<String>,
) {
    if got.len() != expected.len() {
        failures.push(format!(
            "{session}: server reported {} lanes, offline has {}",
            got.len(),
            expected.len()
        ));
        return;
    }
    for ((lane, races), (_, want)) in got.iter().zip(expected) {
        if races != want {
            failures.push(format!(
                "{session}: lane {lane} diverges from offline analysis \
                 ({} races vs {} offline)",
                races.len(),
                want.len()
            ));
        }
    }
    for race in pushed {
        let genuine = got
            .iter()
            .any(|(lane, races)| *lane == race.lane && races.binary_search(race).is_ok());
        if !genuine {
            failures.push(format!(
                "{session}: pushed race on lane {} absent from the final report",
                race.lane
            ));
        }
    }
}

/// Replays `traces` over `options.clients` concurrent connections against
/// the serve daemon at `addr`.
///
/// Trace `i` goes to client `i % clients`; each client streams its traces
/// as consecutive sessions on a single connection. Failures are collected
/// in [`LoadReport::failures`] rather than aborting the run.
///
/// # Errors
///
/// [`ClientError`] only if the initial probe connection (which discovers
/// the server's lane set) fails — per-session failures are reported, not
/// returned.
pub fn run_load(
    addr: SocketAddr,
    traces: &[(String, Trace)],
    options: &LoadOptions,
) -> Result<LoadReport, ClientError> {
    let clients = options.clients.max(1);

    // One probe session discovers the lane set (name + config per lane)
    // so offline validation analyzes exactly what the server runs.
    let probe_name = format!(
        "load-probe-{}-{}",
        std::process::id(),
        PROBE_SEQ.fetch_add(1, Ordering::SeqCst)
    );
    let mut probe = ServeClient::connect(addr, &options.tenant, &probe_name, false)?;
    let lane_infos = probe.lanes().to_vec();
    probe.finish()?;
    drop(probe);

    let lane_configs: Vec<(u16, AnalysisConfig)> = lane_infos
        .iter()
        .enumerate()
        .filter_map(|(i, info)| info.config.parse().ok().map(|c| (i as u16, c)))
        .collect();

    let expected: Option<Arc<Vec<LaneRaces>>> = if options.validate {
        Some(Arc::new(
            traces
                .iter()
                .map(|(_, trace)| offline_expected(trace, &lane_configs))
                .collect(),
        ))
    } else {
        None
    };

    let started = Instant::now();
    let tallies: Arc<Mutex<Vec<ClientTally>>> = Arc::default();
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let work: Vec<(usize, &str, &Trace)> = traces
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == client_idx)
                .map(|(i, (name, trace))| (i, name.as_str(), trace))
                .collect();
            if work.is_empty() {
                continue;
            }
            let tallies = Arc::clone(&tallies);
            let expected = expected.clone();
            let tenant = options.tenant.clone();
            let chunk_bytes = options.chunk_bytes;
            scope.spawn(move || {
                let tally = drive_client(
                    addr,
                    &tenant,
                    chunk_bytes,
                    &work,
                    expected.as_deref().map(|e| &e[..]),
                );
                tallies.lock().expect("tally lock").push(tally);
            });
        }
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        clients,
        elapsed,
        ..LoadReport::default()
    };
    for tally in tallies.lock().expect("tally lock").iter() {
        report.sessions += tally.sessions;
        report.events += tally.events;
        report.bytes += tally.bytes;
        report.busy_retries += tally.busy_retries;
        report.races += tally.races;
        report.pushed += tally.pushed;
        report.failures.extend(tally.failures.iter().cloned());
    }
    Ok(report)
}
