//! The serve framing protocol: typed, length-prefixed frames over a byte
//! stream.
//!
//! Every frame is a 5-byte header — one type byte plus a `u32` (LE)
//! payload length — followed by the payload. The byte-level layout of
//! every payload is specified normatively in `docs/SERVE_PROTOCOL.md`;
//! this module is its reference implementation, symmetric enough that the
//! fuzz battery decodes whatever it encodes and vice versa.
//!
//! Decoding is incremental ([`FrameBuf`]) because the server reads sockets
//! with a poll timeout and must tolerate frames arriving in arbitrary
//! fragments; the blocking [`read_frame`] face serves the simpler client
//! side.

use std::io::{self, Read, Write};

use crate::wire::{put_str, put_u16, put_u32, put_u64, put_u8, Cursor, WireError};

/// Protocol version carried by [`Frame::Hello`]; servers refuse others.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on one frame's payload. Larger length prefixes are rejected
/// *before* any allocation — a 4 GiB length prefix must not reserve 4 GiB.
pub const MAX_FRAME_BYTES: u32 = 8 << 20;

/// Recommended size for [`Frame::Data`] payloads: big enough to amortize
/// framing, small enough to interleave with query responses.
pub const DEFAULT_DATA_CHUNK: usize = 64 * 1024;

// Frame type bytes. Client-originated frames use the low range,
// server-originated frames set the high bit.
pub(crate) const FT_HELLO: u8 = 0x01;
pub(crate) const FT_DATA: u8 = 0x02;
pub(crate) const FT_QUERY: u8 = 0x03;
pub(crate) const FT_FINISH: u8 = 0x04;
pub(crate) const FT_DETACH: u8 = 0x05;
pub(crate) const FT_WELCOME: u8 = 0x81;
pub(crate) const FT_ACK: u8 = 0x82;
pub(crate) const FT_BUSY: u8 = 0x83;
pub(crate) const FT_RACE: u8 = 0x84;
pub(crate) const FT_REPORT: u8 = 0x85;
pub(crate) const FT_SNAPSHOT: u8 = 0x86;
pub(crate) const FT_RACES: u8 = 0x87;
pub(crate) const FT_ERROR: u8 = 0x88;
pub(crate) const FT_GOODBYE: u8 = 0x89;

/// What a [`Frame::Query`] asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Full per-lane state: counts, footprint, events ([`Frame::Snapshot`]).
    Snapshot,
    /// The races found so far ([`Frame::Races`]).
    Races,
}

/// Why the server refused a frame or closed a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The byte stream violated the framing protocol.
    Protocol,
    /// A non-resume hello named a session that already exists.
    SessionExists,
    /// A resume hello named a session another connection is driving.
    SessionAttached,
    /// The tenant/session pair is unknown (evicted or never opened).
    UnknownSession,
    /// The session's STB stream failed (corrupt, truncated, or malformed);
    /// the session is poisoned and can only be finished or detached.
    StreamFailed,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// An internal server failure (e.g. a panicked analysis).
    Internal,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::SessionExists => 2,
            ErrorCode::SessionAttached => 3,
            ErrorCode::UnknownSession => 4,
            ErrorCode::StreamFailed => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::SessionExists,
            3 => ErrorCode::SessionAttached,
            4 => ErrorCode::UnknownSession,
            5 => ErrorCode::StreamFailed,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// One analysis lane as advertised in [`Frame::Welcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneInfo {
    /// Analysis name, as in the paper's tables (e.g. `ST-WDC`).
    pub name: String,
    /// The parseable configuration string (e.g. `st-wdc`), so a client can
    /// reproduce the server's analysis offline.
    pub config: String,
}

/// One dynamic race on the wire — the fields of
/// [`RaceReport`](smarttrack_detect::RaceReport), with ids flattened to
/// raw `u32`s and the detecting lane named by its [`Frame::Welcome`] index.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WireRace {
    /// Index into the welcome frame's lane list.
    pub lane: u16,
    /// Trace index of the detecting access event.
    pub event: u32,
    /// Static program location of the detecting access.
    pub loc: u32,
    /// Thread of the detecting access.
    pub tid: u32,
    /// Variable raced on.
    pub var: u32,
    /// True when the detecting access is a write.
    pub write: bool,
    /// Threads of the prior conflicting accesses found unordered.
    pub prior_tids: Vec<u32>,
}

/// One lane's final (or so-far) race list inside a [`WireReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireLane {
    /// Analysis name.
    pub name: String,
    /// Parseable configuration string.
    pub config: String,
    /// Statically distinct race count (distinct locations).
    pub static_count: u32,
    /// Every dynamic race, in detection order.
    pub races: Vec<WireRace>,
}

/// The per-lane race lists of one session ([`Frame::Report`] at finish,
/// [`Frame::Races`] mid-stream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireReport {
    /// Events analyzed.
    pub events: u64,
    /// One entry per lane, in welcome order.
    pub lanes: Vec<WireLane>,
}

/// One lane's counters inside a [`WireSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireLaneState {
    /// Analysis name.
    pub name: String,
    /// Dynamic races so far.
    pub dynamic: u64,
    /// Statically distinct races so far.
    pub static_count: u64,
    /// Exact live metadata bytes.
    pub footprint_bytes: u64,
    /// Peak sampled metadata bytes.
    pub peak_footprint_bytes: u64,
    /// Events this lane has processed.
    pub events: u64,
}

/// Mid-stream session state ([`Frame::Snapshot`]), the wire shape of
/// [`SessionSnapshot`](smarttrack_detect::SessionSnapshot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Events ingested so far.
    pub events: u64,
    /// Heap bytes held by the session's id interner.
    pub interner_bytes: u64,
    /// One entry per lane, in welcome order.
    pub lanes: Vec<WireLaneState>,
}

/// Every frame of the serve protocol. See `docs/SERVE_PROTOCOL.md` for the
/// normative byte layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open (or resume) a session.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// Reattach to an existing detached session instead of failing
        /// with [`ErrorCode::SessionExists`]; creates the session if it
        /// does not exist.
        resume: bool,
        /// Tenant namespace (registry key half one).
        tenant: String,
        /// Session name, unique per tenant (registry key half two).
        session: String,
    },
    /// Client → server: raw STB stream bytes, split anywhere.
    Data(Vec<u8>),
    /// Client → server: ask for mid-stream state.
    Query(QueryKind),
    /// Client → server: end of stream; finish the session and return its
    /// [`Frame::Report`].
    Finish,
    /// Client → server: detach, leaving the session resumable until the
    /// idle timeout evicts it.
    Detach,
    /// Server → client: the hello was accepted.
    Welcome {
        /// True when an existing session was resumed.
        resumed: bool,
        /// Events the session had already ingested before this hello.
        events: u64,
        /// The analysis lanes this server runs, in lane-index order.
        lanes: Vec<LaneInfo>,
    },
    /// Server → client: a [`Frame::Data`] payload was accepted.
    Ack {
        /// Total stream bytes accepted so far (across resumes).
        accepted: u64,
    },
    /// Server → client: the session's ingest queue is full; the data frame
    /// was **dropped** — back off and resend it.
    Busy {
        /// Bytes currently queued for analysis.
        queued: u64,
        /// The per-session queue capacity.
        capacity: u64,
    },
    /// Server → client: a race, pushed as it was detected.
    Race(WireRace),
    /// Server → client: the final report; the session is closed.
    Report(WireReport),
    /// Server → client: answer to [`QueryKind::Snapshot`].
    Snapshot(WireSnapshot),
    /// Server → client: answer to [`QueryKind::Races`]; the session
    /// continues.
    Races(WireReport),
    /// Server → client: a refusal or failure.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: the server is closing this connection (shutdown
    /// drain); any session was detached and remains resumable.
    Goodbye {
        /// Why the connection is closing.
        reason: String,
    },
}

/// A framing violation. The connection that produced it cannot continue —
/// there is no way to resynchronize a length-prefixed stream after a bad
/// header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame header declared a payload larger than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared type byte.
        frame: u8,
        /// The declared payload length.
        len: u32,
    },
    /// The type byte names no known frame.
    UnknownFrameType(u8),
    /// The payload of a known frame type failed to decode.
    Malformed {
        /// The frame's type byte.
        frame: u8,
        /// The field-level failure.
        source: WireError,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { frame, len } => write!(
                f,
                "frame {frame:#04x} declares a {len}-byte payload, over the \
                 {MAX_FRAME_BYTES}-byte cap"
            ),
            ProtocolError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtocolError::Malformed { frame, source } => {
                write!(f, "malformed frame {frame:#04x}: {source}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn race_body(out: &mut Vec<u8>, race: &WireRace) {
    put_u32(out, race.event);
    put_u32(out, race.loc);
    put_u32(out, race.tid);
    put_u32(out, race.var);
    put_u8(out, race.write as u8);
    put_u16(out, race.prior_tids.len() as u16);
    for &tid in &race.prior_tids {
        put_u32(out, tid);
    }
}

fn decode_race_body(c: &mut Cursor<'_>, lane: u16) -> Result<WireRace, WireError> {
    let event = c.u32("race event id")?;
    let loc = c.u32("race location")?;
    let tid = c.u32("race thread id")?;
    let var = c.u32("race variable")?;
    let write = match c.u8("race access kind")? {
        0 => false,
        1 => true,
        _ => {
            return Err(WireError {
                offset: 0,
                what: "race access kind (not 0/1)",
            })
        }
    };
    let nprior = c.u16("race prior count")?;
    let mut prior_tids = Vec::with_capacity(nprior as usize);
    for _ in 0..nprior {
        prior_tids.push(c.u32("race prior thread")?);
    }
    Ok(WireRace {
        lane,
        event,
        loc,
        tid,
        var,
        write,
        prior_tids,
    })
}

fn report_body(out: &mut Vec<u8>, report: &WireReport) {
    put_u64(out, report.events);
    put_u16(out, report.lanes.len() as u16);
    for lane in &report.lanes {
        put_str(out, &lane.name);
        put_str(out, &lane.config);
        put_u32(out, lane.static_count);
        put_u32(out, lane.races.len() as u32);
        for race in &lane.races {
            race_body(out, race);
        }
    }
}

fn decode_report_body(c: &mut Cursor<'_>) -> Result<WireReport, WireError> {
    let events = c.u64("report events")?;
    let nlanes = c.u16("report lane count")?;
    let mut lanes = Vec::with_capacity(nlanes as usize);
    for lane_index in 0..nlanes {
        let name = c.str("lane name")?;
        let config = c.str("lane config")?;
        let static_count = c.u32("lane static count")?;
        let nraces = c.u32("lane race count")?;
        let mut races = Vec::new();
        for _ in 0..nraces {
            races.push(decode_race_body(c, lane_index)?);
        }
        lanes.push(WireLane {
            name,
            config,
            static_count,
            races,
        });
    }
    Ok(WireReport { events, lanes })
}

/// Serializes one frame: 5-byte header plus payload.
///
/// # Panics
///
/// Panics if the payload would exceed [`MAX_FRAME_BYTES`] — the caller
/// controls every variable-length field and must chunk its data.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    let ty = match frame {
        Frame::Hello {
            version,
            resume,
            tenant,
            session,
        } => {
            put_u16(&mut payload, *version);
            put_u8(&mut payload, *resume as u8);
            put_str(&mut payload, tenant);
            put_str(&mut payload, session);
            FT_HELLO
        }
        Frame::Data(bytes) => {
            payload.extend_from_slice(bytes);
            FT_DATA
        }
        Frame::Query(kind) => {
            put_u8(
                &mut payload,
                match kind {
                    QueryKind::Snapshot => 0,
                    QueryKind::Races => 1,
                },
            );
            FT_QUERY
        }
        Frame::Finish => FT_FINISH,
        Frame::Detach => FT_DETACH,
        Frame::Welcome {
            resumed,
            events,
            lanes,
        } => {
            put_u8(&mut payload, *resumed as u8);
            put_u64(&mut payload, *events);
            put_u16(&mut payload, lanes.len() as u16);
            for lane in lanes {
                put_str(&mut payload, &lane.name);
                put_str(&mut payload, &lane.config);
            }
            FT_WELCOME
        }
        Frame::Ack { accepted } => {
            put_u64(&mut payload, *accepted);
            FT_ACK
        }
        Frame::Busy { queued, capacity } => {
            put_u64(&mut payload, *queued);
            put_u64(&mut payload, *capacity);
            FT_BUSY
        }
        Frame::Race(race) => {
            put_u16(&mut payload, race.lane);
            race_body(&mut payload, race);
            FT_RACE
        }
        Frame::Report(report) => {
            report_body(&mut payload, report);
            FT_REPORT
        }
        Frame::Races(report) => {
            report_body(&mut payload, report);
            FT_RACES
        }
        Frame::Snapshot(snapshot) => {
            put_u64(&mut payload, snapshot.events);
            put_u64(&mut payload, snapshot.interner_bytes);
            put_u16(&mut payload, snapshot.lanes.len() as u16);
            for lane in &snapshot.lanes {
                put_str(&mut payload, &lane.name);
                put_u64(&mut payload, lane.dynamic);
                put_u64(&mut payload, lane.static_count);
                put_u64(&mut payload, lane.footprint_bytes);
                put_u64(&mut payload, lane.peak_footprint_bytes);
                put_u64(&mut payload, lane.events);
            }
            FT_SNAPSHOT
        }
        Frame::Error { code, message } => {
            put_u16(&mut payload, code.to_u16());
            put_str(&mut payload, message);
            FT_ERROR
        }
        Frame::Goodbye { reason } => {
            put_str(&mut payload, reason);
            FT_GOODBYE
        }
    };
    assert!(
        payload.len() <= MAX_FRAME_BYTES as usize,
        "frame {ty:#04x} payload of {} bytes exceeds MAX_FRAME_BYTES",
        payload.len()
    );
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(ty);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one payload whose header named `ty`.
fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    let malformed = |source| ProtocolError::Malformed { frame: ty, source };
    let mut c = Cursor::new(payload);
    let frame = match ty {
        FT_HELLO => Frame::Hello {
            version: c.u16("hello version").map_err(malformed)?,
            resume: c.u8("hello resume flag").map_err(malformed)? != 0,
            tenant: c.str("hello tenant").map_err(malformed)?,
            session: c.str("hello session").map_err(malformed)?,
        },
        FT_DATA => Frame::Data(c.rest().to_vec()),
        FT_QUERY => match c.u8("query kind").map_err(malformed)? {
            0 => Frame::Query(QueryKind::Snapshot),
            1 => Frame::Query(QueryKind::Races),
            _ => {
                return Err(malformed(WireError {
                    offset: 0,
                    what: "query kind (not 0/1)",
                }))
            }
        },
        FT_FINISH => Frame::Finish,
        FT_DETACH => Frame::Detach,
        FT_WELCOME => {
            let resumed = c.u8("welcome resumed flag").map_err(malformed)? != 0;
            let events = c.u64("welcome events").map_err(malformed)?;
            let nlanes = c.u16("welcome lane count").map_err(malformed)?;
            let mut lanes = Vec::with_capacity(nlanes as usize);
            for _ in 0..nlanes {
                let name = c.str("welcome lane name").map_err(malformed)?;
                let config = c.str("welcome lane config").map_err(malformed)?;
                lanes.push(LaneInfo { name, config });
            }
            Frame::Welcome {
                resumed,
                events,
                lanes,
            }
        }
        FT_ACK => Frame::Ack {
            accepted: c.u64("ack accepted bytes").map_err(malformed)?,
        },
        FT_BUSY => Frame::Busy {
            queued: c.u64("busy queued bytes").map_err(malformed)?,
            capacity: c.u64("busy capacity").map_err(malformed)?,
        },
        FT_RACE => {
            let lane = c.u16("race lane").map_err(malformed)?;
            Frame::Race(decode_race_body(&mut c, lane).map_err(malformed)?)
        }
        FT_REPORT => Frame::Report(decode_report_body(&mut c).map_err(malformed)?),
        FT_RACES => Frame::Races(decode_report_body(&mut c).map_err(malformed)?),
        FT_SNAPSHOT => {
            let events = c.u64("snapshot events").map_err(malformed)?;
            let interner_bytes = c.u64("snapshot interner bytes").map_err(malformed)?;
            let nlanes = c.u16("snapshot lane count").map_err(malformed)?;
            let mut lanes = Vec::with_capacity(nlanes as usize);
            for _ in 0..nlanes {
                lanes.push(WireLaneState {
                    name: c.str("snapshot lane name").map_err(malformed)?,
                    dynamic: c.u64("snapshot dynamic count").map_err(malformed)?,
                    static_count: c.u64("snapshot static count").map_err(malformed)?,
                    footprint_bytes: c.u64("snapshot footprint").map_err(malformed)?,
                    peak_footprint_bytes: c.u64("snapshot peak footprint").map_err(malformed)?,
                    events: c.u64("snapshot lane events").map_err(malformed)?,
                });
            }
            Frame::Snapshot(WireSnapshot {
                events,
                interner_bytes,
                lanes,
            })
        }
        FT_ERROR => {
            let raw = c.u16("error code").map_err(malformed)?;
            let code = ErrorCode::from_u16(raw).ok_or(malformed(WireError {
                offset: 0,
                what: "error code (unknown)",
            }))?;
            Frame::Error {
                code,
                message: c.str("error message").map_err(malformed)?,
            }
        }
        FT_GOODBYE => Frame::Goodbye {
            reason: c.str("goodbye reason").map_err(malformed)?,
        },
        other => return Err(ProtocolError::UnknownFrameType(other)),
    };
    c.finish().map_err(malformed)?;
    Ok(frame)
}

/// Attempts to decode one frame from the front of `buf`. Returns the frame
/// and the bytes it consumed, or `None` when `buf` holds only a partial
/// frame.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtocolError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let ty = buf[0];
    let len = u32::from_le_bytes(buf[1..5].try_into().expect("four bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized { frame: ty, len });
    }
    let total = 5 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = decode_payload(ty, &buf[5..total])?;
    Ok(Some((frame, total)))
}

/// An incremental frame accumulator: push raw socket bytes in, pull whole
/// frames out. The server's connection loops feed it from reads with a
/// poll timeout, so a frame may arrive across many reads.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, or `None` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on a framing violation; the stream cannot be
    /// resynchronized afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        match decode_frame(&self.buf[self.start..])? {
            Some((frame, consumed)) => {
                self.start += consumed;
                if self.start == self.buf.len() || self.start >= 64 * 1024 {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Writes one frame to a blocking transport.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Reads one frame from a blocking transport (the client side, where reads
/// have no poll timeout). Returns `None` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors, or a [`ProtocolError`] (as `InvalidData`) on framing
/// violations — including EOF inside a frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 5];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let ty = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().expect("four bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::Oversized { frame: ty, len }.to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(ty, &payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                resume: true,
                tenant: "acme".into(),
                session: "run-42".into(),
            },
            Frame::Data(vec![0x89, 0x53, 0x54, 0x42, 1, 0]),
            Frame::Query(QueryKind::Snapshot),
            Frame::Query(QueryKind::Races),
            Frame::Finish,
            Frame::Detach,
            Frame::Welcome {
                resumed: false,
                events: 7,
                lanes: vec![
                    LaneInfo {
                        name: "ST-WDC".into(),
                        config: "st-wdc".into(),
                    },
                    LaneInfo {
                        name: "FTO-HB".into(),
                        config: "fto-hb".into(),
                    },
                ],
            },
            Frame::Ack { accepted: 1 << 40 },
            Frame::Busy {
                queued: 9,
                capacity: 10,
            },
            Frame::Race(WireRace {
                lane: 1,
                event: 5,
                loc: u32::MAX,
                tid: 2,
                var: 0,
                write: true,
                prior_tids: vec![0, 1],
            }),
            Frame::Report(WireReport {
                events: 100,
                lanes: vec![WireLane {
                    name: "ST-WDC".into(),
                    config: "st-wdc".into(),
                    static_count: 1,
                    races: vec![WireRace {
                        lane: 0,
                        event: 9,
                        loc: 3,
                        tid: 1,
                        var: 4,
                        write: false,
                        prior_tids: vec![0],
                    }],
                }],
            }),
            Frame::Races(WireReport {
                events: 1,
                lanes: vec![],
            }),
            Frame::Snapshot(WireSnapshot {
                events: 50,
                interner_bytes: 1024,
                lanes: vec![WireLaneState {
                    name: "FT2".into(),
                    dynamic: 2,
                    static_count: 1,
                    footprint_bytes: 4096,
                    peak_footprint_bytes: 8192,
                    events: 50,
                }],
            }),
            Frame::Error {
                code: ErrorCode::StreamFailed,
                message: "truncated at byte 17".into(),
            },
            Frame::Goodbye {
                reason: "shutting down".into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("decodes").expect("complete");
            assert_eq!(consumed, bytes.len(), "{frame:?}");
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn framebuf_reassembles_split_streams() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode_frame(frame));
        }
        for step in [1, 2, 7, 64, stream.len()] {
            let mut buf = FrameBuf::new();
            let mut decoded = Vec::new();
            for piece in stream.chunks(step) {
                buf.push(piece);
                while let Some(frame) = buf.next_frame().expect("valid stream") {
                    decoded.push(frame);
                }
            }
            assert_eq!(decoded, frames, "step {step}");
            assert_eq!(buf.pending(), 0);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = vec![FT_DATA];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&bytes).unwrap_err();
        assert!(matches!(err, ProtocolError::Oversized { .. }), "{err}");
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_rejected() {
        let mut bytes = vec![0x7f];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            ProtocolError::UnknownFrameType(0x7f)
        ));

        // A Finish frame with a non-empty payload violates the layout.
        let mut bytes = vec![FT_FINISH];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            ProtocolError::Malformed { .. }
        ));
    }

    #[test]
    fn blocking_read_frame_matches_decode() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode_frame(frame));
        }
        let mut r = &stream[..];
        let mut decoded = Vec::new();
        while let Some(frame) = read_frame(&mut r).expect("valid stream") {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames);
    }
}
