//! Little-endian wire primitives shared by every frame codec.
//!
//! The serve protocol (see `docs/SERVE_PROTOCOL.md`) uses fixed-width
//! little-endian integers and `u16`-length-prefixed UTF-8 strings — no
//! varints, so a frame's layout is computable from its type alone and a
//! fuzzer's bit flips land on well-defined field boundaries.

use std::fmt;

/// A decode failure inside one frame payload: the byte offset (within the
/// payload) and what was being read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Offset within the frame payload where decoding failed.
    pub offset: usize,
    /// The field being decoded.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload byte {}: bad {}", self.offset, self.what)
    }
}

impl std::error::Error for WireError {}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a string as `u16` byte length + UTF-8 bytes. Longer strings are
/// a caller bug — the protocol has no business shipping them.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("protocol strings fit in u16");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over one frame payload.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let start = self.pos;
        let end = start.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                self.pos = end;
                Ok(&self.bytes[start..end])
            }
            None => Err(WireError {
                offset: start,
                what,
            }),
        }
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("two bytes"),
        ))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("four bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("eight bytes"),
        ))
    }

    pub(crate) fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let offset = self.pos;
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError { offset, what })
    }

    /// The unread remainder of the payload.
    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let rest = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        rest
    }

    /// Asserts the payload was consumed exactly — trailing bytes are a
    /// protocol violation, not padding.
    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError {
                offset: self.pos,
                what: "end of payload (trailing bytes)",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "tenant/α");

        let mut c = Cursor::new(&out);
        assert_eq!(c.u8("a").unwrap(), 7);
        assert_eq!(c.u16("b").unwrap(), 0xBEEF);
        assert_eq!(c.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(c.str("e").unwrap(), "tenant/α");
        c.finish().unwrap();
    }

    #[test]
    fn out_of_bounds_and_trailing_bytes_are_errors() {
        let mut c = Cursor::new(&[1, 2]);
        assert_eq!(c.u32("field").unwrap_err().what, "field");

        let mut c = Cursor::new(&[1, 2, 3]);
        c.u16("ok").unwrap();
        let err = c.finish().unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut c = Cursor::new(&[2, 0, 0xff, 0xfe]);
        assert!(c.str("name").is_err());
    }
}
