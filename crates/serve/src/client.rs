//! A blocking client for the serve protocol.
//!
//! [`ServeClient`] drives one session at a time over one connection:
//! hello, stream STB bytes in [`Frame::Data`] chunks (transparently
//! backing off on [`Frame::Busy`]), query mid-stream, finish into a
//! [`WireReport`]. Race frames the server pushes while we wait for any
//! response are collected into [`ServeClient::pushed_races`].

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use smarttrack_trace::Trace;

use crate::protocol::{
    encode_frame, ErrorCode, Frame, FrameBuf, LaneInfo, QueryKind, WireRace, WireReport,
    WireSnapshot, DEFAULT_DATA_CHUNK, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// How long [`ServeClient::send_chunk`] keeps retrying around
/// [`Frame::Busy`] before declaring the server wedged.
const BUSY_GIVE_UP: Duration = Duration::from_secs(60);

/// A failure on the client side of a serve conversation.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The peer violated the protocol (bad frame, wrong response type).
    Protocol(String),
    /// The server answered with an [`Frame::Error`].
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
    /// The server stayed busy past the client's patience.
    Saturated,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Saturated => write!(f, "server stayed busy past the retry budget"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One authenticated, attached serve session.
pub struct ServeClient {
    stream: TcpStream,
    frames: FrameBuf,
    scratch: Vec<u8>,
    lanes: Vec<LaneInfo>,
    resumed: bool,
    resumed_events: u64,
    pushed: Vec<WireRace>,
    busy_retries: u64,
    acked_bytes: u64,
}

impl ServeClient {
    /// Connects and performs the hello handshake for `tenant`/`session`.
    /// With `resume`, reattaches to a detached session of that name if one
    /// survives on the server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect failure, [`ClientError::Server`] if
    /// the server refuses the session (exists, attached, draining),
    /// [`ClientError::Protocol`] on a malformed handshake.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        tenant: &str,
        session: &str,
        resume: bool,
    ) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = ServeClient {
            stream,
            frames: FrameBuf::new(),
            scratch: vec![0u8; 64 * 1024],
            lanes: Vec::new(),
            resumed: false,
            resumed_events: 0,
            pushed: Vec::new(),
            busy_retries: 0,
            acked_bytes: 0,
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            resume,
            tenant: tenant.to_string(),
            session: session.to_string(),
        })?;
        match client.recv_response()? {
            Frame::Welcome {
                resumed,
                events,
                lanes,
            } => {
                client.resumed = resumed;
                client.resumed_events = events;
                client.lanes = lanes;
                Ok(client)
            }
            other => Err(unexpected("welcome", &other)),
        }
    }

    /// The analysis lanes the server advertised, in lane-index order.
    pub fn lanes(&self) -> &[LaneInfo] {
        &self.lanes
    }

    /// Whether the hello reattached to an existing session.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Events the session had already analyzed when we (re)attached.
    pub fn resumed_events(&self) -> u64 {
        self.resumed_events
    }

    /// Stream bytes the server has acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.acked_bytes
    }

    /// How many data chunks bounced with `Busy` before being accepted.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Race notices pushed by the server so far (drained by the caller).
    pub fn pushed_races(&mut self) -> Vec<WireRace> {
        std::mem::take(&mut self.pushed)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&encode_frame(frame))?;
        Ok(())
    }

    /// Blocks for the next frame off the wire.
    fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            match self.frames.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
            let n = self.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.frames.push(&self.scratch[..n]);
        }
    }

    /// The next *response* frame: pushed races are absorbed, a goodbye or
    /// server error becomes a [`ClientError`].
    fn recv_response(&mut self) -> Result<Frame, ClientError> {
        loop {
            match self.recv()? {
                Frame::Race(race) => self.pushed.push(race),
                Frame::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Frame::Goodbye { reason } => {
                    return Err(ClientError::Server {
                        code: ErrorCode::ShuttingDown,
                        message: reason,
                    })
                }
                frame => return Ok(frame),
            }
        }
    }

    /// Sends one raw STB chunk, retrying with backoff while the server
    /// answers [`Frame::Busy`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Saturated`] if the server stays busy for the
    /// give-up window (60 s); transport and server errors pass through.
    pub fn send_chunk(&mut self, bytes: &[u8]) -> Result<u64, ClientError> {
        let deadline = std::time::Instant::now() + BUSY_GIVE_UP;
        let mut backoff = Duration::from_micros(200);
        loop {
            self.send(&Frame::Data(bytes.to_vec()))?;
            match self.recv_response()? {
                Frame::Ack { accepted } => {
                    self.acked_bytes = accepted;
                    return Ok(accepted);
                }
                Frame::Busy { .. } => {
                    self.busy_retries += 1;
                    if std::time::Instant::now() >= deadline {
                        return Err(ClientError::Saturated);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                other => return Err(unexpected("ack or busy", &other)),
            }
        }
    }

    /// STB-encodes `trace` and streams it in `chunk_bytes`-sized data
    /// frames (0 means [`DEFAULT_DATA_CHUNK`]).
    ///
    /// # Errors
    ///
    /// Propagates [`ServeClient::send_chunk`] failures.
    pub fn stream_trace(&mut self, trace: &Trace, chunk_bytes: usize) -> Result<u64, ClientError> {
        let bytes = smarttrack_trace::binary::to_stb_bytes(trace);
        self.stream_bytes(&bytes, chunk_bytes)
    }

    /// Streams pre-encoded STB bytes in `chunk_bytes`-sized data frames.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] if `chunk_bytes` exceeds
    /// [`MAX_FRAME_BYTES`] (no frame
    /// could carry such a chunk); otherwise propagates
    /// [`ServeClient::send_chunk`] failures.
    pub fn stream_bytes(&mut self, bytes: &[u8], chunk_bytes: usize) -> Result<u64, ClientError> {
        let chunk = if chunk_bytes == 0 {
            DEFAULT_DATA_CHUNK
        } else {
            chunk_bytes
        };
        if chunk > MAX_FRAME_BYTES as usize {
            return Err(ClientError::Protocol(format!(
                "data chunk of {chunk} bytes exceeds the {MAX_FRAME_BYTES}-byte frame cap"
            )));
        }
        let mut accepted = self.acked_bytes;
        for piece in bytes.chunks(chunk) {
            accepted = self.send_chunk(piece)?;
        }
        Ok(accepted)
    }

    /// Mid-stream state query: per-lane event counts and footprints.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn query_snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        self.send(&Frame::Query(QueryKind::Snapshot))?;
        match self.recv_response()? {
            Frame::Snapshot(s) => Ok(s),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Mid-stream race query: every race each lane has found so far.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn query_races(&mut self) -> Result<WireReport, ClientError> {
        self.send(&Frame::Query(QueryKind::Races))?;
        match self.recv_response()? {
            Frame::Races(r) => Ok(r),
            other => Err(unexpected("races", &other)),
        }
    }

    /// Ends the stream and collects the final report. The session is gone
    /// afterwards; the connection may hello again for a fresh one.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::StreamFailed`] if the
    /// stream was truncated or malformed.
    pub fn finish(&mut self) -> Result<WireReport, ClientError> {
        self.send(&Frame::Finish)?;
        self.acked_bytes = 0;
        self.resumed = false;
        self.resumed_events = 0;
        match self.recv_response()? {
            Frame::Report(r) => Ok(r),
            other => Err(unexpected("report", &other)),
        }
    }

    /// Detaches, leaving the session resumable on the server until its
    /// idle timeout.
    ///
    /// # Errors
    ///
    /// Transport errors only; detach has no reply.
    pub fn detach(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Detach)
    }

    /// Hellos again on the same connection (after [`ServeClient::finish`]
    /// or [`ServeClient::detach`]) for another session.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ServeClient::connect`].
    pub fn hello_again(
        &mut self,
        tenant: &str,
        session: &str,
        resume: bool,
    ) -> Result<(), ClientError> {
        self.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            resume,
            tenant: tenant.to_string(),
            session: session.to_string(),
        })?;
        match self.recv_response()? {
            Frame::Welcome {
                resumed,
                events,
                lanes,
            } => {
                self.resumed = resumed;
                self.resumed_events = events;
                self.lanes = lanes;
                self.acked_bytes = 0;
                Ok(())
            }
            other => Err(unexpected("welcome", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Frame) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
