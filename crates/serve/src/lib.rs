//! Race detection as a service.
//!
//! This crate turns the offline SmartTrack analysis engine into a
//! long-running daemon: clients stream STB-encoded traces over TCP and
//! get race reports back — final reports at end of stream, snapshots and
//! race lists mid-stream, and individual race notices pushed the moment a
//! lane detects them.
//!
//! Everything is plain `std`: `TcpListener` + threads, bounded
//! `std::sync::mpsc` channels, no async runtime. See
//! `docs/SERVE_PROTOCOL.md` for the byte-level frame specification.
//!
//! - [`Server`] — the daemon: session registry, sticky worker-owned
//!   analysis sessions, byte-budget backpressure, graceful drain.
//! - [`ServeClient`] — a blocking client driving one session at a time.
//! - [`run_load`] — a load generator replaying a workload corpus over
//!   many concurrent connections, validating against offline analysis.
//! - [`protocol`] — the frame codec both sides share.

#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod protocol;
pub mod server;
mod wire;

pub use client::{ClientError, ServeClient};
pub use load::{run_load, LoadOptions, LoadReport};
pub use protocol::{
    ErrorCode, Frame, LaneInfo, ProtocolError, QueryKind, WireLane, WireLaneState, WireRace,
    WireReport, WireSnapshot, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{default_analyses, ServeError, Server, ServerConfig};
pub use wire::WireError;
