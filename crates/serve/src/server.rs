//! The serving daemon: many concurrent STB producers, one shared pool of
//! analysis workers.
//!
//! # Architecture
//!
//! Each accepted connection gets a **reader loop** (the accept thread
//! spawns it) and a **writer thread** (owns the socket's write half; every
//! outbound frame funnels through one bounded channel, so worker-pushed
//! race frames and reader-loop replies serialize without locking the
//! socket). Analysis runs on a fixed pool of **worker threads** sized by
//! [`worker_count`] — the same machinery as
//! [`EnginePool`](smarttrack_detect::EnginePool).
//!
//! A [`Session`] is not `Send` (detector lanes
//! hold unsynchronized state by design), so sessions are **owned by one
//! worker each**, assigned round-robin at open and sticky for their
//! lifetime; connections talk to them by message. Per-session byte
//! streams therefore replay in arrival order on one thread, which is what
//! makes server reports deterministic and independent of the worker
//! count. Each session decodes through an
//! [`StbAssembler`], so workers
//! never block on a socket: bytes in, events out.
//!
//! Ingest is bounded end to end: a per-session byte budget covers both
//! the worker's inbound channel and the assembler's reassembly buffer —
//! debited by the reader loop, re-measured by the worker after each
//! frame it digests — and a data frame that would overflow it is
//! **dropped** and answered with [`Frame::Busy`] (the client backs off
//! and resends). Declared STB chunks larger than
//! [`ServerConfig::max_chunk_bytes`] fail their session outright, so a
//! hostile stream cannot demand a 64 MiB reassembly buffer the budget
//! would never admit. Worst-case memory per session is therefore
//! `session_queue_bytes + max_chunk_bytes` plus one in-flight frame. A
//! slow *consumer* (a client not draining its race pushes) costs only
//! dropped race notices, never memory: pushes go through the bounded
//! writer channel with `try_send`.

use std::collections::HashMap;
use std::io::{BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smarttrack_detect::{
    worker_count, AccessKind, AnalysisConfig, Engine, RaceNotice, RaceReport, Session,
    SessionSnapshot,
};
use smarttrack_trace::binary::StbAssembler;

use crate::protocol::{
    write_frame, ErrorCode, Frame, FrameBuf, LaneInfo, QueryKind, WireLane, WireLaneState,
    WireRace, WireReport, WireSnapshot, PROTOCOL_VERSION,
};

/// How often blocked reader loops and the housekeeper re-check shutdown
/// and idle state.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Sockets that make zero write progress for this long are declared dead,
/// so a stalled client cannot pin a writer thread past shutdown.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a race push waits for outbound-queue space before shedding.
/// A reading client drains the queue in microseconds, so an attached
/// consumer sees every notice; once a push times out the session is
/// marked degraded and later pushes drop immediately instead of each
/// paying this wait, so a stalled client costs one bounded stall total.
const PUSH_WAIT: Duration = Duration::from_millis(100);

/// Tuning for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The analysis lanes every session runs (deduplicated, in order).
    ///
    /// Note on `syncp` and `osr`: both extension rows buffer the trace,
    /// so their per-session state grows with the number of events
    /// streamed (unlike the vector-clock lanes, whose state is bounded
    /// by threads × variables). A deployment that enables a `syncp` or
    /// `osr` lane should bound session length — finish and reopen
    /// sessions periodically — rather than stream one session
    /// indefinitely; `state_bytes` in the stats frame reports the growth
    /// honestly.
    pub analyses: Vec<AnalysisConfig>,
    /// Worker pool size; `None` defers to `SMARTTRACK_WORKERS` and then
    /// detected parallelism, exactly like [`worker_count`].
    pub workers: Option<usize>,
    /// Detached sessions idle longer than this are evicted.
    pub idle_timeout: Duration,
    /// Per-session ingest budget in bytes, covering both data frames
    /// queued at the worker and bytes the session's assembler holds for
    /// an incomplete STB chunk: data frames beyond it bounce with
    /// [`Frame::Busy`]. A frame is always admitted when the worker queue
    /// is empty, so progress is possible whatever the frame size.
    pub session_queue_bytes: usize,
    /// Largest STB chunk a streamed session accepts, in bytes. The
    /// format allows chunks up to 64 MiB, each of which must be
    /// reassembled contiguously before it can decode; a multiplexing
    /// server caps the declared size (default 8 MiB — one data frame's
    /// worth) so a hostile stream cannot pin a 64 MiB buffer per
    /// session. A chunk declaring more fails that session with
    /// [`ErrorCode::StreamFailed`].
    pub max_chunk_bytes: usize,
    /// Outbound frame queue per connection (replies + race pushes); race
    /// pushes beyond it are counted and dropped.
    pub outbound_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            analyses: default_analyses(),
            workers: None,
            idle_timeout: Duration::from_secs(60),
            session_queue_bytes: 4 << 20,
            max_chunk_bytes: 8 << 20,
            outbound_queue: 1024,
        }
    }
}

/// The default analysis lanes: the CLI `batch` defaults — FTO-HB plus the
/// three SmartTrack predictive analyses.
pub fn default_analyses() -> Vec<AnalysisConfig> {
    ["fto-hb", "st-wcp", "st-dc", "st-wdc"]
        .iter()
        .map(|name| name.parse().expect("default analyses parse"))
        .collect()
}

/// A failure starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The analysis set was empty or invalid for the engine.
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Engine(msg) => write!(f, "engine: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// State a session shares between its owning worker, the connection
/// currently driving it, and the housekeeper.
struct SessionShared {
    uid: u64,
    worker: usize,
    /// Bytes admitted but not yet analyzed (the backpressure budget).
    queued_bytes: AtomicUsize,
    /// Bytes the assembler holds for an incomplete STB chunk
    /// (worker-updated after each digested frame; counted against the
    /// same budget so mid-chunk reassembly cannot outgrow it).
    buffered_bytes: AtomicUsize,
    /// Total stream bytes admitted, across resumes (the `Ack` counter).
    accepted_bytes: AtomicU64,
    /// Events analyzed so far (worker-updated; shown in `Welcome` on
    /// resume).
    events: AtomicU64,
    /// Whether a connection is currently driving this session.
    attached: AtomicBool,
    /// First stream failure, if any; set once by the worker.
    failed: Mutex<Option<String>>,
    /// When the session was last detached (eviction clock).
    detached_at: Mutex<Instant>,
    /// Race pushes dropped because no (or a slow) consumer was attached.
    dropped_notices: AtomicU64,
    /// Latched when a push times out waiting for queue space; cleared by
    /// the next successful push.
    degraded: AtomicBool,
}

impl SessionShared {
    fn failure(&self) -> Option<String> {
        self.failed.lock().expect("failed lock").clone()
    }
}

/// Commands a worker executes for the sessions it owns. All items for one
/// session flow through its owner's FIFO channel in the order its (sole)
/// driving connection produced them.
enum WorkItem {
    Open {
        shared: Arc<SessionShared>,
        outbound: Outbound,
    },
    Attach {
        uid: u64,
        tx: SyncSender<Frame>,
        /// Answered with the session's analyzed-event count *after* the
        /// worker has drained every data frame admitted before the
        /// detach, so the resume `Welcome` reports an exact figure.
        reply: Sender<u64>,
    },
    Detach {
        uid: u64,
    },
    Data {
        uid: u64,
        bytes: Vec<u8>,
    },
    Query {
        uid: u64,
        kind: QueryKind,
        reply: Sender<Frame>,
    },
    Finish {
        uid: u64,
        reply: Sender<Frame>,
    },
    Evict {
        uid: u64,
    },
    Stop,
}

/// The currently-attached connection's outbound channel, shared with the
/// session's race sink. `None` while detached: pushes are dropped (and
/// counted) rather than buffered unboundedly.
type Outbound = Arc<Mutex<Option<SyncSender<Frame>>>>;

type RegistryKey = (String, String);

struct Shared {
    registry: Mutex<HashMap<RegistryKey, Arc<SessionShared>>>,
    next_uid: AtomicU64,
    next_worker: AtomicUsize,
    worker_txs: Vec<Sender<WorkItem>>,
    shutdown: AtomicBool,
    lanes: Vec<LaneInfo>,
    session_queue_bytes: usize,
    outbound_queue: usize,
    idle_timeout: Duration,
    connections_closed: AtomicU64,
}

/// A running serve daemon. Dropping (or calling
/// [`shutdown`](Server::shutdown)) drains gracefully: in-flight frames are
/// processed, connected clients get a [`Frame::Goodbye`], workers finish
/// their queues, and every thread is joined.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    housekeeper: Option<JoinHandle<()>>,
    stopped: bool,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind fails, [`ServeError::Engine`] if the
    /// analysis set cannot build an engine.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Server, ServeError> {
        let mut analyses = Vec::new();
        for a in &config.analyses {
            if !analyses.contains(a) {
                analyses.push(*a);
            }
        }
        let engine = Engine::builder()
            .fanout(analyses)
            .build()
            .map_err(|e| ServeError::Engine(e.to_string()))?;
        // Lane names and order come from the engine itself, via a
        // throwaway zero-event session.
        let lanes: Vec<LaneInfo> = engine
            .open()
            .snapshot()
            .lanes
            .iter()
            .map(|lane| LaneInfo {
                name: lane.name.clone(),
                config: lane.config.map(|c| c.to_string()).unwrap_or_default(),
            })
            .collect();
        let lane_index: Arc<HashMap<String, u16>> = Arc::new(
            lanes
                .iter()
                .enumerate()
                .map(|(i, lane)| (lane.name.clone(), i as u16))
                .collect(),
        );

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;

        let workers_n = worker_count(config.workers);
        let chunk_cap = config.max_chunk_bytes.max(1) as u64;
        let mut worker_txs = Vec::with_capacity(workers_n);
        let mut worker_handles = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let (tx, rx) = mpsc::channel::<WorkItem>();
            worker_txs.push(tx);
            let engine = engine.clone();
            let lane_index = Arc::clone(&lane_index);
            let lanes = lanes.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(engine, lanes, lane_index, rx, chunk_cap))
                    .expect("spawn worker"),
            );
        }

        let shared = Arc::new(Shared {
            registry: Mutex::new(HashMap::new()),
            next_uid: AtomicU64::new(0),
            next_worker: AtomicUsize::new(0),
            worker_txs,
            shutdown: AtomicBool::new(false),
            lanes,
            session_queue_bytes: config.session_queue_bytes.max(1),
            outbound_queue: config.outbound_queue.max(1),
            idle_timeout: config.idle_timeout,
            connections_closed: AtomicU64::new(0),
        });

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_shared = Arc::clone(&accept_shared);
                    let handle = std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || connection_loop(stream, conn_shared))
                        .expect("spawn connection");
                    accept_conns.lock().expect("conns lock").push(handle);
                }
            })
            .expect("spawn accept");

        let hk_shared = Arc::clone(&shared);
        let housekeeper = std::thread::Builder::new()
            .name("serve-housekeeper".into())
            .spawn(move || housekeeper_loop(&hk_shared))
            .expect("spawn housekeeper");

        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            conns,
            workers: worker_handles,
            housekeeper: Some(housekeeper),
            stopped: false,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The advertised analysis lanes, in lane-index order.
    pub fn lanes(&self) -> &[LaneInfo] {
        &self.shared.lanes
    }

    /// Number of analysis workers.
    pub fn workers(&self) -> usize {
        self.shared.worker_txs.len()
    }

    /// Connections fully served and closed so far.
    pub fn connections_closed(&self) -> u64 {
        self.shared.connections_closed.load(Ordering::SeqCst)
    }

    /// Open sessions currently in the registry (attached or resumable).
    pub fn live_sessions(&self) -> usize {
        self.shared.registry.lock().expect("registry lock").len()
    }

    /// Gracefully drains and stops: no new connections, connected clients
    /// get a [`Frame::Goodbye`], queued analysis work completes, all
    /// threads join.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Reader loops notice the flag within a poll tick, say goodbye,
        // detach, and exit.
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for h in conns {
            let _ = h.join();
        }
        // Workers drain every queued item before the Stop sentinel.
        for tx in &self.shared.worker_txs {
            let _ = tx.send(WorkItem::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.housekeeper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn housekeeper_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL_TICK);
        let now = Instant::now();
        let mut evicted: Vec<Arc<SessionShared>> = Vec::new();
        {
            let mut registry = shared.registry.lock().expect("registry lock");
            registry.retain(|_, s| {
                if s.attached.load(Ordering::SeqCst) {
                    return true;
                }
                let idle = now.duration_since(*s.detached_at.lock().expect("detach lock"));
                if idle <= shared.idle_timeout {
                    return true;
                }
                evicted.push(Arc::clone(s));
                false
            });
        }
        for s in evicted {
            let _ = shared.worker_txs[s.worker].send(WorkItem::Evict { uid: s.uid });
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side: sessions live here.

struct Entry {
    session: Session<'static>,
    asm: StbAssembler,
    shared: Arc<SessionShared>,
    outbound: Outbound,
}

pub(crate) fn wire_race(lane: u16, race: &RaceReport) -> WireRace {
    WireRace {
        lane,
        event: race.event.raw(),
        loc: race.loc.raw(),
        tid: race.tid.raw(),
        var: race.var.raw(),
        write: matches!(race.kind, AccessKind::Write),
        prior_tids: race.prior_threads.iter().map(|t| t.raw()).collect(),
    }
}

/// Delivers one race notice at the attached client's outbound queue.
/// Waits up to [`PUSH_WAIT`] for space (an attached, reading client never
/// needs close to that), drops and counts otherwise.
fn push_notice(outbound: &Outbound, shared: &SessionShared, frame: Frame) {
    let mut pending = frame;
    let deadline = Instant::now() + PUSH_WAIT;
    loop {
        let attempt = match outbound.lock().expect("outbound lock").as_ref() {
            // Detached: nobody to push to. Count and move on.
            None => {
                shared.dropped_notices.fetch_add(1, Ordering::SeqCst);
                return;
            }
            Some(tx) => tx.try_send(pending),
        };
        match attempt {
            Ok(()) => {
                shared.degraded.store(false, Ordering::SeqCst);
                return;
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                shared.dropped_notices.fetch_add(1, Ordering::SeqCst);
                return;
            }
            Err(mpsc::TrySendError::Full(frame)) => {
                if shared.degraded.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    shared.degraded.store(true, Ordering::SeqCst);
                    shared.dropped_notices.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                pending = frame;
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

fn error_frame(code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::Error {
        code,
        message: message.into(),
    }
}

/// Builds the mid-stream or final per-lane race lists from a snapshot.
fn wire_report(lanes: &[LaneInfo], snapshot: &SessionSnapshot) -> WireReport {
    WireReport {
        events: snapshot.events as u64,
        lanes: snapshot
            .lanes
            .iter()
            .zip(lanes)
            .enumerate()
            .map(|(i, (lane, info))| WireLane {
                name: info.name.clone(),
                config: info.config.clone(),
                static_count: lane.report.static_count() as u32,
                races: lane
                    .report
                    .races()
                    .iter()
                    .map(|r| wire_race(i as u16, r))
                    .collect(),
            })
            .collect(),
    }
}

fn wire_snapshot(snapshot: &SessionSnapshot) -> WireSnapshot {
    WireSnapshot {
        events: snapshot.events as u64,
        interner_bytes: snapshot.interner_bytes as u64,
        lanes: snapshot
            .lanes
            .iter()
            .map(|lane| WireLaneState {
                name: lane.name.clone(),
                dynamic: lane.report.dynamic_count() as u64,
                static_count: lane.report.static_count() as u64,
                footprint_bytes: lane.footprint_bytes as u64,
                peak_footprint_bytes: lane.peak_footprint_bytes as u64,
                events: lane.events as u64,
            })
            .collect(),
    }
}

/// Feeds one data payload through the assembler into the session.
fn feed_bytes(entry: &mut Entry, bytes: &[u8]) -> Result<(), String> {
    entry
        .asm
        .push(bytes)
        .map_err(|e| format!("stb stream: {e}"))?;
    while let Some(event) = entry.asm.next_event() {
        entry
            .session
            .feed(event)
            .map_err(|e| format!("malformed event stream: {e}"))?;
    }
    entry
        .shared
        .events
        .store(entry.session.events() as u64, Ordering::SeqCst);
    Ok(())
}

/// Marks the session failed and pushes an error frame at the attached
/// client, best-effort.
fn fail_session(entry: &Entry, message: String) {
    *entry.shared.failed.lock().expect("failed lock") = Some(message.clone());
    if let Some(tx) = entry.outbound.lock().expect("outbound lock").as_ref() {
        let _ = tx.try_send(error_frame(ErrorCode::StreamFailed, message));
    }
}

/// Closes the assembler and finishes the session into its final report.
fn finish_entry(mut entry: Entry, lanes: &[LaneInfo]) -> Frame {
    // A session that never received a byte is an empty stream, not a
    // truncated one: finishing it yields an (empty) report. Clients use
    // this to probe a server's lane set.
    let never_fed = entry.asm.header().is_none() && entry.asm.buffered_bytes() == 0;
    if never_fed {
        return finish_session(entry.session, lanes);
    }
    match entry.asm.close() {
        Ok(decoded) => {
            // Cross-check the header's declared count, like the batch
            // pool: a short-but-well-terminated stream is suspect.
            if let Some(hint) = entry.asm.header().and_then(|h| h.hint) {
                if hint.events != decoded {
                    return error_frame(
                        ErrorCode::StreamFailed,
                        format!(
                            "stream header declared {} events but {decoded} arrived",
                            hint.events
                        ),
                    );
                }
            }
        }
        Err(e) => return error_frame(ErrorCode::StreamFailed, format!("stb stream: {e}")),
    }
    finish_session(entry.session, lanes)
}

/// Runs `Session::finish` (which flushes end-of-stream race checks) and
/// wire-encodes the outcomes.
fn finish_session(session: Session<'static>, lanes: &[LaneInfo]) -> Frame {
    let events = session.events() as u64;
    let outcomes = session.finish();
    Frame::Report(WireReport {
        events,
        lanes: outcomes
            .iter()
            .enumerate()
            .map(|(i, outcome)| WireLane {
                name: outcome.name.clone(),
                config: lanes[i].config.clone(),
                static_count: outcome.report.static_count() as u32,
                races: outcome
                    .report
                    .races()
                    .iter()
                    .map(|r| wire_race(i as u16, r))
                    .collect(),
            })
            .collect(),
    })
}

fn worker_loop(
    engine: Engine,
    lanes: Vec<LaneInfo>,
    lane_index: Arc<HashMap<String, u16>>,
    rx: Receiver<WorkItem>,
    chunk_cap: u64,
) {
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Open { shared, outbound } => {
                let mut session = engine.open();
                let sink_outbound = Arc::clone(&outbound);
                let sink_lanes = Arc::clone(&lane_index);
                let sink_shared = Arc::clone(&shared);
                session.set_sink(move |notice: &RaceNotice<'_>| {
                    let lane = sink_lanes.get(notice.analysis).copied().unwrap_or(0);
                    let frame = Frame::Race(wire_race(lane, notice.race));
                    push_notice(&sink_outbound, &sink_shared, frame);
                });
                entries.insert(
                    shared.uid,
                    Entry {
                        session,
                        asm: StbAssembler::new().with_chunk_cap(chunk_cap),
                        shared,
                        outbound,
                    },
                );
            }
            WorkItem::Attach { uid, tx, reply } => {
                let mut events = 0;
                if let Some(entry) = entries.get(&uid) {
                    *entry.outbound.lock().expect("outbound lock") = Some(tx);
                    events = entry.session.events() as u64;
                }
                let _ = reply.send(events);
            }
            WorkItem::Detach { uid } => {
                if let Some(entry) = entries.get(&uid) {
                    *entry.outbound.lock().expect("outbound lock") = None;
                }
            }
            WorkItem::Data { uid, bytes } => {
                if let Some(entry) = entries.get_mut(&uid) {
                    if entry.shared.failure().is_none() {
                        match catch_unwind(AssertUnwindSafe(|| feed_bytes(entry, &bytes))) {
                            Ok(Ok(())) => {}
                            Ok(Err(message)) => fail_session(entry, message),
                            Err(_) => fail_session(entry, "analysis panicked".to_string()),
                        }
                    }
                    // Publish the reassembly backlog before crediting the
                    // queue: a racing reader then at worst over-counts
                    // (a spurious Busy), never under-counts the budget.
                    entry
                        .shared
                        .buffered_bytes
                        .store(entry.asm.buffered_bytes(), Ordering::SeqCst);
                    entry
                        .shared
                        .queued_bytes
                        .fetch_sub(bytes.len(), Ordering::SeqCst);
                }
            }
            WorkItem::Query { uid, kind, reply } => {
                let frame = match entries.get(&uid) {
                    None => error_frame(ErrorCode::UnknownSession, "session is gone"),
                    Some(entry) => match entry.shared.failure() {
                        Some(message) => error_frame(ErrorCode::StreamFailed, message),
                        None => {
                            let snapshot = entry.session.snapshot();
                            match kind {
                                QueryKind::Snapshot => Frame::Snapshot(wire_snapshot(&snapshot)),
                                QueryKind::Races => Frame::Races(wire_report(&lanes, &snapshot)),
                            }
                        }
                    },
                };
                let _ = reply.send(frame);
            }
            WorkItem::Finish { uid, reply } => {
                let frame = match entries.remove(&uid) {
                    None => error_frame(ErrorCode::UnknownSession, "session is gone"),
                    Some(entry) => match entry.shared.failure() {
                        Some(message) => error_frame(ErrorCode::StreamFailed, message),
                        None => {
                            match catch_unwind(AssertUnwindSafe(|| finish_entry(entry, &lanes))) {
                                Ok(frame) => frame,
                                Err(_) => {
                                    error_frame(ErrorCode::Internal, "analysis panicked at finish")
                                }
                            }
                        }
                    },
                };
                let _ = reply.send(frame);
            }
            WorkItem::Evict { uid } => {
                entries.remove(&uid);
            }
            WorkItem::Stop => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Connection side.

/// What the reader loop knows about the session it is driving.
struct Attached {
    key: RegistryKey,
    shared: Arc<SessionShared>,
}

/// Sends a reply frame, retrying around a full outbound queue but giving
/// up on shutdown or a dead writer. Returns false when the connection is
/// beyond saving.
fn send_reply(tx: &SyncSender<Frame>, frame: Frame, shutdown: &AtomicBool) -> bool {
    let mut frame = frame;
    loop {
        match tx.try_send(frame) {
            Ok(()) => return true,
            Err(mpsc::TrySendError::Disconnected(_)) => return false,
            Err(mpsc::TrySendError::Full(f)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return false;
                }
                frame = f;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn detach_session(shared: &Shared, att: &Attached) {
    let _ = shared.worker_txs[att.shared.worker].send(WorkItem::Detach {
        uid: att.shared.uid,
    });
    *att.shared.detached_at.lock().expect("detach lock") = Instant::now();
    att.shared.attached.store(false, Ordering::SeqCst);
}

/// Outcome of handling one inbound frame.
enum Step {
    Continue,
    Close,
}

struct Conn<'s> {
    shared: &'s Shared,
    out_tx: SyncSender<Frame>,
    attached: Option<Attached>,
}

impl Conn<'_> {
    fn reply(&self, frame: Frame) -> Step {
        if send_reply(&self.out_tx, frame, &self.shared.shutdown) {
            Step::Continue
        } else {
            Step::Close
        }
    }

    fn protocol_error(&self, message: &str) -> Step {
        // Best-effort: tell the client why, then drop the connection — a
        // framing violation cannot be resynchronized.
        let _ = self.reply(error_frame(ErrorCode::Protocol, message));
        Step::Close
    }

    fn handle_hello(
        &mut self,
        version: u16,
        resume: bool,
        tenant: String,
        session: String,
    ) -> Step {
        if self.attached.is_some() {
            return self.protocol_error("hello while a session is attached");
        }
        if version != PROTOCOL_VERSION {
            return self.protocol_error(&format!(
                "protocol version {version} unsupported (this server speaks {PROTOCOL_VERSION})"
            ));
        }
        if self.shared.shutdown.load(Ordering::SeqCst) {
            let _ = self.reply(error_frame(ErrorCode::ShuttingDown, "server is draining"));
            return Step::Close;
        }
        let key = (tenant, session);
        let mut registry = self.shared.registry.lock().expect("registry lock");
        if let Some(existing) = registry.get(&key) {
            if existing.attached.load(Ordering::SeqCst) {
                drop(registry);
                return self.reply(error_frame(
                    ErrorCode::SessionAttached,
                    "another connection is driving this session",
                ));
            }
            if !resume {
                drop(registry);
                return self.reply(error_frame(
                    ErrorCode::SessionExists,
                    "session exists; hello with the resume flag to reattach",
                ));
            }
            let shared_session = Arc::clone(existing);
            shared_session.attached.store(true, Ordering::SeqCst);
            drop(registry);
            let (reply_tx, reply_rx) = mpsc::channel();
            let _ = self.shared.worker_txs[shared_session.worker].send(WorkItem::Attach {
                uid: shared_session.uid,
                tx: self.out_tx.clone(),
                reply: reply_tx,
            });
            // The worker answers only after draining every data frame
            // admitted before the detach (its channel is FIFO), so this
            // count is exact, not a racy snapshot of the atomic.
            let events = reply_rx
                .recv()
                .unwrap_or_else(|_| shared_session.events.load(Ordering::SeqCst));
            self.attached = Some(Attached {
                key,
                shared: shared_session,
            });
            return self.reply(Frame::Welcome {
                resumed: true,
                events,
                lanes: self.shared.lanes.clone(),
            });
        }
        let uid = self.shared.next_uid.fetch_add(1, Ordering::SeqCst);
        let worker =
            self.shared.next_worker.fetch_add(1, Ordering::SeqCst) % self.shared.worker_txs.len();
        let shared_session = Arc::new(SessionShared {
            uid,
            worker,
            queued_bytes: AtomicUsize::new(0),
            buffered_bytes: AtomicUsize::new(0),
            accepted_bytes: AtomicU64::new(0),
            events: AtomicU64::new(0),
            attached: AtomicBool::new(true),
            failed: Mutex::new(None),
            detached_at: Mutex::new(Instant::now()),
            dropped_notices: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        });
        registry.insert(key.clone(), Arc::clone(&shared_session));
        drop(registry);
        let outbound: Outbound = Arc::new(Mutex::new(Some(self.out_tx.clone())));
        let _ = self.shared.worker_txs[worker].send(WorkItem::Open {
            shared: Arc::clone(&shared_session),
            outbound,
        });
        self.attached = Some(Attached {
            key,
            shared: shared_session,
        });
        self.reply(Frame::Welcome {
            resumed: false,
            events: 0,
            lanes: self.shared.lanes.clone(),
        })
    }

    fn handle(&mut self, frame: Frame) -> Step {
        match frame {
            Frame::Hello {
                version,
                resume,
                tenant,
                session,
            } => self.handle_hello(version, resume, tenant, session),
            Frame::Data(bytes) => {
                let Some(att) = &self.attached else {
                    return self.protocol_error("data before hello");
                };
                if let Some(message) = att.shared.failure() {
                    return self.reply(error_frame(ErrorCode::StreamFailed, message));
                }
                let len = bytes.len();
                let queued = att.shared.queued_bytes.load(Ordering::SeqCst);
                let buffered = att.shared.buffered_bytes.load(Ordering::SeqCst);
                let capacity = self.shared.session_queue_bytes;
                // Admit any frame into an empty queue so progress is
                // always possible (a partial chunk only drains with more
                // input); otherwise enforce the byte budget over
                // everything the session holds — frames still queued at
                // the worker plus bytes its assembler has buffered for
                // an incomplete chunk.
                let pending = queued + buffered;
                if queued > 0 && pending + len > capacity {
                    return self.reply(Frame::Busy {
                        queued: pending as u64,
                        capacity: capacity as u64,
                    });
                }
                att.shared.queued_bytes.fetch_add(len, Ordering::SeqCst);
                let accepted = att
                    .shared
                    .accepted_bytes
                    .fetch_add(len as u64, Ordering::SeqCst)
                    + len as u64;
                let _ = self.shared.worker_txs[att.shared.worker].send(WorkItem::Data {
                    uid: att.shared.uid,
                    bytes,
                });
                self.reply(Frame::Ack { accepted })
            }
            Frame::Query(kind) => {
                let Some(att) = &self.attached else {
                    return self.protocol_error("query before hello");
                };
                let (reply_tx, reply_rx) = mpsc::channel();
                let _ = self.shared.worker_txs[att.shared.worker].send(WorkItem::Query {
                    uid: att.shared.uid,
                    kind,
                    reply: reply_tx,
                });
                match reply_rx.recv() {
                    Ok(frame) => self.reply(frame),
                    Err(_) => {
                        let _ = self.reply(error_frame(ErrorCode::Internal, "worker gone"));
                        Step::Close
                    }
                }
            }
            Frame::Finish => {
                let Some(att) = self.attached.take() else {
                    return self.protocol_error("finish before hello");
                };
                let (reply_tx, reply_rx) = mpsc::channel();
                let _ = self.shared.worker_txs[att.shared.worker].send(WorkItem::Finish {
                    uid: att.shared.uid,
                    reply: reply_tx,
                });
                let frame = match reply_rx.recv() {
                    Ok(frame) => frame,
                    Err(_) => error_frame(ErrorCode::Internal, "worker gone"),
                };
                self.shared
                    .registry
                    .lock()
                    .expect("registry lock")
                    .remove(&att.key);
                att.shared.attached.store(false, Ordering::SeqCst);
                self.reply(frame)
            }
            Frame::Detach => {
                let Some(att) = self.attached.take() else {
                    return self.protocol_error("detach before hello");
                };
                detach_session(self.shared, &att);
                Step::Continue
            }
            // Server-originated frame types from a client are violations.
            _ => self.protocol_error("server-originated frame type from client"),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = mpsc::sync_channel::<Frame>(shared.outbound_queue);
    let writer = std::thread::Builder::new()
        .name("serve-writer".into())
        .spawn(move || writer_loop(write_half, &out_rx))
        .expect("spawn writer");

    let mut conn = Conn {
        shared: &shared,
        out_tx,
        attached: None,
    };
    let mut frames = FrameBuf::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut reader = &stream;
    'conn: loop {
        loop {
            match frames.next_frame() {
                Ok(Some(frame)) => {
                    if let Step::Close = conn.handle(frame) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    conn.protocol_error(&e.to_string());
                    break 'conn;
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = conn.out_tx.try_send(Frame::Goodbye {
                reason: "server shutting down; session detached and resumable".into(),
            });
            break;
        }
        match reader.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => frames.push(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    if let Some(att) = conn.attached.take() {
        detach_session(&shared, &att);
    }
    drop(conn);
    let _ = writer.join();
    shared.connections_closed.fetch_add(1, Ordering::SeqCst);
}

fn writer_loop(stream: TcpStream, rx: &Receiver<Frame>) {
    let mut w = BufWriter::new(stream);
    'writer: while let Ok(frame) = rx.recv() {
        if write_frame(&mut w, &frame).is_err() {
            break;
        }
        // Batch whatever else is queued before paying for a flush.
        while let Ok(frame) = rx.try_recv() {
            if write_frame(&mut w, &frame).is_err() {
                break 'writer;
            }
        }
        if std::io::Write::flush(&mut w).is_err() {
            break;
        }
    }
    let _ = std::io::Write::flush(&mut w);
}
