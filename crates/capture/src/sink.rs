//! Where a capture's STB bytes go: a file, an in-memory buffer, a live
//! serve-daemon connection, or a tee across several of those.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use smarttrack_serve::protocol::DEFAULT_DATA_CHUNK;
use smarttrack_serve::{ClientError, ServeClient, WireReport};

use crate::session::CaptureError;

/// Destination of a capture's STB stream.
///
/// The session's emitter writes STB bytes verbatim into the sink — the
/// PR 6 wire protocol streams STB unchanged, so the serve variant is plain
/// chunking, not a second codec. [`CaptureSink::tee`] duplicates the stream
/// (e.g. record to a file *and* a live daemon in one run, which is how the
/// e2e battery proves the two paths agree).
pub enum CaptureSink {
    /// Any byte sink (files, sockets, `Vec<u8>` behind a lock, …).
    Writer(Box<dyn Write + Send>),
    /// Live streaming into a serve daemon session. Bytes accumulate in
    /// `buf` and ship as one `Data` frame per [`DEFAULT_DATA_CHUNK`].
    Serve {
        /// The attached client (already past the hello handshake).
        client: Box<ServeClient>,
        /// Unsent remainder below one wire chunk.
        buf: Vec<u8>,
    },
    /// Duplicates every byte into both sinks.
    Tee(Box<CaptureSink>, Box<CaptureSink>),
}

fn client_io(e: ClientError) -> io::Error {
    io::Error::other(format!("serve client: {e}"))
}

impl CaptureSink {
    /// Buffered file sink at `path` (created/truncated).
    pub fn file<P: AsRef<Path>>(path: P) -> io::Result<CaptureSink> {
        let file = File::create(path)?;
        Ok(CaptureSink::Writer(Box::new(BufWriter::new(file))))
    }

    /// In-memory sink; the returned handle sees the bytes after
    /// [`CaptureSession::finish`](crate::CaptureSession::finish).
    pub fn memory() -> (CaptureSink, Arc<Mutex<Vec<u8>>>) {
        let bytes = Arc::new(Mutex::new(Vec::new()));
        let sink = CaptureSink::Writer(Box::new(SharedVec(bytes.clone())));
        (sink, bytes)
    }

    /// Live socket sink over an attached [`ServeClient`].
    pub fn serve(client: ServeClient) -> CaptureSink {
        CaptureSink::Serve {
            client: Box::new(client),
            buf: Vec::new(),
        }
    }

    /// Duplicates the stream into both sinks.
    pub fn tee(a: CaptureSink, b: CaptureSink) -> CaptureSink {
        CaptureSink::Tee(Box::new(a), Box::new(b))
    }

    /// Completes the sink after the STB terminator has been written:
    /// serve sinks flush their remainder and collect the daemon's final
    /// [`WireReport`]; tees complete both sides in order.
    pub fn complete(self) -> Result<Vec<WireReport>, CaptureError> {
        match self {
            CaptureSink::Writer(mut w) => {
                w.flush().map_err(CaptureError::Sink)?;
                Ok(Vec::new())
            }
            CaptureSink::Serve { mut client, buf } => {
                if !buf.is_empty() {
                    client
                        .send_chunk(&buf)
                        .map_err(|e| CaptureError::Sink(client_io(e)))?;
                }
                let report = client
                    .finish()
                    .map_err(|e| CaptureError::Sink(client_io(e)))?;
                Ok(vec![report])
            }
            CaptureSink::Tee(a, b) => {
                let mut reports = a.complete()?;
                reports.extend(b.complete()?);
                Ok(reports)
            }
        }
    }
}

impl Write for CaptureSink {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        match self {
            CaptureSink::Writer(w) => return w.write(data),
            CaptureSink::Serve { client, buf } => {
                buf.extend_from_slice(data);
                while buf.len() >= DEFAULT_DATA_CHUNK {
                    let rest = buf.split_off(DEFAULT_DATA_CHUNK);
                    client.send_chunk(buf).map_err(client_io)?;
                    *buf = rest;
                }
            }
            CaptureSink::Tee(a, b) => {
                a.write_all(data)?;
                b.write_all(data)?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            CaptureSink::Writer(w) => w.flush(),
            // Serve chunks are flushed on completion (sub-chunk flushes
            // would fragment the wire stream for no benefit).
            CaptureSink::Serve { .. } => Ok(()),
            CaptureSink::Tee(a, b) => {
                a.flush()?;
                b.flush()
            }
        }
    }
}

/// `Vec<u8>` behind a lock, so the memory sink's bytes outlive the session.
struct SharedVec(Arc<Mutex<Vec<u8>>>);

impl Write for SharedVec {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("memory sink").extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}
