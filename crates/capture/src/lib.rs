//! Live capture frontend: record *real* Rust executions into SmartTrack's
//! binary trace format.
//!
//! Everything the analyses consume elsewhere in this workspace is
//! synthetic — generated workloads, paper figures, proptest randomness.
//! SmartTrack's point (Roemer, Genç, Bond, PLDI 2020 §5.1) is *online*
//! analysis of real program executions, so this crate provides drop-in
//! instrumented `std::sync` wrappers that perform the real operation and
//! record the matching trace event:
//!
//! * [`Mutex`] / [`RwLock`] — `acq`/`rel` (rwlocks serialize until
//!   read-acquires land in the model; see the type docs),
//! * [`Condvar`] — `rel`/`acq`/`wait` expansion plus `ntf`/`nfa`,
//! * [`Barrier`] — `bent`/`bext` round discipline via a double rendezvous,
//! * [`AtomicU32`] — `vrd`/`vwr` volatile synchronization accesses,
//! * [`Shared`] — plain `rd`/`wr` data accesses (the ones races are about),
//! * [`CaptureSession::spawn`] / [`JoinHandle::join`] — `fork`/`join` edges.
//!
//! Ids (`ThreadId`, `LockId`, `VarId`, `CondId`, `BarrierId`, `Loc`) are
//! interned stably at first use. Events land in lock-free per-thread
//! buffers (a thread-local `Vec` with epoch flushes — no global lock on
//! the hot path) and funnel through one [`CaptureSession`] emitter into an
//! STB [`StbWriter`](smarttrack_trace::binary::StbWriter) over a
//! [`CaptureSink`]: a file, memory, a live
//! [`ServeClient`](smarttrack_serve::ServeClient) socket feeding the serve
//! daemon, or a tee of several.
//!
//! # Ordering soundness
//!
//! The recorded stream must be a linearization the stream validator
//! accepts. Each wrapper therefore stamps its event *while the underlying
//! primitive is held or ordered by that very operation* — wasmgrind-style —
//! and the session merges per-thread buffers back into global stamp order
//! before writing. See the [`session`] module and `docs/CAPTURE.md` for
//! the full argument.
//!
//! # Panic and poison behavior
//!
//! Wrappers absorb `std` lock poisoning (`PoisonError::into_inner`): a
//! panicking captured thread still records its releases while unwinding
//! (guards record on drop) and flushes its buffer before exiting, so the
//! capture of a crashed run is a validator-clean prefix of the execution.

#![warn(missing_docs)]

mod cell;
mod session;
mod sink;
mod sync;
pub mod twins;

pub use cell::{AtomicU32, Shared};
pub use session::{CaptureConfig, CaptureError, CaptureReport, CaptureSession, JoinHandle, Nudge};
pub use sink::CaptureSink;
pub use sync::{Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use smarttrack_detect::AnalysisConfig;
    use smarttrack_trace::binary::from_stb_bytes;
    use smarttrack_trace::Op;

    use super::twins::{run_twin, TwinKind};
    use super::*;

    fn capture_bytes(f: impl FnOnce(&CaptureSession)) -> Vec<u8> {
        let (sink, bytes) = CaptureSink::memory();
        let session = CaptureSession::new(sink, CaptureConfig::default());
        f(&session);
        session.finish().expect("finish");
        let out = bytes.lock().unwrap().clone();
        out
    }

    #[test]
    fn lock_events_are_recorded_in_order() {
        let bytes = capture_bytes(|session| {
            let m = Mutex::new(session, 0u32);
            for _ in 0..2 {
                *m.lock() += 1;
            }
            *m.lock() += 1;
        });
        let trace = from_stb_bytes(&bytes).expect("validator-clean");
        let ops: Vec<_> = trace.events().iter().map(|e| e.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Acquire(m(0)),
                Op::Release(m(0)),
                Op::Acquire(m(0)),
                Op::Release(m(0)),
                Op::Acquire(m(0)),
                Op::Release(m(0)),
            ]
        );
        // Repetitions of one source line intern to one stable site (the
        // release is stamped at its acquire's site); distinct lines differ.
        let locs: Vec<_> = trace.events().iter().map(|e| e.loc).collect();
        assert_eq!(locs[0], locs[1]);
        assert_eq!(locs[0], locs[2]);
        assert_ne!(locs[0], locs[4]);
        fn m(i: u32) -> smarttrack_trace::LockId {
            smarttrack_trace::LockId::new(i)
        }
    }

    #[test]
    fn fork_join_edges_bracket_child_events() {
        let bytes = capture_bytes(|session| {
            let x = Arc::new(Shared::new(session, 0u32));
            let child = {
                let x = x.clone();
                session.spawn(move || x.set(1))
            };
            child.join().unwrap();
            let _ = x.get();
        });
        let trace = from_stb_bytes(&bytes).expect("validator-clean");
        let ops: Vec<_> = trace.events().iter().map(|e| (e.tid.raw(), e.op)).collect();
        use smarttrack_trace::VarId;
        let x = VarId::new(0);
        let t1 = smarttrack_clock::ThreadId::new(1);
        assert_eq!(
            ops,
            vec![
                (0, Op::Fork(t1)),
                (1, Op::Write(x)),
                (0, Op::Join(t1)),
                (0, Op::Read(x)),
            ]
        );
    }

    #[test]
    fn tiny_buffers_force_mid_run_epoch_flushes() {
        let (sink, bytes) = CaptureSink::memory();
        let config = CaptureConfig {
            buffer_events: 1,
            chunk_events: 2,
            ..CaptureConfig::default()
        };
        let report = run_twin(TwinKind::LockProtected, sink, config).expect("twin");
        let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validator-clean");
        assert_eq!(trace.len() as u64, report.events);
        assert_eq!(report.threads, 3);
    }

    #[test]
    fn finish_rejects_unjoined_threads() {
        let (sink, _bytes) = CaptureSink::memory();
        let session = CaptureSession::new(sink, CaptureConfig::default());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let child = {
            let gate = gate.clone();
            session.spawn(move || gate.wait())
        };
        assert!(matches!(
            session.finish(),
            Err(CaptureError::ThreadsActive(1))
        ));
        gate.wait();
        child.join().unwrap();
    }

    #[test]
    fn panicking_thread_leaves_a_validator_clean_prefix() {
        let (sink, bytes) = CaptureSink::memory();
        let session = CaptureSession::new(sink, CaptureConfig::default());
        let m = Arc::new(Mutex::new(&session, 0u32));
        let child = {
            let m = m.clone();
            session.spawn(move || {
                let _g = m.lock();
                panic!("captured panic");
            })
        };
        assert!(child.join().is_err());
        // The poisoned lock is still usable and still recorded.
        *m.lock() += 1;
        session.finish().expect("finish");
        let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validator-clean");
        // fork, child acq+rel (release recorded during unwinding), join,
        // parent acq+rel.
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn every_twin_matches_expectation_under_every_cell() {
        for kind in TwinKind::ALL {
            let (sink, bytes) = CaptureSink::memory();
            run_twin(kind, sink, CaptureConfig::default()).expect("twin");
            let trace = from_stb_bytes(&bytes.lock().unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            for config in AnalysisConfig::table1() {
                let outcome = smarttrack_detect::analyze(&trace, config);
                assert_eq!(
                    outcome.report.static_count(),
                    kind.expected_static(),
                    "{} under {config}",
                    kind.name()
                );
            }
        }
    }
}
