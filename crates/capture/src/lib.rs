//! Live capture frontend: record *real* Rust executions into SmartTrack's
//! binary trace format.
//!
//! Everything the analyses consume elsewhere in this workspace is
//! synthetic — generated workloads, paper figures, proptest randomness.
//! SmartTrack's point (Roemer, Genç, Bond, PLDI 2020 §5.1) is *online*
//! analysis of real program executions, so this crate provides drop-in
//! instrumented `std::sync` wrappers that perform the real operation and
//! record the matching trace event:
//!
//! * [`Mutex`] — `acq`/`rel`, with `try_lock` recording `tryf` on failure,
//! * [`RwLock`] — `acqr`/`acqw`/`rel` over a real `std::sync::RwLock`
//!   (concurrent readers run — and are recorded — in parallel), plus
//!   `try_read`/`try_write`,
//! * [`Condvar`] — `rel`/`acq`/`wait` expansion plus `ntf`/`nfa`,
//! * [`Barrier`] — `bent`/`bext` round discipline via a double rendezvous,
//! * [`AtomicU32`] — `vrd`/`vwr` volatile synchronization accesses,
//! * [`Shared`] — plain `rd`/`wr` data accesses (the ones races are about),
//! * [`CaptureSession::spawn`] / [`JoinHandle::join`] — `fork`/`join` edges.
//!
//! Ids (`ThreadId`, `LockId`, `VarId`, `CondId`, `BarrierId`, `Loc`) are
//! interned stably at first use. Events land in lock-free per-thread
//! buffers (a thread-local `Vec` with epoch flushes — no global lock on
//! the hot path) and funnel through one [`CaptureSession`] emitter into an
//! STB [`StbWriter`](smarttrack_trace::binary::StbWriter) over a
//! [`CaptureSink`]: a file, memory, a live
//! [`ServeClient`](smarttrack_serve::ServeClient) socket feeding the serve
//! daemon, or a tee of several.
//!
//! # Ordering soundness
//!
//! The recorded stream must be a linearization the stream validator
//! accepts. Each wrapper therefore stamps its event *while the underlying
//! primitive is held or ordered by that very operation* — wasmgrind-style —
//! and the session merges per-thread buffers back into global stamp order
//! before writing. See the `session` module and `docs/CAPTURE.md` for
//! the full argument.
//!
//! # Panic and poison behavior
//!
//! Wrappers absorb `std` lock poisoning (`PoisonError::into_inner`): a
//! panicking captured thread still records its releases while unwinding
//! (guards record on drop) and flushes its buffer before exiting, so the
//! capture of a crashed run is a validator-clean prefix of the execution.

#![warn(missing_docs)]

mod cell;
mod session;
mod sink;
mod sync;
pub mod twins;

pub use cell::{AtomicU32, Shared};
pub use session::{CaptureConfig, CaptureError, CaptureReport, CaptureSession, JoinHandle, Nudge};
pub use sink::CaptureSink;
pub use sync::{Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use smarttrack_detect::AnalysisConfig;
    use smarttrack_trace::binary::from_stb_bytes;
    use smarttrack_trace::Op;

    use super::twins::{run_twin, TwinKind};
    use super::*;

    fn capture_bytes(f: impl FnOnce(&CaptureSession)) -> Vec<u8> {
        let (sink, bytes) = CaptureSink::memory();
        let session = CaptureSession::new(sink, CaptureConfig::default());
        f(&session);
        session.finish().expect("finish");
        let out = bytes.lock().unwrap().clone();
        out
    }

    #[test]
    fn lock_events_are_recorded_in_order() {
        let bytes = capture_bytes(|session| {
            let m = Mutex::new(session, 0u32);
            for _ in 0..2 {
                *m.lock() += 1;
            }
            *m.lock() += 1;
        });
        let trace = from_stb_bytes(&bytes).expect("validator-clean");
        let ops: Vec<_> = trace.events().iter().map(|e| e.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Acquire(m(0)),
                Op::Release(m(0)),
                Op::Acquire(m(0)),
                Op::Release(m(0)),
                Op::Acquire(m(0)),
                Op::Release(m(0)),
            ]
        );
        // Repetitions of one source line intern to one stable site (the
        // release is stamped at its acquire's site); distinct lines differ.
        let locs: Vec<_> = trace.events().iter().map(|e| e.loc).collect();
        assert_eq!(locs[0], locs[1]);
        assert_eq!(locs[0], locs[2]);
        assert_ne!(locs[0], locs[4]);
        fn m(i: u32) -> smarttrack_trace::LockId {
            smarttrack_trace::LockId::new(i)
        }
    }

    #[test]
    fn fork_join_edges_bracket_child_events() {
        let bytes = capture_bytes(|session| {
            let x = Arc::new(Shared::new(session, 0u32));
            let child = {
                let x = x.clone();
                session.spawn(move || x.set(1))
            };
            child.join().unwrap();
            let _ = x.get();
        });
        let trace = from_stb_bytes(&bytes).expect("validator-clean");
        let ops: Vec<_> = trace.events().iter().map(|e| (e.tid.raw(), e.op)).collect();
        use smarttrack_trace::VarId;
        let x = VarId::new(0);
        let t1 = smarttrack_clock::ThreadId::new(1);
        assert_eq!(
            ops,
            vec![
                (0, Op::Fork(t1)),
                (1, Op::Write(x)),
                (0, Op::Join(t1)),
                (0, Op::Read(x)),
            ]
        );
    }

    #[test]
    fn tiny_buffers_force_mid_run_epoch_flushes() {
        let (sink, bytes) = CaptureSink::memory();
        let config = CaptureConfig {
            buffer_events: 1,
            chunk_events: 2,
            ..CaptureConfig::default()
        };
        let report = run_twin(TwinKind::LockProtected, sink, config).expect("twin");
        let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validator-clean");
        assert_eq!(trace.len() as u64, report.events);
        assert_eq!(report.threads, 3);
    }

    #[test]
    fn finish_rejects_unjoined_threads() {
        let (sink, _bytes) = CaptureSink::memory();
        let session = CaptureSession::new(sink, CaptureConfig::default());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let child = {
            let gate = gate.clone();
            session.spawn(move || gate.wait())
        };
        assert!(matches!(
            session.finish(),
            Err(CaptureError::ThreadsActive(1))
        ));
        gate.wait();
        child.join().unwrap();
    }

    #[test]
    fn panicking_thread_leaves_a_validator_clean_prefix() {
        let (sink, bytes) = CaptureSink::memory();
        let session = CaptureSession::new(sink, CaptureConfig::default());
        let m = Arc::new(Mutex::new(&session, 0u32));
        let child = {
            let m = m.clone();
            session.spawn(move || {
                let _g = m.lock();
                panic!("captured panic");
            })
        };
        assert!(child.join().is_err());
        // The poisoned lock is still usable and still recorded.
        *m.lock() += 1;
        session.finish().expect("finish");
        let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validator-clean");
        // fork, child acq+rel (release recorded during unwinding), join,
        // parent acq+rel.
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn rwlock_records_read_and_write_modes() {
        let bytes = capture_bytes(|session| {
            let rw = RwLock::new(session, 0u32);
            *rw.write() = 1;
            let _ = *rw.read();
            let _ = *rw.try_read().expect("uncontended try_read succeeds");
            let _ = *rw.try_write().expect("uncontended try_write succeeds");
        });
        let trace = from_stb_bytes(&bytes).expect("validator-clean");
        let ops: Vec<_> = trace.events().iter().map(|e| e.op).collect();
        let m = smarttrack_trace::LockId::new(0);
        assert_eq!(
            ops,
            vec![
                Op::AcqWrite(m),
                Op::Release(m),
                Op::AcqRead(m),
                Op::Release(m),
                Op::AcqRead(m),
                Op::Release(m),
                Op::AcqWrite(m),
                Op::Release(m),
            ]
        );
    }

    #[test]
    fn contended_trylocks_record_failures() {
        let bytes = capture_bytes(|session| {
            let rw = Arc::new(RwLock::new(session, 0u32));
            let m = Arc::new(Mutex::new(session, 0u32));
            // Main holds the write lock and the mutex across the child's
            // whole lifetime (it joins before dropping), so every child
            // attempt deterministically fails.
            let wg = rw.write();
            let mg = m.lock();
            let child = {
                let (rw, m) = (rw.clone(), m.clone());
                session.spawn(move || {
                    assert!(rw.try_read().is_none(), "write lock excludes readers");
                    assert!(rw.try_write().is_none());
                    assert!(m.try_lock().is_none());
                })
            };
            child.join().expect("child");
            drop(wg);
            drop(mg);
        });
        let trace = from_stb_bytes(&bytes).expect("validator-clean");
        let fails = trace
            .events()
            .iter()
            .filter(|e| matches!(e.op, Op::TryAcqFail(_)))
            .count();
        assert_eq!(fails, 3);
        // Failed trylocks order nothing and race with nothing.
        for config in AnalysisConfig::table1() {
            let outcome = smarttrack_detect::analyze(&trace, config);
            assert_eq!(outcome.report.static_count(), 0, "under {config}");
        }
    }

    #[test]
    fn every_twin_matches_expectation_under_every_cell() {
        for kind in TwinKind::ALL {
            let (sink, bytes) = CaptureSink::memory();
            run_twin(kind, sink, CaptureConfig::default()).expect("twin");
            let trace = from_stb_bytes(&bytes.lock().unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            for config in AnalysisConfig::table1() {
                let outcome = smarttrack_detect::analyze(&trace, config);
                assert_eq!(
                    outcome.report.static_count(),
                    kind.expected_static(),
                    "{} under {config}",
                    kind.name()
                );
            }
        }
    }
}
