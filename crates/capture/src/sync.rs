//! Drop-in instrumented `std::sync` primitives: each wrapper performs the
//! real operation *and* records the matching trace event while the
//! primitive itself orders the stamp (see the crate docs for the soundness
//! argument).

use std::panic::Location;
use std::sync::{
    Barrier as StdBarrier, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    PoisonError, RwLock as StdRwLock, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard, TryLockError,
};

use smarttrack_trace::{BarrierId, CondId, Loc, LockId, Op};

use crate::session::CaptureSession;

/// An instrumented [`std::sync::Mutex`]: `lock()` records `acq` under the
/// freshly-taken lock; dropping the guard records `rel` just before the
/// real unlock. Poisoning is absorbed (`PoisonError::into_inner`): a
/// panicking captured thread must still be able to release and record, so
/// the trace stays a clean prefix.
pub struct Mutex<T> {
    session: CaptureSession,
    id: LockId,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a captured mutex with a fresh stable [`LockId`].
    pub fn new(session: &CaptureSession, value: T) -> Mutex<T> {
        Mutex {
            session: session.clone(),
            id: session.alloc_lock(),
            inner: StdMutex::new(value),
        }
    }

    /// The stable trace id of this lock.
    pub fn id(&self) -> LockId {
        self.id
    }

    /// Locks, recording the acquire at the caller's source location.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // Stamped while the lock is held: the ticket order over this lock's
        // acq/rel events matches its real acquisition order.
        self.session.record(Op::Acquire(self.id), loc);
        MutexGuard {
            mutex: self,
            loc,
            inner: Some(guard),
        }
    }

    /// Attempts the lock without blocking. A failure records `tryf` — which
    /// establishes no ordering in any direction — so the analysis sees
    /// exactly the contended fast paths the execution really took.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.session.record(Op::TryAcqFail(self.id), loc);
                return None;
            }
        };
        self.session.record(Op::Acquire(self.id), loc);
        Some(MutexGuard {
            mutex: self,
            loc,
            inner: Some(guard),
        })
    }
}

/// Guard of a captured [`Mutex`]; records the release on drop.
pub struct MutexGuard<'a, T> {
    pub(crate) mutex: &'a Mutex<T>,
    pub(crate) loc: Loc,
    /// `None` after [`Condvar::wait`] disarms the guard (the wait records
    /// the release itself).
    pub(crate) inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard disarmed")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard disarmed")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Record while still holding, then let the std guard unlock. Runs
        // during unwinding too, keeping a panicking thread's trace clean.
        if self.inner.is_some() {
            self.mutex
                .session
                .record(Op::Release(self.mutex.id), self.loc);
            self.inner = None;
        }
    }
}

/// An instrumented [`std::sync::RwLock`]: `read()` records `acqr`,
/// `write()` records `acqw`, and either guard records `rel` on drop.
/// Concurrent readers really run in parallel, and their overlapping
/// sections are recorded as overlapping — the analyses know two read
/// sections never exclude each other, so reader/reader interleavings are
/// explored instead of hidden.
///
/// The stamping discipline is the same as [`Mutex`]'s: acquires are stamped
/// while the real lock is held, releases just before the real unlock. Read
/// stamps of concurrent readers may interleave arbitrarily in ticket order,
/// which is sound because read sections don't conflict; every *conflicting*
/// pair (write section vs. anything) is still stamped in its real order.
/// Poisoning is absorbed exactly as for [`Mutex`].
pub struct RwLock<T> {
    session: CaptureSession,
    id: LockId,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a captured rwlock with a fresh stable [`LockId`].
    pub fn new(session: &CaptureSession, value: T) -> RwLock<T> {
        RwLock {
            session: session.clone(),
            id: session.alloc_lock(),
            inner: StdRwLock::new(value),
        }
    }

    /// The stable trace id of this lock.
    pub fn id(&self) -> LockId {
        self.id
    }

    /// Takes a shared read lock, recording `acqr`; concurrent readers
    /// proceed in parallel.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::AcqRead(self.id), loc);
        RwLockReadGuard {
            lock: self,
            loc,
            inner: Some(guard),
        }
    }

    /// Takes the exclusive write lock, recording `acqw`.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::AcqWrite(self.id), loc);
        RwLockWriteGuard {
            lock: self,
            loc,
            inner: Some(guard),
        }
    }

    /// Attempts a read lock without blocking; a failure records `tryf`.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.session.record(Op::TryAcqFail(self.id), loc);
                return None;
            }
        };
        self.session.record(Op::AcqRead(self.id), loc);
        Some(RwLockReadGuard {
            lock: self,
            loc,
            inner: Some(guard),
        })
    }

    /// Attempts the write lock without blocking; a failure records `tryf`.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.session.record(Op::TryAcqFail(self.id), loc);
                return None;
            }
        };
        self.session.record(Op::AcqWrite(self.id), loc);
        Some(RwLockWriteGuard {
            lock: self,
            loc,
            inner: Some(guard),
        })
    }
}

/// Shared-access guard of a captured [`RwLock`]; records `rel` on drop.
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    loc: Loc,
    inner: Option<StdRwLockReadGuard<'a, T>>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // Record while the read hold is still real, then unlock.
        self.lock
            .session
            .record(Op::Release(self.lock.id), self.loc);
        self.inner = None;
    }
}

/// Exclusive guard of a captured [`RwLock`]; records `rel` on drop.
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    loc: Loc,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // Record while still holding exclusively, then unlock.
        self.lock
            .session
            .record(Op::Release(self.lock.id), self.loc);
        self.inner = None;
    }
}

/// An instrumented [`std::sync::Condvar`].
///
/// `wait` expands to the event sequence the validator expects from a real
/// monitor wait: `rel(m)` stamped while the lock is still held, the real
/// blocking wait (other threads' acquires interleave here, exactly as they
/// did at runtime), then `acq(m)` under the reacquired lock followed by
/// `wait(c, m)`. Notifies are stamped *before* the real notify, so a woken
/// waiter's `wait` event always follows its notify in ticket order.
pub struct Condvar {
    session: CaptureSession,
    id: CondId,
    inner: StdCondvar,
}

impl Condvar {
    /// A captured condvar with a fresh stable [`CondId`].
    pub fn new(session: &CaptureSession) -> Condvar {
        Condvar {
            session: session.clone(),
            id: session.alloc_cond(),
            inner: StdCondvar::new(),
        }
    }

    /// The stable trace id of this condvar.
    pub fn id(&self) -> CondId {
        self.id
    }

    /// Blocks on the condvar, releasing (and re-recording) the monitor.
    /// Spurious wakeups surface exactly as with `std` — pair with
    /// [`wait_while`](Condvar::wait_while) or re-check the predicate.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let loc = self.session.intern_loc(Location::caller());
        let mutex = guard.mutex;
        self.session.nudge();
        // Release stamped while the lock is really held; nobody can slip an
        // acquire ticket in before it.
        self.session.record(Op::Release(mutex.id), loc);
        let std_guard = guard.inner.take().expect("guard disarmed");
        drop(guard); // disarmed: records nothing
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        // Reacquired: stamp the acquire, then the wait edge, both under the
        // lock (the validator requires the monitor held at `wait`).
        self.session.record(Op::Acquire(mutex.id), loc);
        self.session.record(Op::Wait(self.id, mutex.id), loc);
        MutexGuard {
            mutex,
            loc,
            inner: Some(std_guard),
        }
    }

    /// Waits until `condition` returns `false` (same contract as
    /// [`std::sync::Condvar::wait_while`]).
    #[track_caller]
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut *guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiter; the notify event is stamped before the real wakeup.
    #[track_caller]
    pub fn notify_one(&self) {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        self.session.record(Op::Notify(self.id), loc);
        self.inner.notify_one();
    }

    /// Wakes all waiters; the notify event is stamped before the real wakeup.
    #[track_caller]
    pub fn notify_all(&self) {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        self.session.record(Op::NotifyAll(self.id), loc);
        self.inner.notify_all();
    }
}

/// An instrumented [`std::sync::Barrier`].
///
/// One captured `wait()` performs a *double* rendezvous on the underlying
/// (cyclic) std barrier: `enter` is stamped before the first rendezvous —
/// so every party's enter ticket precedes every exit ticket — and `exit`
/// between the two, with the second rendezvous guaranteeing all exit
/// tickets are drawn before any party re-enters. That is exactly the
/// gather-then-drain round discipline the validator enforces.
pub struct Barrier {
    session: CaptureSession,
    id: BarrierId,
    inner: StdBarrier,
}

impl Barrier {
    /// A captured barrier for `parties` threads, with a fresh stable
    /// [`BarrierId`].
    pub fn new(session: &CaptureSession, parties: usize) -> Barrier {
        Barrier {
            session: session.clone(),
            id: session.alloc_barrier(),
            inner: StdBarrier::new(parties),
        }
    }

    /// The stable trace id of this barrier.
    pub fn id(&self) -> BarrierId {
        self.id
    }

    /// Rendezvous; returns `true` on the leader (as
    /// [`std::sync::BarrierWaitResult::is_leader`]).
    #[track_caller]
    pub fn wait(&self) -> bool {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        self.session.record(Op::BarrierEnter(self.id), loc);
        let result = self.inner.wait();
        self.session.record(Op::BarrierExit(self.id), loc);
        // Second rendezvous: no party may start the next round's enter
        // until every party has stamped this round's exit.
        self.inner.wait();
        result.is_leader()
    }
}
