//! The capture session: id interning, per-thread buffers, and the
//! sequence-ordered funnel into one [`StbWriter`].
//!
//! # Ordering soundness
//!
//! A recorded trace is only useful if its event order is a *linearization*
//! the validator accepts and the analyses can trust. The session gets one
//! the same way wasmgrind's runtime does: every wrapper records its event
//! **while the underlying primitive is held or ordered by that very
//! operation** — the `Acquire` event is stamped after `lock()` returns
//! (under the lock), the `Release` event before the unlock (still under the
//! lock), a volatile access under its object's internal mutex, a barrier
//! enter/exit inside a double rendezvous. Each stamp draws a ticket from a
//! global atomic sequence counter at that protected moment, so ticket order
//! agrees with the real per-object synchronization order.
//!
//! Events land in per-thread buffers (no global lock on the hot path) and
//! are merged back into ticket order at flush time. The merge may only emit
//! ticket `s` once every ticket below `s` has been handed over, which the
//! session tracks with a per-thread *floor*: before drawing a ticket into
//! an empty buffer, a thread publishes `floor ≤ ticket` (a pre-read of the
//! counter); the floor returns to `u64::MAX` only when the buffer is handed
//! to the emitter. The emitter's watermark is the minimum floor across all
//! threads — every ticket below it is already in the pending set, because
//! any thread still holding a smaller ticket would be pinning the watermark
//! down. (Visibility follows from the release/acquire chain through the
//! shared counter and the emit mutex; `docs/CAPTURE.md` spells the argument
//! out.)

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use smarttrack_clock::ThreadId;
use smarttrack_serve::WireReport;
use smarttrack_trace::binary::StbWriter;
use smarttrack_trace::{BarrierId, CondId, Event, Loc, LockId, Op, VarId};

use crate::sink::CaptureSink;

/// Schedule nudging: configurable yield injection in the wrappers, so the
/// differential battery can cover interleavings without sleeps. Before each
/// recorded operation, the executing thread yields when
/// `(ops_so_far + tid) % period == phase % period`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nudge {
    /// Yield every `period` operations (per thread; minimum 1).
    pub period: u32,
    /// Offset into the period, mixed with the thread id so threads
    /// desynchronize.
    pub phase: u32,
}

/// Tuning knobs of a [`CaptureSession`].
#[derive(Clone, Copy, Debug)]
pub struct CaptureConfig {
    /// Per-thread buffer capacity before an epoch flush hands the buffer to
    /// the emitter (default 256 events).
    pub buffer_events: usize,
    /// STB chunk size handed to [`StbWriter::chunk_events`] (default: the
    /// writer's own default).
    pub chunk_events: usize,
    /// Optional schedule nudging (off by default).
    pub nudge: Option<Nudge>,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            buffer_events: 256,
            chunk_events: smarttrack_trace::binary::DEFAULT_CHUNK_EVENTS,
            nudge: None,
        }
    }
}

/// A failure of the capture runtime.
#[derive(Debug)]
pub enum CaptureError {
    /// The sink failed (file I/O, or the serve daemon refused the stream).
    Sink(io::Error),
    /// [`CaptureSession::finish`] was called while captured threads were
    /// still running (or a foreign thread still holds buffered events).
    ThreadsActive(usize),
    /// The session was already finished.
    AlreadyFinished,
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Sink(e) => write!(f, "capture sink failed: {e}"),
            CaptureError::ThreadsActive(n) => write!(
                f,
                "{n} captured thread(s) still active (join all spawned threads, and \
                 flush_thread() on any foreign thread, before finish)"
            ),
            CaptureError::AlreadyFinished => write!(f, "capture session already finished"),
        }
    }
}

impl std::error::Error for CaptureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureError::Sink(e) => Some(e),
            _ => None,
        }
    }
}

/// What a finished capture produced.
#[derive(Debug)]
pub struct CaptureReport {
    /// Events emitted into the STB stream.
    pub events: u64,
    /// Distinct threads that recorded at least one event (max id + 1).
    pub threads: u32,
    /// Final reports from any serve sinks (empty for pure file/memory
    /// sinks), in sink order.
    pub serve_reports: Vec<WireReport>,
}

/// Monotonic serial distinguishing sessions, so one OS thread can hold
/// thread contexts for several (sequential or concurrent) sessions.
static SESSION_SERIAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's contexts, one per session it has recorded into.
    /// Dropping a context (thread exit, or explicit removal) drains its
    /// buffer into the session.
    static CTXS: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
}

/// The per-thread floor: a lower bound on any ticket this thread holds
/// outside the emitter's pending set (`u64::MAX` when it holds none).
struct ThreadSlot {
    floor: AtomicU64,
}

/// One thread's recording state for one session.
struct ThreadCtx {
    inner: Arc<SessionInner>,
    serial: u64,
    tid: ThreadId,
    slot: Arc<ThreadSlot>,
    /// Ticketed events awaiting an epoch flush.
    buf: Vec<(u64, Event)>,
    /// Operations recorded by this thread (drives the nudge schedule).
    ops: u64,
    /// Location intern cache, keyed by (file ptr, line, column) so the hot
    /// path skips the global intern table.
    loc_cache: HashMap<(usize, u32, u32), Loc>,
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        self.inner.drain(&self.slot, &mut self.buf);
    }
}

/// The emitter: the *sole* writer of the STB stream (see the satellite
/// note on [`StbWriter`]'s concurrency posture — the writer itself is
/// single-threaded; this mutex is what funnels every thread through it).
struct EmitState {
    writer: Option<StbWriter<CaptureSink>>,
    /// Flushed events not yet past the watermark, keyed by ticket.
    pending: BTreeMap<u64, Event>,
    emitted: u64,
    sink_error: Option<io::Error>,
}

struct SessionInner {
    serial: u64,
    config: CaptureConfig,
    /// The global ticket counter.
    seq: AtomicU64,
    emit: Mutex<EmitState>,
    /// Every registered thread's floor (lock order: `emit` before `slots`).
    slots: Mutex<Vec<Arc<ThreadSlot>>>,
    /// Threads spawned through the session and not yet exited.
    active: AtomicUsize,
    finished: AtomicBool,
    next_thread: AtomicU32,
    next_lock: AtomicU32,
    next_var: AtomicU32,
    next_volatile: AtomicU32,
    next_cond: AtomicU32,
    next_barrier: AtomicU32,
    locs: Mutex<LocTable>,
}

#[derive(Default)]
struct LocTable {
    by_site: HashMap<(&'static str, u32, u32), Loc>,
    next: u32,
}

impl SessionInner {
    /// Drains a thread's buffer into the pending set and emits everything
    /// below the new watermark. Safe to call repeatedly (idempotent on an
    /// empty buffer); called from epoch flushes, context drops, and finish.
    fn drain(&self, slot: &ThreadSlot, buf: &mut Vec<(u64, Event)>) {
        let mut emit = self.emit.lock().expect("emit mutex");
        for (seq, event) in buf.drain(..) {
            emit.pending.insert(seq, event);
        }
        slot.floor.store(u64::MAX, Ordering::SeqCst);
        self.pump(&mut emit);
    }

    /// Emits every pending event whose ticket is below the watermark.
    fn pump(&self, emit: &mut EmitState) {
        let watermark = {
            let slots = self.slots.lock().expect("slots mutex");
            slots
                .iter()
                .map(|s| s.floor.load(Ordering::SeqCst))
                .min()
                .unwrap_or(u64::MAX)
        };
        while let Some(entry) = emit.pending.first_entry() {
            if *entry.key() >= watermark {
                break;
            }
            let event = entry.remove();
            if let Some(writer) = emit.writer.as_mut() {
                if let Err(e) = writer.write(&event) {
                    if emit.sink_error.is_none() {
                        emit.sink_error = Some(e);
                    }
                    emit.writer = None;
                    break;
                }
            }
            emit.emitted += 1;
        }
    }
}

/// A live recording of one multithreaded execution.
///
/// Cloning the handle is cheap (an `Arc`); every captured object
/// ([`Mutex`](crate::Mutex), [`Condvar`](crate::Condvar), …) holds a clone,
/// and threads spawned through [`CaptureSession::spawn`] record fork/join
/// edges automatically. [`finish`](CaptureSession::finish) closes the STB
/// stream and completes the sink.
///
/// # Examples
///
/// ```
/// use smarttrack_capture::{CaptureConfig, CaptureSession, CaptureSink, Mutex};
///
/// let (sink, bytes) = CaptureSink::memory();
/// let session = CaptureSession::new(sink, CaptureConfig::default());
/// let m = std::sync::Arc::new(Mutex::new(&session, 0u32));
/// let worker = {
///     let m = m.clone();
///     session.spawn(move || *m.lock() += 1)
/// };
/// worker.join().unwrap();
/// *m.lock() += 1;
/// let report = session.finish()?;
/// assert_eq!(report.threads, 2);
/// let trace = smarttrack_trace::binary::from_stb_bytes(&bytes.lock().unwrap())?;
/// assert_eq!(trace.len() as u64, report.events);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct CaptureSession {
    inner: Arc<SessionInner>,
}

impl CaptureSession {
    /// Starts a capture writing STB into `sink`. The calling thread is
    /// registered as thread 0.
    pub fn new(sink: CaptureSink, config: CaptureConfig) -> CaptureSession {
        let serial = SESSION_SERIAL.fetch_add(1, Ordering::Relaxed);
        let writer = StbWriter::v2(sink).chunk_events(config.chunk_events.max(1));
        let inner = Arc::new(SessionInner {
            serial,
            config,
            seq: AtomicU64::new(0),
            emit: Mutex::new(EmitState {
                writer: Some(writer),
                pending: BTreeMap::new(),
                emitted: 0,
                sink_error: None,
            }),
            slots: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            finished: AtomicBool::new(false),
            next_thread: AtomicU32::new(0),
            next_lock: AtomicU32::new(0),
            next_var: AtomicU32::new(0),
            next_volatile: AtomicU32::new(0),
            next_cond: AtomicU32::new(0),
            next_barrier: AtomicU32::new(0),
            locs: Mutex::new(LocTable::default()),
        });
        let session = CaptureSession { inner };
        // Register the creating thread eagerly so it deterministically gets
        // thread id 0 (children then number 1, 2, … in spawn order).
        session.with_ctx(|_ctx| {});
        session
    }

    // -- id interning -----------------------------------------------------

    pub(crate) fn alloc_lock(&self) -> LockId {
        LockId::new(self.inner.next_lock.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn alloc_var(&self) -> VarId {
        VarId::new(self.inner.next_var.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn alloc_volatile(&self) -> VarId {
        VarId::new(self.inner.next_volatile.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn alloc_cond(&self) -> CondId {
        CondId::new(self.inner.next_cond.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn alloc_barrier(&self) -> BarrierId {
        BarrierId::new(self.inner.next_barrier.fetch_add(1, Ordering::Relaxed))
    }

    fn alloc_thread(&self) -> ThreadId {
        ThreadId::new(self.inner.next_thread.fetch_add(1, Ordering::Relaxed))
    }

    /// Interns a source location into a stable [`Loc`] (first use assigns
    /// the id; repetitions at the same site map to the same `Loc`, which is
    /// what makes the paper's statically-distinct race counting work on
    /// captured traces).
    pub(crate) fn intern_loc(&self, site: &'static Location<'static>) -> Loc {
        let key = (site.file().as_ptr() as usize, site.line(), site.column());
        self.with_ctx(|ctx| {
            if let Some(&loc) = ctx.loc_cache.get(&key) {
                return loc;
            }
            let mut table = ctx.inner.locs.lock().expect("locs mutex");
            let next = table.next;
            let loc = *table
                .by_site
                .entry((site.file(), site.line(), site.column()))
                .or_insert_with(|| Loc::new(next));
            if loc == Loc::new(next) {
                table.next += 1;
            }
            drop(table);
            ctx.loc_cache.insert(key, loc);
            loc
        })
    }

    // -- recording --------------------------------------------------------

    /// Runs `f` on this thread's context for the session, creating and
    /// registering one on first use.
    fn with_ctx<R>(&self, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            let serial = self.inner.serial;
            let at = match ctxs.iter().position(|c| c.serial == serial) {
                Some(at) => at,
                None => {
                    let slot = Arc::new(ThreadSlot {
                        floor: AtomicU64::new(u64::MAX),
                    });
                    self.inner
                        .slots
                        .lock()
                        .expect("slots mutex")
                        .push(slot.clone());
                    ctxs.push(ThreadCtx {
                        inner: self.inner.clone(),
                        serial,
                        tid: self.alloc_thread(),
                        slot,
                        buf: Vec::new(),
                        ops: 0,
                        loc_cache: HashMap::new(),
                    });
                    ctxs.len() - 1
                }
            };
            f(&mut ctxs[at])
        })
    }

    /// Installs a context with a pre-assigned thread id (used by
    /// [`spawn`](CaptureSession::spawn) so the fork edge and the child's
    /// id agree). Must run on the child thread before it records anything.
    pub(crate) fn adopt(&self, tid: ThreadId) {
        CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            debug_assert!(
                !ctxs.iter().any(|c| c.serial == self.inner.serial),
                "thread already registered with this session"
            );
            let slot = Arc::new(ThreadSlot {
                floor: AtomicU64::new(u64::MAX),
            });
            self.inner
                .slots
                .lock()
                .expect("slots mutex")
                .push(slot.clone());
            ctxs.push(ThreadCtx {
                inner: self.inner.clone(),
                serial: self.inner.serial,
                tid,
                slot,
                buf: Vec::new(),
                ops: 0,
                loc_cache: HashMap::new(),
            });
        });
    }

    /// Removes (and thereby drains) the calling thread's context.
    pub(crate) fn retire_thread(&self) {
        CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            ctxs.retain(|c| c.serial != self.inner.serial);
        });
    }

    /// The calling thread's id within this session (registering it if
    /// needed).
    pub fn current_thread(&self) -> ThreadId {
        self.with_ctx(|ctx| ctx.tid)
    }

    /// Records one event for the calling thread. The caller must hold
    /// whatever real synchronization orders the operation (see the module
    /// docs); the ticket drawn here is what makes the merged stream a valid
    /// linearization.
    pub(crate) fn record(&self, op: Op, loc: Loc) {
        self.with_ctx(|ctx| {
            ctx.ops += 1;
            if ctx.buf.is_empty() {
                // Publish a floor below the ticket we are about to draw
                // *before* drawing it: the pre-read is ≤ the fetch_add
                // result, so the emitter can never emit past us.
                let bound = ctx.inner.seq.load(Ordering::SeqCst);
                ctx.slot.floor.store(bound, Ordering::SeqCst);
            }
            let seq = ctx.inner.seq.fetch_add(1, Ordering::SeqCst);
            ctx.buf.push((seq, Event::with_loc(ctx.tid, op, loc)));
            if ctx.buf.len() >= ctx.inner.config.buffer_events.max(1) {
                let inner = ctx.inner.clone();
                inner.drain(&ctx.slot, &mut ctx.buf);
            }
        });
    }

    /// Yields per the configured [`Nudge`] schedule. Wrappers call this
    /// before their real operation, perturbing interleavings
    /// deterministically-per-thread rather than with sleeps.
    pub(crate) fn nudge(&self) {
        let Some(nudge) = self.inner.config.nudge else {
            return;
        };
        let due = self.with_ctx(|ctx| {
            let period = u64::from(nudge.period.max(1));
            let slot = (ctx.ops + u64::from(ctx.tid.raw())) % period;
            ctx.ops += 1;
            slot == u64::from(nudge.phase) % period
        });
        if due {
            std::thread::yield_now();
        }
    }

    // -- threads ----------------------------------------------------------

    /// Spawns a captured thread, recording the fork edge on the caller (the
    /// fork's ticket is drawn before the child starts, so the edge is
    /// ordered correctly). The child's buffer is drained before its
    /// [`JoinHandle::join`] returns.
    #[track_caller]
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let loc = self.intern_loc(Location::caller());
        let child = self.alloc_thread();
        self.record(Op::Fork(child), loc);
        self.inner.active.fetch_add(1, Ordering::SeqCst);
        let session = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("capture-{}", child.raw()))
            .spawn(move || {
                let _guard = AdoptGuard::install(&session, child);
                f()
            })
            .expect("spawn captured thread");
        JoinHandle {
            session: self.clone(),
            child,
            loc,
            handle,
        }
    }

    /// Drains the calling thread's buffer into the emitter (an explicit
    /// epoch flush). Spawned threads flush automatically on exit; a foreign
    /// thread that recorded events must call this before the session can
    /// [`finish`](CaptureSession::finish).
    pub fn flush_thread(&self) {
        self.with_ctx(|ctx| {
            let inner = ctx.inner.clone();
            inner.drain(&ctx.slot, &mut ctx.buf);
        });
    }

    /// Closes the recording: drains the calling thread, emits everything,
    /// terminates the STB stream, and completes the sink (collecting final
    /// reports from any serve sinks).
    ///
    /// # Errors
    ///
    /// [`CaptureError::ThreadsActive`] if spawned threads are still running
    /// or another thread still holds buffered events;
    /// [`CaptureError::Sink`] if the sink failed at any point;
    /// [`CaptureError::AlreadyFinished`] on a second call.
    pub fn finish(&self) -> Result<CaptureReport, CaptureError> {
        let active = self.inner.active.load(Ordering::SeqCst);
        if active > 0 {
            return Err(CaptureError::ThreadsActive(active));
        }
        // Drop (and thereby drain) our own context before checking floors.
        self.retire_thread();
        if self.inner.finished.swap(true, Ordering::SeqCst) {
            return Err(CaptureError::AlreadyFinished);
        }
        let mut emit = self.inner.emit.lock().expect("emit mutex");
        {
            let slots = self.inner.slots.lock().expect("slots mutex");
            let stuck = slots
                .iter()
                .filter(|s| s.floor.load(Ordering::SeqCst) != u64::MAX)
                .count();
            if stuck > 0 {
                self.inner.finished.store(false, Ordering::SeqCst);
                return Err(CaptureError::ThreadsActive(stuck));
            }
        }
        self.inner.pump(&mut emit);
        debug_assert!(
            emit.pending.is_empty(),
            "all floors at MAX yet events pending"
        );
        if let Some(e) = emit.sink_error.take() {
            return Err(CaptureError::Sink(e));
        }
        let writer = emit.writer.take().ok_or(CaptureError::AlreadyFinished)?;
        let sink = writer.finish().map_err(CaptureError::Sink)?;
        let serve_reports = sink.complete()?;
        Ok(CaptureReport {
            events: emit.emitted,
            threads: self.inner.next_thread.load(Ordering::SeqCst),
            serve_reports,
        })
    }
}

/// Child-thread context guard: installs the pre-assigned context on entry;
/// on exit — panic included — drains the buffer and decrements the active
/// count (in that order, so `finish` seeing zero active threads implies
/// every child buffer reached the emitter).
struct AdoptGuard {
    session: CaptureSession,
}

impl AdoptGuard {
    fn install(session: &CaptureSession, tid: ThreadId) -> AdoptGuard {
        session.adopt(tid);
        AdoptGuard {
            session: session.clone(),
        }
    }
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        // Removing the context drops it, which drains the buffer (this runs
        // during unwinding too: a panicking captured thread flushes what it
        // has, and any lock guards already released their events above us).
        self.session.retire_thread();
        self.session.inner.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Handle to a captured thread; [`join`](JoinHandle::join) records the join
/// edge after the child has fully exited (so the edge's ticket exceeds
/// every child ticket).
pub struct JoinHandle<T> {
    session: CaptureSession,
    child: ThreadId,
    loc: Loc,
    handle: std::thread::JoinHandle<T>,
}

impl<T> JoinHandle<T> {
    /// The captured thread id of the child.
    pub fn tid(&self) -> ThreadId {
        self.child
    }

    /// Waits for the child and records the join edge. A panicking child
    /// still gets its join edge (its partial trace already flushed), and
    /// the panic payload is returned exactly like `std`'s join.
    pub fn join(self) -> std::thread::Result<T> {
        let result = self.handle.join();
        self.session.record(Op::Join(self.child), self.loc);
        result
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {}
}
