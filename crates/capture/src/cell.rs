//! Captured data accesses: volatiles ([`AtomicU32`]) and plain shared
//! variables ([`Shared`]).
//!
//! Real Rust forbids genuinely racy plain accesses (UB), so both wrappers
//! hide a `std::sync::Mutex` that makes the *execution* well-defined while
//! the *recorded model* sees exactly what the program meant: volatile
//! reads/writes for [`AtomicU32`] (synchronization accesses, §5.1 of the
//! paper), unordered plain reads/writes for [`Shared`]. The hidden mutex is
//! invisible to the model — it contributes no events, so it adds no edges —
//! and it orders each object's stamps with its real access order, which is
//! all the recording protocol needs.

use std::panic::Location;
use std::sync::{Mutex as StdMutex, PoisonError};

use smarttrack_trace::{Op, VarId};

use crate::session::CaptureSession;

/// An instrumented `AtomicU32`-style volatile: every access records a
/// `vrd`/`vwr` event, which the analyses treat as a synchronization access
/// (a release-publish on write, an acquire-join on read).
pub struct AtomicU32 {
    session: CaptureSession,
    id: VarId,
    inner: StdMutex<u32>,
}

impl AtomicU32 {
    /// A captured volatile with a fresh stable [`VarId`] (volatiles and
    /// plain variables are interned in separate namespaces, matching the
    /// analyses' interner).
    pub fn new(session: &CaptureSession, value: u32) -> AtomicU32 {
        AtomicU32 {
            session: session.clone(),
            id: session.alloc_volatile(),
            inner: StdMutex::new(value),
        }
    }

    /// The stable trace id of this volatile.
    pub fn id(&self) -> VarId {
        self.id
    }

    /// Volatile read.
    #[track_caller]
    pub fn load(&self) -> u32 {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::VolatileRead(self.id), loc);
        *guard
    }

    /// Volatile write.
    #[track_caller]
    pub fn store(&self, value: u32) {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::VolatileWrite(self.id), loc);
        *guard = value;
    }

    /// Atomic add; recorded as a volatile write (the read side of the
    /// read-modify-write is subsumed — the write's publish joins the
    /// object's clock first, so no ordering is lost).
    #[track_caller]
    pub fn fetch_add(&self, delta: u32) -> u32 {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::VolatileWrite(self.id), loc);
        let prior = *guard;
        *guard = prior.wrapping_add(delta);
        prior
    }
}

/// An instrumented plain shared variable: `get`/`set` record ordinary
/// `rd`/`wr` events — the accesses race detection is *about*. The value
/// itself lives behind a hidden mutex so the host execution stays
/// UB-free even when the model finds the accesses unordered.
pub struct Shared<T: Copy> {
    session: CaptureSession,
    id: VarId,
    inner: StdMutex<T>,
}

impl<T: Copy> Shared<T> {
    /// A captured plain variable with a fresh stable [`VarId`].
    pub fn new(session: &CaptureSession, value: T) -> Shared<T> {
        Shared {
            session: session.clone(),
            id: session.alloc_var(),
            inner: StdMutex::new(value),
        }
    }

    /// The stable trace id of this variable.
    pub fn id(&self) -> VarId {
        self.id
    }

    /// Plain read.
    #[track_caller]
    pub fn get(&self) -> T {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::Read(self.id), loc);
        *guard
    }

    /// Plain write.
    #[track_caller]
    pub fn set(&self, value: T) {
        let loc = self.session.intern_loc(Location::caller());
        self.session.nudge();
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.session.record(Op::Write(self.id), loc);
        *guard = value;
    }
}
