//! Executable twins of the workload race patterns: real threaded programs
//! built from the capture wrappers, with *schedule-robust* expectations.
//!
//! Each twin is chosen so its statically-distinct race count is identical
//! under every Table-1 relation (HB, WCP, DC, WDC) **and** under every
//! schedule the OS may pick — that is what lets the differential battery
//! (`tests/capture_differential.rs`) assert exact counts across repeated
//! nudged runs. The generator's `Predictive`/`DcOnly` figures are
//! deliberately *not* mirrored here: their HB-detectability depends on the
//! observed critical-section order, so a live capture of them has
//! schedule-dependent expectations.
//!
//! One subtlety versus the synthetic generator: the generator's
//! `CondvarHandoff` orders the consumer purely through the notify edge,
//! but a real consumer may find the predicate already true and never
//! block. The twins therefore keep the handoff flag in a captured
//! [`Shared`] read *under the monitor*, so the skip-wait schedule is still
//! ordered for every relation through the conflicting critical sections
//! (and the waited schedule additionally through the notify→wait edge).

use std::sync::Arc;

use crate::cell::{AtomicU32, Shared};
use crate::session::{CaptureConfig, CaptureError, CaptureReport, CaptureSession};
use crate::sink::CaptureSink;
use crate::sync::{Barrier, Condvar, Mutex, RwLock};

/// The executable pattern twins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TwinKind {
    /// Both threads mutate shared data under one mutex: race-free.
    LockProtected,
    /// Both threads write the same variable with no synchronization at one
    /// static site: exactly one statically-distinct race.
    UnsyncRace,
    /// Producer-consumer condvar handoff (flag under the monitor):
    /// race-free whether or not the consumer ever blocks.
    CondvarHandoff,
    /// The producer writes *after* its notifying critical section: one
    /// race in every schedule.
    CondvarRace,
    /// Barrier-phased double-buffering: race-free.
    BarrierPhase,
    /// Both threads touch one variable in the same post-rendezvous phase:
    /// one race.
    BarrierRace,
    /// Message-passing through a volatile flag, data written before the
    /// publishing store: race-free.
    VolatileHandoff,
    /// Data written *after* the publishing store: one race.
    VolatileRace,
    /// Reads and writes under a captured rwlock: race-free.
    RwLockGuarded,
    /// One thread *writes* shared data under a mere read lock while another
    /// reads it under its own read lock: read sections never exclude each
    /// other, so exactly one race — in every relation and every schedule.
    /// (The misuse pattern a serializing rwlock wrapper can never surface.)
    ReaderOverlap,
    /// A race hidden behind a same-lock critical-section *reversal* (the
    /// `reversal` workload pattern's executable twin): thread A writes `x`
    /// inside its section, thread B writes `x` after its own section, and
    /// both sections write `y` so neither is droppable. An *unrecorded*
    /// `std::sync::Barrier` pins A's section before B's on every schedule,
    /// so the captured trace is always the canonical shape: 0 races under
    /// every Table 1 relation and under SyncP, exactly 1 under OSR.
    Reversal,
}

impl TwinKind {
    /// Every twin, in a stable order.
    pub const ALL: [TwinKind; 11] = [
        TwinKind::LockProtected,
        TwinKind::UnsyncRace,
        TwinKind::CondvarHandoff,
        TwinKind::CondvarRace,
        TwinKind::BarrierPhase,
        TwinKind::BarrierRace,
        TwinKind::VolatileHandoff,
        TwinKind::VolatileRace,
        TwinKind::RwLockGuarded,
        TwinKind::ReaderOverlap,
        TwinKind::Reversal,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TwinKind::LockProtected => "lock-protected",
            TwinKind::UnsyncRace => "unsync-race",
            TwinKind::CondvarHandoff => "condvar-handoff",
            TwinKind::CondvarRace => "condvar-race",
            TwinKind::BarrierPhase => "barrier-phase",
            TwinKind::BarrierRace => "barrier-race",
            TwinKind::VolatileHandoff => "volatile-handoff",
            TwinKind::VolatileRace => "volatile-race",
            TwinKind::RwLockGuarded => "rwlock-guarded",
            TwinKind::ReaderOverlap => "reader-overlap",
            TwinKind::Reversal => "reversal",
        }
    }

    /// Statically-distinct races any Table-1 cell must report on any
    /// schedule of this twin (the same count for HB, WCP, DC, and WDC —
    /// that invariance is the twin selection criterion).
    pub fn expected_static(self) -> usize {
        match self {
            // The reversal twin's race is invisible to every Table 1
            // relation (only the OSR extension row sees it — pinned by a
            // dedicated capture-differential test).
            TwinKind::LockProtected
            | TwinKind::CondvarHandoff
            | TwinKind::BarrierPhase
            | TwinKind::VolatileHandoff
            | TwinKind::RwLockGuarded
            | TwinKind::Reversal => 0,
            TwinKind::UnsyncRace
            | TwinKind::CondvarRace
            | TwinKind::BarrierRace
            | TwinKind::VolatileRace
            | TwinKind::ReaderOverlap => 1,
        }
    }
}

/// Shared-site accessors: both worker threads call through these plain
/// helpers, so the conflicting accesses of a racy twin share one static
/// [`Loc`](smarttrack_trace::Loc) and `Report::static_count()` is
/// schedule-independent.
fn bump(x: &Shared<u32>) {
    let v = x.get();
    x.set(v.wrapping_add(1));
}

fn poke(x: &Shared<u32>) {
    x.set(1);
}

/// Runs one twin end to end: a fresh [`CaptureSession`] over `sink`, two
/// captured worker threads executing the pattern, then
/// [`finish`](CaptureSession::finish).
pub fn run_twin(
    kind: TwinKind,
    sink: CaptureSink,
    config: CaptureConfig,
) -> Result<CaptureReport, CaptureError> {
    let session = CaptureSession::new(sink, config);
    match kind {
        TwinKind::LockProtected => {
            let m = Arc::new(Mutex::new(&session, ()));
            let x = Arc::new(Shared::new(&session, 0u32));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (m, x) = (m.clone(), x.clone());
                    session.spawn(move || {
                        for _ in 0..4 {
                            let _g = m.lock();
                            bump(&x);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("twin worker");
            }
        }
        TwinKind::UnsyncRace => {
            let x = Arc::new(Shared::new(&session, 0u32));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let x = x.clone();
                    session.spawn(move || poke(&x))
                })
                .collect();
            for w in workers {
                w.join().expect("twin worker");
            }
        }
        TwinKind::CondvarHandoff | TwinKind::CondvarRace => {
            let m = Arc::new(Mutex::new(&session, ()));
            let flag = Arc::new(Shared::new(&session, false));
            let cv = Arc::new(Condvar::new(&session));
            let x = Arc::new(Shared::new(&session, 0u32));
            let producer = {
                let (m, flag, cv, x) = (m.clone(), flag.clone(), cv.clone(), x.clone());
                session.spawn(move || {
                    if kind == TwinKind::CondvarHandoff {
                        // Data written before the publishing critical
                        // section: the handoff orders it.
                        x.set(42);
                    }
                    {
                        let _g = m.lock();
                        flag.set(true);
                        cv.notify_one();
                    }
                    if kind == TwinKind::CondvarRace {
                        // Written after the notify and after the release:
                        // nothing orders it before the consumer's read.
                        x.set(42);
                    }
                })
            };
            let consumer = {
                let (m, flag, cv, x) = (m, flag, cv, x);
                session.spawn(move || {
                    let mut g = m.lock();
                    while !flag.get() {
                        g = cv.wait(g);
                    }
                    drop(g);
                    let _ = x.get();
                })
            };
            producer.join().expect("twin producer");
            consumer.join().expect("twin consumer");
        }
        TwinKind::BarrierPhase => {
            let bar = Arc::new(Barrier::new(&session, 2));
            let a = Arc::new(Shared::new(&session, 0u32));
            let b = Arc::new(Shared::new(&session, 0u32));
            let w0 = {
                let (bar, a, b) = (bar.clone(), a.clone(), b.clone());
                session.spawn(move || {
                    a.set(1);
                    bar.wait();
                    let _ = b.get();
                })
            };
            let w1 = {
                let (bar, a, b) = (bar, a, b);
                session.spawn(move || {
                    b.set(1);
                    bar.wait();
                    let _ = a.get();
                })
            };
            w0.join().expect("twin worker");
            w1.join().expect("twin worker");
        }
        TwinKind::BarrierRace => {
            let bar = Arc::new(Barrier::new(&session, 2));
            let y = Arc::new(Shared::new(&session, 0u32));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (bar, y) = (bar.clone(), y.clone());
                    session.spawn(move || {
                        bar.wait();
                        // Same phase, same site, no ordering between the
                        // parties after the rendezvous.
                        poke(&y);
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("twin worker");
            }
        }
        TwinKind::VolatileHandoff | TwinKind::VolatileRace => {
            let flag = Arc::new(AtomicU32::new(&session, 0));
            let x = Arc::new(Shared::new(&session, 0u32));
            let producer = {
                let (flag, x) = (flag.clone(), x.clone());
                session.spawn(move || {
                    if kind == TwinKind::VolatileHandoff {
                        x.set(7);
                    }
                    flag.store(1);
                    if kind == TwinKind::VolatileRace {
                        x.set(7);
                    }
                })
            };
            let consumer = {
                let (flag, x) = (flag, x);
                session.spawn(move || {
                    while flag.load() == 0 {
                        std::thread::yield_now();
                    }
                    let _ = x.get();
                })
            };
            producer.join().expect("twin producer");
            consumer.join().expect("twin consumer");
        }
        TwinKind::RwLockGuarded => {
            let rw = Arc::new(RwLock::new(&session, ()));
            let x = Arc::new(Shared::new(&session, 0u32));
            let writer = {
                let (rw, x) = (rw.clone(), x.clone());
                session.spawn(move || {
                    for _ in 0..2 {
                        let _g = rw.write();
                        bump(&x);
                    }
                })
            };
            let reader = {
                let (rw, x) = (rw, x);
                session.spawn(move || {
                    for _ in 0..2 {
                        let _g = rw.read();
                        let _ = x.get();
                    }
                })
            };
            writer.join().expect("twin writer");
            reader.join().expect("twin reader");
        }
        TwinKind::ReaderOverlap => {
            let rw = Arc::new(RwLock::new(&session, ()));
            let x = Arc::new(Shared::new(&session, 0u32));
            let y = Arc::new(Shared::new(&session, 0u32));
            // Writes `x` under a *read* lock: mutual exclusion the code
            // seems to rely on simply isn't there.
            let writer = {
                let (rw, x) = (rw.clone(), x.clone());
                session.spawn(move || {
                    let _g = rw.read();
                    poke(&x);
                })
            };
            // Reads `x` under its own read lock — nothing orders it against
            // the writer in any relation, on any schedule: one race.
            let reader = {
                let (rw, x) = (rw.clone(), x.clone());
                session.spawn(move || {
                    let _g = rw.read();
                    let _ = x.get();
                })
            };
            // A second reader on unrelated data: read sections really
            // overlap (no serialization), but it adds no race.
            let bystander = {
                let (rw, y) = (rw, y);
                session.spawn(move || {
                    let _g = rw.read();
                    let _ = y.get();
                })
            };
            writer.join().expect("twin writer");
            reader.join().expect("twin reader");
            bystander.join().expect("twin bystander");
        }
        TwinKind::Reversal => {
            let m = Arc::new(Mutex::new(&session, ()));
            let x = Arc::new(Shared::new(&session, 0u32));
            let y = Arc::new(Shared::new(&session, 0u32));
            // The rendezvous is a *raw* std barrier, invisible to the
            // captured trace (precedent: the poisoned-mutex battery). It
            // pins the real schedule — A's whole section before B's — so
            // the capture is the canonical reversal shape every run, while
            // the recorded events claim no such ordering.
            let gate = Arc::new(std::sync::Barrier::new(2));
            let a = {
                let (m, x, y, gate) = (m.clone(), x.clone(), y.clone(), gate.clone());
                session.spawn(move || {
                    {
                        let _g = m.lock();
                        poke(&y);
                        poke(&x); // e1: inside the section
                    }
                    gate.wait();
                })
            };
            let b = {
                let (m, x, y, gate) = (m, x, y, gate);
                session.spawn(move || {
                    gate.wait();
                    {
                        let _g = m.lock();
                        poke(&y);
                    }
                    poke(&x); // e2: after the section — races only reversed
                })
            };
            a.join().expect("twin worker");
            b.join().expect("twin worker");
        }
    }
    session.finish()
}
