#![warn(missing_docs)]

//! # SmartTrack: efficient predictive data-race detection
//!
//! A from-scratch Rust reproduction of *SmartTrack: Efficient Predictive Race
//! Detection* (Roemer, Genç, Bond — PLDI 2020). This facade crate is the
//! public entry point for *offline* (trace-processing) analysis; the
//! substrate crates (`smarttrack-trace`, `smarttrack-detect`,
//! `smarttrack-vindicate`) are re-exported under [`trace`], [`detect`], and
//! [`vindicate`]. Execution simulation lives in `smarttrack-runtime`,
//! calibrated workloads in `smarttrack-workloads`, and the paper's §5.1
//! *parallel* deployment model — analysis hooks running inside the
//! application threads — in `smarttrack-parallel`.
//!
//! ## What this is
//!
//! *Predictive* race detectors report data races that are provable from an
//! observed execution even when the observed interleaving itself never
//! exhibits them. The paper's contribution — reproduced here in full — is a
//! set of optimizations (epochs + ownership, and novel conflicting-critical-
//! section optimizations) that make the predictive WCP, DC, and
//! newly-introduced WDC analyses run nearly as fast as the widely deployed
//! non-predictive FastTrack HB analysis.
//!
//! ## Quick start
//!
//! ```
//! use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
//! use smarttrack::trace::paper;
//!
//! // The paper's Figure 1: no HB-race, but a predictable race on x.
//! let trace = paper::figure1();
//!
//! let hb = analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Fto));
//! assert_eq!(hb.report.dynamic_count(), 0, "HB analysis misses the race");
//!
//! let st = analyze(
//!     &trace,
//!     AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
//! );
//! assert_eq!(st.report.dynamic_count(), 1, "SmartTrack-DC predicts it");
//! ```
//!
//! ## The Table 1 analysis matrix
//!
//! [`AnalysisConfig::table1`] enumerates all eleven evaluated analyses
//! ({Unopt, FT2/FTO, SmartTrack} × {HB, WCP, DC, WDC} minus N/A cells, plus
//! the graph-building Unopt variants used for vindication support).

mod config;
pub mod two_phase;

pub use config::{analyze, analyze_all, AnalysisConfig, AnalysisOutcome, ParseAnalysisConfigError};
pub use smarttrack_detect::{
    make_detector, run_detector, AccessKind, CcsFidelity, Detector, EraserLockset, FtoCase,
    FtoCaseCounters, OptLevel, RaceReport, Relation, Report, RunSummary,
};

/// Trace model, generators, statistics, and the paper's example executions.
pub mod trace {
    pub use smarttrack_trace::*;
}

/// The eleven analyses and their support types.
pub mod detect {
    pub use smarttrack_detect::*;
}

/// Witness construction, the predicted-trace validator, and the exhaustive
/// oracle.
pub mod vindicate {
    pub use smarttrack_vindicate::*;
}
