#![warn(missing_docs)]

//! # SmartTrack: efficient predictive data-race detection
//!
//! A from-scratch Rust reproduction of *SmartTrack: Efficient Predictive Race
//! Detection* (Roemer, Genç, Bond — PLDI 2020). This facade crate is the
//! public entry point for analysis; the substrate crates
//! (`smarttrack-trace`, `smarttrack-detect`, `smarttrack-vindicate`) are
//! re-exported under [`trace`], [`detect`], and [`vindicate`]. Execution
//! simulation lives in `smarttrack-runtime`, calibrated workloads in
//! `smarttrack-workloads`, and the paper's §5.1 *parallel* deployment model
//! — analysis hooks running inside the application threads — in
//! `smarttrack-parallel`.
//!
//! ## What this is
//!
//! *Predictive* race detectors report data races that are provable from an
//! observed execution even when the observed interleaving itself never
//! exhibits them. The paper's contribution — reproduced here in full — is a
//! set of optimizations (epochs + ownership, and novel conflicting-critical-
//! section optimizations) that make the predictive WCP, DC, and
//! newly-introduced WDC analyses run nearly as fast as the widely deployed
//! non-predictive FastTrack HB analysis.
//!
//! ## Quick start: the streaming `Engine`/`Session` API
//!
//! Analyses ingest an event stream through a [`Session`] opened from a
//! builder-configured [`Engine`] — the paper's online deployment shape.
//! Feed events as they happen (or a whole recorded trace), observe races
//! and per-analysis state at any point, finish for the final outcome:
//!
//! ```
//! use smarttrack::{AnalysisConfig, Engine, OptLevel, Relation};
//! use smarttrack::trace::paper;
//!
//! // The paper's Figure 1: no HB-race, but a predictable race on x.
//! let trace = paper::figure1();
//!
//! // One pass, two analyses: the FTO-HB baseline fanned out next to the
//! // primary SmartTrack-DC lane.
//! let engine = Engine::builder()
//!     .relation(Relation::Dc)
//!     .opt_level(OptLevel::SmartTrack)
//!     .fanout([AnalysisConfig::new(Relation::Hb, OptLevel::Fto)])
//!     .build()?;
//!
//! let mut session = engine.open();
//! for &event in trace.events() {
//!     session.feed(event)?; // or feed_batch / feed_trace
//! }
//! assert_eq!(session.races().len(), 1, "the DC lane predicts the race");
//!
//! let outcomes = session.finish();
//! assert_eq!(outcomes[0].name, "SmartTrack-DC");
//! assert_eq!(outcomes[0].report.dynamic_count(), 1);
//! assert_eq!(outcomes[1].name, "FTO-HB");
//! assert_eq!(outcomes[1].report.dynamic_count(), 0, "HB analysis misses it");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Races can also be *pushed* as they are detected — the production shape —
//! by installing a [`RaceSink`] with [`Session::set_sink`]. For one-shot
//! whole-trace analysis the [`analyze`] / [`analyze_all`] wrappers remain:
//!
//! ```
//! use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
//! use smarttrack::trace::paper;
//!
//! let st = analyze(
//!     &paper::figure1(),
//!     AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
//! );
//! assert_eq!(st.report.dynamic_count(), 1);
//! ```
//!
//! ## The Table 1 analysis matrix
//!
//! [`AnalysisConfig::table1`] enumerates all eleven evaluated analyses
//! ({Unopt, FT2/FTO, SmartTrack} × {HB, WCP, DC, WDC} minus N/A cells, plus
//! the graph-building Unopt variants used for vindication support), and
//! [`EngineBuilder::table1`](smarttrack_detect::EngineBuilder::table1) fans
//! the whole matrix out over a single pass.

pub mod two_phase;

pub use smarttrack_detect::{
    analyze, analyze_all, make_detector, osr_pair_witness, run_detector, syncp_pair_ideal,
    worker_count, AccessKind, AnalysisConfig, AnalysisOutcome, BatchJob, CcsFidelity,
    CorpusAnalysisTotal, CorpusRace, CorpusReport, Detector, Engine, EngineBuilder, EngineError,
    EnginePool, EraserLockset, FtoCase, FtoCaseCounters, HotPathStats, JobError, JobOutcome,
    JobSuccess, LTime, LaneSnapshot, LockVarTable, OptLevel, Osr, ParseAnalysisConfigError,
    PoolStats, RaceNotice, RaceReport, RaceSink, Relation, Report, RunSummary, Session,
    SessionSnapshot, StreamHint, SyncP,
};

/// Trace model, generators, statistics, and the paper's example executions.
pub mod trace {
    pub use smarttrack_trace::*;
}

/// The eleven analyses and their support types.
pub mod detect {
    pub use smarttrack_detect::*;
}

/// Witness construction, the predicted-trace validator, and the exhaustive
/// oracle.
pub mod vindicate {
    pub use smarttrack_vindicate::*;
}
