//! The paper's proposed deployment architecture (§4.3): detect fast, check
//! later.
//!
//! Building the constraint graph needed to *check* DC/WDC-races "can add
//! significant time and space overhead" (Table 3's "w/ G" columns), so the
//! paper proposes: run the optimized SmartTrack analysis online, and only if
//! it reports races, *replay* the recorded execution under an analysis that
//! builds the graph and vindicate the races then. "Replay failure caused by
//! undetected races is a non-issue since DC analysis detects all races."
//!
//! Our substrate records executions as traces, so replay is exact re-analysis
//! of the same event stream.

use smarttrack_detect::{run_detector, OptLevel, Relation};
use smarttrack_trace::{EventId, Trace};
use smarttrack_vindicate::{find_prior_access, vindicate_pair, VindicationResult, Witness};

use crate::{analyze, AnalysisConfig, AnalysisOutcome};

/// A race that went through both phases.
#[derive(Clone, Debug)]
pub struct CheckedRace {
    /// The detecting access (second event of the pair).
    pub event: EventId,
    /// The earlier conflicting access.
    pub prior: Option<EventId>,
    /// The verified witness, when vindication succeeded.
    pub witness: Option<Witness>,
}

/// The combined result of the two-phase pipeline.
#[derive(Clone, Debug)]
pub struct TwoPhaseOutcome {
    /// The fast first-phase outcome (SmartTrack analysis, no graph).
    pub detection: AnalysisOutcome,
    /// Per statically distinct race: vindication result (empty if phase 1
    /// found nothing — then phase 2 never ran, which is the point).
    pub checked: Vec<CheckedRace>,
    /// Whether the replay phase was executed.
    pub replayed: bool,
}

impl TwoPhaseOutcome {
    /// Races proven real (witness constructed and validated).
    pub fn verified(&self) -> usize {
        self.checked.iter().filter(|c| c.witness.is_some()).count()
    }

    /// Races reported but not proven (vindication is incomplete; for WDC
    /// these may be false races like the paper's Figure 3).
    pub fn unverified(&self) -> usize {
        self.checked.len() - self.verified()
    }
}

/// Runs the two-phase pipeline for `relation` (DC or WDC): SmartTrack
/// detection first, and — only if races were reported — a replayed
/// graph-building analysis plus vindication of one dynamic race per static
/// site.
///
/// # Panics
///
/// Panics if `relation` is HB or WCP (HB needs no prediction; WCP is sound
/// and "does not need or use vindication", §2.4).
///
/// # Examples
///
/// ```
/// use smarttrack::two_phase::detect_then_check;
/// use smarttrack::Relation;
/// use smarttrack_trace::paper;
///
/// // Figure 1: one race, vindicated on replay.
/// let out = detect_then_check(&paper::figure1(), Relation::Dc);
/// assert!(out.replayed);
/// assert_eq!(out.verified(), 1);
///
/// // Figure 4(a): no races, no replay cost at all.
/// let out = detect_then_check(&paper::figure4a(), Relation::Dc);
/// assert!(!out.replayed);
/// ```
pub fn detect_then_check(trace: &Trace, relation: Relation) -> TwoPhaseOutcome {
    assert!(
        matches!(relation, Relation::Dc | Relation::Wdc),
        "two-phase checking applies to the unsound relations (DC, WDC)"
    );
    // Phase 1: optimized online detection (what production would run).
    let detection = analyze(trace, AnalysisConfig::new(relation, OptLevel::SmartTrack));
    if detection.report.is_empty() {
        return TwoPhaseOutcome {
            detection,
            checked: Vec::new(),
            replayed: false,
        };
    }
    let checked = replay_and_check(trace, relation);
    TwoPhaseOutcome {
        detection,
        checked,
        replayed: true,
    }
}

/// The replay phase alone: re-analyzes `trace` with the graph-building
/// Unopt variant of `relation` and vindicates one dynamic race per
/// statically distinct site.
///
/// [`detect_then_check`] calls this after a whole-trace phase 1; call it
/// directly when phase 1 ran *streamed* (e.g. over an STB binary trace fed
/// incrementally into a `Session`) and reported races — the recorded trace
/// is materialized only now, for the replay the paper's §4.3 architecture
/// schedules offline anyway.
///
/// # Panics
///
/// Panics if `relation` is HB or WCP (see [`detect_then_check`]).
pub fn replay_and_check(trace: &Trace, relation: Relation) -> Vec<CheckedRace> {
    assert!(
        matches!(relation, Relation::Dc | Relation::Wdc),
        "two-phase checking applies to the unsound relations (DC, WDC)"
    );
    // Phase 2: replay with graph construction (the costly variant the
    // production run avoided), then vindicate one dynamic race per site.
    let mut replay = AnalysisConfig::new(relation, OptLevel::Unopt)
        .with_graph()
        .detector()
        .expect("Unopt w/G exists for DC and WDC");
    run_detector(replay.as_mut(), trace);

    let mut seen_locs = std::collections::HashSet::new();
    let mut checked = Vec::new();
    for race in replay.report().races() {
        if !seen_locs.insert(race.loc) {
            continue; // one representative per statically distinct race
        }
        let prior = race
            .prior_threads
            .first()
            .and_then(|&u| find_prior_access(trace, race.event, race.var, u));
        let witness = prior.and_then(|p| match vindicate_pair(trace, p, race.event) {
            VindicationResult::Race(w) => Some(w),
            VindicationResult::Unknown => None,
        });
        checked.push(CheckedRace {
            event: race.event,
            prior,
            witness,
        });
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::paper;

    #[test]
    fn race_free_traces_skip_the_replay_phase() {
        for trace in [paper::figure4a(), paper::figure4b()] {
            let out = detect_then_check(&trace, Relation::Wdc);
            assert!(!out.replayed);
            assert!(out.checked.is_empty());
        }
    }

    #[test]
    fn figure1_and_2_verify_on_replay() {
        for (trace, relation) in [
            (paper::figure1(), Relation::Dc),
            (paper::figure2(), Relation::Dc),
            (paper::figure2(), Relation::Wdc),
        ] {
            let out = detect_then_check(&trace, relation);
            assert!(out.replayed);
            assert_eq!(out.verified(), 1);
            assert_eq!(out.unverified(), 0);
        }
    }

    #[test]
    fn figure3_false_wdc_race_stays_unverified() {
        let out = detect_then_check(&paper::figure3(), Relation::Wdc);
        assert!(out.replayed);
        assert_eq!(out.verified(), 0);
        assert_eq!(
            out.unverified(),
            1,
            "the false race is flagged, not blessed"
        );
    }

    #[test]
    #[should_panic(expected = "two-phase")]
    fn rejects_sound_relations() {
        let _ = detect_then_check(&paper::figure1(), Relation::Wcp);
    }

    #[test]
    fn workload_races_verify_per_site() {
        let w = smarttrack_trace::gen::RandomTraceSpec {
            threads: 3,
            events: 150,
            vars: 4,
            locks: 2,
            ..smarttrack_trace::gen::RandomTraceSpec::default()
        };
        let mut verified_any = false;
        for seed in 0..20 {
            let trace = w.generate(seed);
            let out = detect_then_check(&trace, Relation::Dc);
            if out.replayed {
                assert_eq!(
                    out.checked.len(),
                    out.detection.report.static_count().min(
                        // the replay's static sites can exceed phase 1's
                        // post-first-race counts; checked is per replay site
                        out.checked.len()
                    )
                );
                verified_any |= out.verified() > 0;
            }
        }
        assert!(verified_any, "some seed produces a verifiable race");
    }
}
