//! Constraint-graph witness construction in the spirit of `VindicateRace`
//! (Roemer et al. 2018).
//!
//! Given a reported race `(e1, e2)`, the algorithm:
//!
//! 1. computes the *support set* `S`: the events that must precede the pair —
//!    program-order prefixes of both racing events, closed under last-writer
//!    dependencies (every kept read keeps its writer) and fork/join
//!    structure;
//! 2. saturates ordering constraints over `S`: program order, last-writer
//!    edges, read–write exclusion (no other write may slip between a read and
//!    its writer), lock mutual exclusion (critical sections on one lock are
//!    totally ordered; open critical sections must come last), defaulting
//!    undetermined choices to original trace order;
//! 3. topologically sorts `S` (ties broken by original order), appends the
//!    racing pair adjacently, and validates the result with the independent
//!    predicted-trace checker.
//!
//! The result is sound — [`VindicationResult::Race`] always carries a
//! verified witness — and incomplete: contradictions or validation failures
//! yield [`VindicationResult::Unknown`], matching prior work's behavior of
//! never proving the absence of a predictable race.

use std::collections::{HashMap, HashSet, VecDeque};

use smarttrack_clock::ThreadId;
use smarttrack_detect::Report;
use smarttrack_trace::{EventId, LockId, Op, Trace, VarId};

use crate::witness::validate_witness;

/// A verified predicted trace exposing a race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Event ids of the original trace, in predicted-trace order; the final
    /// two are the racing pair.
    pub order: Vec<EventId>,
    /// The racing pair (original trace order).
    pub pair: (EventId, EventId),
}

impl Witness {
    /// Materializes the witness as a standalone trace.
    pub fn to_trace(&self, original: &Trace) -> Trace {
        Trace::from_events(self.order.iter().map(|&id| *original.event(id)))
            .expect("validated witnesses are well-formed")
    }
}

/// Outcome of vindication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VindicationResult {
    /// The race is a true predictable race; the witness has been validated
    /// against the §2.2 conditions.
    Race(Witness),
    /// No witness was constructed (the race may still be real; vindication
    /// is incomplete — and for false races like the paper's Figure 3 it
    /// correctly never succeeds).
    Unknown,
}

/// Finds the last access to `var` by `tid` before `before` that *conflicts*
/// with the access at `before` — the first event of a race reported at
/// `before` against thread `tid` (for a racing read, the partner is the
/// thread's last write; for a racing write, its last access).
pub fn find_prior_access(
    trace: &Trace,
    before: EventId,
    var: VarId,
    tid: ThreadId,
) -> Option<EventId> {
    let detecting = trace.event(before);
    (0..before.index())
        .rev()
        .map(|i| EventId::new(i as u32))
        .find(|&id| {
            let e = trace.event(id);
            e.tid == tid && e.op.access_var() == Some(var) && e.conflicts_with(detecting)
        })
}

/// Vindicates the first race of a detector report.
///
/// Returns `None` if the report is empty.
pub fn vindicate_first_race(trace: &Trace, report: &Report) -> Option<VindicationResult> {
    let race = report.races().first()?;
    let prior = race
        .prior_threads
        .first()
        .and_then(|&u| find_prior_access(trace, race.event, race.var, u))?;
    Some(vindicate_pair(trace, prior, race.event))
}

/// Attempts to vindicate the conflicting pair `(e1, e2)` (`e1` earlier in the
/// observed trace).
pub fn vindicate_pair(trace: &Trace, e1: EventId, e2: EventId) -> VindicationResult {
    Vindicator::new(trace, e1, e2)
        .run()
        .unwrap_or(VindicationResult::Unknown)
}

struct Vindicator<'a> {
    trace: &'a Trace,
    e1: EventId,
    e2: EventId,
    last_writers: HashMap<EventId, Option<EventId>>,
    vol_last_writers: HashMap<EventId, Option<EventId>>,
    /// Position of each event in its thread's projection, and the projections.
    projections: Vec<Vec<EventId>>,
    /// fork event of each thread, if any.
    forks: HashMap<ThreadId, EventId>,
    /// The support set.
    support: HashSet<EventId>,
    /// Ordering edges over `support ∪ {e1, e2}`.
    edges: HashMap<EventId, Vec<EventId>>,
    /// Per wait: the notifies that must precede it; per barrier exit: the
    /// enters of its round (see [`crate::witness::sync_prereqs`]). Kept
    /// events pull their prerequisites into the support and get edges from
    /// them, exactly like last-writer dependencies.
    sync_prereqs: HashMap<EventId, Vec<EventId>>,
}

impl<'a> Vindicator<'a> {
    fn new(trace: &'a Trace, e1: EventId, e2: EventId) -> Self {
        let projections = (0..trace.num_threads())
            .map(|t| trace.thread_projection(ThreadId::new(t as u32)))
            .collect();
        let mut forks = HashMap::new();
        let mut vol_last_writers = HashMap::new();
        let mut vol_last: HashMap<VarId, EventId> = HashMap::new();
        for (id, e) in trace.iter() {
            match e.op {
                Op::Fork(child) => {
                    forks.insert(child, id);
                }
                Op::VolatileRead(v) => {
                    vol_last_writers.insert(id, vol_last.get(&v).copied());
                }
                Op::VolatileWrite(v) => {
                    vol_last.insert(v, id);
                }
                _ => {}
            }
        }
        let (wait_prereqs, exit_prereqs) = crate::witness::sync_prereqs(trace);
        let mut sync_prereqs = wait_prereqs;
        sync_prereqs.extend(exit_prereqs);
        Vindicator {
            trace,
            e1,
            e2,
            last_writers: trace.last_writers(),
            vol_last_writers,
            projections,
            forks,
            support: HashSet::new(),
            edges: HashMap::new(),
            sync_prereqs,
        }
    }

    fn run(mut self) -> Option<VindicationResult> {
        if !self
            .trace
            .event(self.e1)
            .conflicts_with(self.trace.event(self.e2))
        {
            return Some(VindicationResult::Unknown);
        }
        self.build_support()?;
        self.base_edges();
        if !self.saturate() {
            return Some(VindicationResult::Unknown);
        }
        let order = self.linearize()?;
        match validate_witness(self.trace, &order, (self.e1, self.e2)) {
            Ok(()) => Some(VindicationResult::Race(Witness {
                order,
                pair: (self.e1, self.e2),
            })),
            Err(_) => Some(VindicationResult::Unknown),
        }
    }

    /// The required writer of a read (regular or volatile), excluding the
    /// racing events themselves.
    fn required_writer(&self, id: EventId) -> Option<EventId> {
        let w = match self.trace.event(id).op {
            Op::Read(_) => self.last_writers.get(&id).copied().flatten(),
            Op::VolatileRead(_) => self.vol_last_writers.get(&id).copied().flatten(),
            _ => None,
        }?;
        // A racing read may read-from the racing write by adjacency instead.
        if (id == self.e2 && w == self.e1) || (id == self.e1 && w == self.e2) {
            None
        } else {
            Some(w)
        }
    }

    /// Backward closure: PO prefixes of the racing pair, plus writers of
    /// every kept read, plus fork events of every started thread, plus
    /// full-thread prefixes before kept joins.
    fn build_support(&mut self) -> Option<()> {
        let mut work: VecDeque<EventId> = VecDeque::new();
        let push_prefix = |work: &mut VecDeque<EventId>,
                           projections: &Vec<Vec<EventId>>,
                           trace: &Trace,
                           upto: EventId,
                           inclusive: bool| {
            let tid = trace.event(upto).tid;
            for &pid in &projections[tid.index()] {
                if pid < upto || (inclusive && pid == upto) {
                    work.push_back(pid);
                } else {
                    break;
                }
            }
        };
        push_prefix(&mut work, &self.projections, self.trace, self.e1, false);
        push_prefix(&mut work, &self.projections, self.trace, self.e2, false);
        if let Some(w) = self.required_writer(self.e1) {
            work.push_back(w);
        }
        if let Some(w) = self.required_writer(self.e2) {
            work.push_back(w);
        }
        let mut guard = 0usize;
        while let Some(id) = work.pop_front() {
            guard += 1;
            if guard > 4 * self.trace.len() * (self.trace.len() + 4) {
                return None; // defensive bound; closure must terminate
            }
            if id == self.e1 || id == self.e2 {
                // The racing events must stay last: anything requiring them
                // earlier is a contradiction.
                return None;
            }
            if !self.support.insert(id) {
                continue;
            }
            push_prefix(&mut work, &self.projections, self.trace, id, false);
            if let Some(w) = self.required_writer(id) {
                work.push_back(w);
            }
            if let Some(pre) = self.sync_prereqs.get(&id) {
                // A kept wait needs its notifies; a kept barrier exit needs
                // its round's enters.
                work.extend(pre.iter().copied());
            }
            let e = self.trace.event(id);
            if let Some(&f) = self.forks.get(&e.tid) {
                work.push_back(f);
            }
            if let Op::Join(u) = e.op {
                // Joining requires the whole child to run.
                if let Some(&last) = self.projections[u.index()].last() {
                    push_prefix(&mut work, &self.projections, self.trace, last, true);
                }
            }
        }
        // The racing threads' forks must be included too.
        for racer in [self.e1, self.e2] {
            let tid = self.trace.event(racer).tid;
            if let Some(&f) = self.forks.get(&tid) {
                if !self.support.contains(&f) {
                    return None; // fork of a racing thread pulled in late:
                                 // handled by prefix closure normally; a miss
                                 // means the fork is the racer itself.
                }
            }
        }
        Some(())
    }

    fn add_edge(&mut self, from: EventId, to: EventId) {
        let list = self.edges.entry(from).or_default();
        if !list.contains(&to) {
            list.push(to);
        }
    }

    fn reaches(&self, from: EventId, to: EventId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// PO edges, last-writer edges, fork/join edges.
    fn base_edges(&mut self) {
        let members: Vec<EventId> = self.support.iter().copied().collect();
        for &id in &members {
            let e = self.trace.event(id);
            // PO successor within support.
            let proj = &self.projections[e.tid.index()];
            let pos = proj.iter().position(|&p| p == id).expect("member");
            if let Some(&next) = proj.get(pos + 1) {
                if self.support.contains(&next) {
                    self.add_edge(id, next);
                }
            }
            // Last-writer edge.
            if let Some(w) = self.required_writer(id) {
                self.add_edge(w, id);
            }
            // Fork edge to the thread's first event.
            if let Op::Fork(child) = e.op {
                if let Some(&first) = self.projections[child.index()].first() {
                    if self.support.contains(&first) {
                        self.add_edge(id, first);
                    }
                }
            }
            // Join edge from the child's last event.
            if let Op::Join(u) = e.op {
                if let Some(&last) = self.projections[u.index()].last() {
                    if self.support.contains(&last) {
                        self.add_edge(last, id);
                    }
                }
            }
            // Notify → wait and enter → barrier-exit edges.
            if let Some(pre) = self.sync_prereqs.get(&id) {
                for p in pre.clone() {
                    if self.support.contains(&p) {
                        self.add_edge(p, id);
                    }
                }
            }
        }
        // The racing events: PO predecessors point to them (they run last).
        for racer in [self.e1, self.e2] {
            let e = self.trace.event(racer);
            let proj = &self.projections[e.tid.index()];
            let pos = proj.iter().position(|&p| p == racer).expect("racer");
            if pos > 0 {
                let prev = proj[pos - 1];
                if self.support.contains(&prev) {
                    self.add_edge(prev, racer);
                }
            }
            if let Some(w) = self.required_writer(racer) {
                self.add_edge(w, racer);
            }
        }
    }

    /// Saturates exclusion and lock constraints. Returns `false` on
    /// contradiction.
    fn saturate(&mut self) -> bool {
        for _round in 0..(2 * self.trace.len() + 4) {
            let mut changed = false;
            if !self.exclusion_constraints(&mut changed) {
                return false;
            }
            if !self.lock_constraints(&mut changed) {
                return false;
            }
            // The racing pair must stay unordered and last.
            for racer in [self.e1, self.e2] {
                if let Some(next) = self.edges.get(&racer) {
                    if !next.is_empty() {
                        return false;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
        false // did not converge (defensive)
    }

    /// For each kept read `r` with writer `w` (or none), every other kept
    /// write `w2` of the same variable must not land between them:
    /// order `w2 → w` or `r → w2` (reads with no writer: `r → w2`).
    fn exclusion_constraints(&mut self, changed: &mut bool) -> bool {
        let mut reads: Vec<(EventId, Option<EventId>, VarId, bool)> = Vec::new();
        for &id in &self.support {
            match self.trace.event(id).op {
                Op::Read(x) => reads.push((id, self.required_writer(id), x, false)),
                Op::VolatileRead(v) => reads.push((id, self.required_writer(id), v, true)),
                _ => {}
            }
        }
        for racer in [self.e1, self.e2] {
            match self.trace.event(racer).op {
                Op::Read(x) => reads.push((racer, self.required_writer(racer), x, false)),
                Op::VolatileRead(v) => reads.push((racer, self.required_writer(racer), v, true)),
                _ => {}
            }
        }
        let all: Vec<EventId> = self
            .support
            .iter()
            .copied()
            .chain([self.e1, self.e2])
            .collect();
        for (r, w, x, volatile) in reads {
            for &w2 in &all {
                let op = self.trace.event(w2).op;
                let is_match = if volatile {
                    matches!(op, Op::VolatileWrite(v) if v == x)
                } else {
                    matches!(op, Op::Write(v) if v == x)
                };
                if !is_match || Some(w2) == w || w2 == r {
                    continue;
                }
                // Racing events are last; a racing write never precedes the
                // read unless it *is* the writer (excluded above). If the
                // read races, other writes must precede its writer or be the
                // other racer.
                let before_ok = w.map(|w0| self.reaches(w2, w0)).unwrap_or(false);
                let after_ok = self.reaches(r, w2) || w2 == self.e1 || w2 == self.e2;
                if before_ok || after_ok {
                    continue;
                }
                // Decide: default to original order.
                match w {
                    Some(w0) if w2 < w0 => {
                        if self.reaches(w0, w2) || self.reaches(r, w2) {
                            // Forced after the writer yet before the read:
                            // contradiction unless orderable after r.
                            if self.reaches(w2, r) {
                                return false;
                            }
                            self.add_edge(r, w2);
                        } else {
                            self.add_edge(w2, w0);
                        }
                    }
                    _ => {
                        if self.reaches(w2, r) {
                            return false;
                        }
                        self.add_edge(r, w2);
                    }
                }
                *changed = true;
            }
        }
        true
    }

    /// Write-involved critical sections on one lock must be totally ordered
    /// and non-overlapping; open critical sections (release outside the
    /// support) must come after every complete one. Two read-mode sections of
    /// the same lock never exclude each other and may overlap freely in the
    /// reordering, so no ordering edge is forced between them.
    fn lock_constraints(&mut self, changed: &mut bool) -> bool {
        // Collect critical sections (acquire, Option<release>, write-mode)
        // with events in the support or racing pair.
        let mut sections: HashMap<LockId, Vec<(EventId, Option<EventId>, bool)>> = HashMap::new();
        let in_set = |id: EventId, s: &Self| s.support.contains(&id) || id == s.e1 || id == s.e2;
        for t in 0..self.projections.len() {
            let mut open: Vec<(LockId, EventId, bool)> = Vec::new();
            for &id in &self.projections[t] {
                if !in_set(id, self) {
                    continue;
                }
                match self.trace.event(id).op {
                    Op::Acquire(m) | Op::AcqWrite(m) => open.push((m, id, true)),
                    Op::AcqRead(m) => open.push((m, id, false)),
                    Op::Release(m) => {
                        if let Some(pos) = open.iter().rposition(|&(l, _, _)| l == m) {
                            let (_, acq, write) = open.remove(pos);
                            sections.entry(m).or_default().push((acq, Some(id), write));
                        }
                    }
                    _ => {}
                }
            }
            for (m, acq, write) in open {
                sections.entry(m).or_default().push((acq, None, write));
            }
        }
        for (_, css) in sections {
            // Multiple concurrently-open read sections are legal; an open
            // write section excludes every other open section on the lock.
            let open_write = css.iter().filter(|(_, r, w)| r.is_none() && *w).count();
            let open_total = css.iter().filter(|(_, r, _)| r.is_none()).count();
            if open_write > 1 || (open_write == 1 && open_total > 1) {
                return false;
            }
            for i in 0..css.len() {
                for j in (i + 1)..css.len() {
                    let (a1, r1, w1) = css[i];
                    let (a2, r2, w2) = css[j];
                    if !w1 && !w2 {
                        continue;
                    }
                    if !self.order_sections(a1, r1, a2, r2, changed) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn order_sections(
        &mut self,
        a1: EventId,
        r1: Option<EventId>,
        a2: EventId,
        r2: Option<EventId>,
        changed: &mut bool,
    ) -> bool {
        let one_first_known = r1.map(|r| self.reaches(r, a2)).unwrap_or(false);
        let two_first_known = r2.map(|r| self.reaches(r, a1)).unwrap_or(false);
        if one_first_known || two_first_known {
            return true;
        }
        // Forced orders: if anything in CS1 reaches into CS2, CS1 must be
        // first (and vice versa); both directions forced = contradiction.
        let one_into_two = self.reaches(a1, a2) || r2.map(|r| self.reaches(a1, r)).unwrap_or(false);
        let two_into_one = self.reaches(a2, a1) || r1.map(|r| self.reaches(a2, r)).unwrap_or(false);
        match (one_into_two, two_into_one) {
            (true, true) => false,
            (true, false) => {
                let Some(r) = r1 else { return false };
                self.add_edge(r, a2);
                *changed = true;
                true
            }
            (false, true) => {
                let Some(r) = r2 else { return false };
                self.add_edge(r, a1);
                *changed = true;
                true
            }
            (false, false) => {
                // Default: original trace order; open sections go last.
                match (r1, r2) {
                    (None, Some(r)) => self.add_edge(r, a1),
                    (None, None) => return false,
                    (Some(r), _) if r2.is_none() || a1 < a2 => self.add_edge(r, a2),
                    (Some(_), Some(r)) => self.add_edge(r, a1),
                    (Some(_), None) => unreachable!("covered by the guard above"),
                }
                *changed = true;
                true
            }
        }
    }

    /// Kahn's algorithm with original-trace-order tie-breaking, racing pair
    /// appended last in a read-consistent order.
    fn linearize(&self) -> Option<Vec<EventId>> {
        let mut members: Vec<EventId> = self.support.iter().copied().collect();
        members.sort();
        let mut indegree: HashMap<EventId, usize> = members.iter().map(|&m| (m, 0)).collect();
        for (&from, tos) in &self.edges {
            for &to in tos {
                if from == self.e1 || from == self.e2 || to == self.e1 || to == self.e2 {
                    continue;
                }
                if self.support.contains(&from) && self.support.contains(&to) {
                    *indegree.get_mut(&to).expect("member") += 1;
                }
            }
        }
        let mut order = Vec::with_capacity(members.len() + 2);
        let mut ready: Vec<EventId> = members
            .iter()
            .copied()
            .filter(|m| indegree[m] == 0)
            .collect();
        ready.sort();
        while !ready.is_empty() {
            let next = ready.remove(0);
            order.push(next);
            if let Some(tos) = self.edges.get(&next) {
                for &to in tos {
                    if to == self.e1 || to == self.e2 || !self.support.contains(&to) {
                        continue;
                    }
                    let d = indegree.get_mut(&to).expect("member");
                    *d -= 1;
                    if *d == 0 {
                        let pos = ready.binary_search(&to).unwrap_err();
                        ready.insert(pos, to);
                    }
                }
            }
        }
        if order.len() != members.len() {
            return None; // cycle
        }
        // Racing pair order: keep a racing read after the racing write only
        // when it reads-from it.
        let (first, second) = self.racing_order();
        order.push(first);
        order.push(second);
        Some(order)
    }

    fn racing_order(&self) -> (EventId, EventId) {
        let ev1 = self.trace.event(self.e1);
        let ev2 = self.trace.event(self.e2);
        let lw2 = self.last_writers.get(&self.e2).copied().flatten();
        if ev2.op.is_read() {
            if lw2 == Some(self.e1) {
                (self.e1, self.e2)
            } else {
                (self.e2, self.e1)
            }
        } else {
            // Racing read first (keeps its original last writer), or
            // write–write in original order.
            let _ = ev1;
            (self.e1, self.e2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{OracleResult, PredictableRaceOracle};
    use smarttrack_detect::{run_detector, Detector, UnoptWdc};
    use smarttrack_trace::paper;

    fn first_pair(trace: &Trace) -> Option<(EventId, EventId)> {
        let mut det = UnoptWdc::new();
        run_detector(&mut det, trace);
        let race = det.report().races().first()?.clone();
        let prior = find_prior_access(trace, race.event, race.var, race.prior_threads[0])?;
        Some((prior, race.event))
    }

    #[test]
    fn figure1_vindicates_with_validated_witness() {
        let tr = paper::figure1();
        let (e1, e2) = first_pair(&tr).expect("WDC race");
        match vindicate_pair(&tr, e1, e2) {
            VindicationResult::Race(w) => {
                assert_eq!(w.pair, (e1, e2));
                // Witness includes T2's whole critical section (last-writer
                // closure is not needed; lock closure keeps it legal).
                assert!(w.order.len() >= 2);
                let _ = w.to_trace(&tr);
            }
            VindicationResult::Unknown => panic!("figure 1 must vindicate"),
        }
    }

    #[test]
    fn figure2_vindicates() {
        let tr = paper::figure2();
        let (e1, e2) = first_pair(&tr).expect("WDC race");
        assert!(matches!(
            vindicate_pair(&tr, e1, e2),
            VindicationResult::Race(_)
        ));
    }

    #[test]
    fn figure3_false_race_does_not_vindicate() {
        let tr = paper::figure3();
        let (e1, e2) = first_pair(&tr).expect("WDC reports a (false) race");
        assert_eq!(vindicate_pair(&tr, e1, e2), VindicationResult::Unknown);
    }

    #[test]
    fn read_sections_may_overlap_in_the_witness() {
        // T0 writes x inside a read-mode section of m; T1 reads x inside its
        // own read-mode section. Read sections never exclude each other, so
        // vindication must not force an ordering edge between them and the
        // pair is a vindicated race. The exclusive lowering of the same
        // shape serializes the sections and must not vindicate.
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (m, x) = (LockId::new(0), VarId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t0, Op::AcqRead(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqRead(m)).unwrap();
        b.push(t1, Op::Read(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let tr = b.finish();
        let (e1, e2) = (EventId::new(1), EventId::new(4));
        match vindicate_pair(&tr, e1, e2) {
            VindicationResult::Race(w) => {
                validate_witness(&tr, &w.order, (e1, e2)).expect("witness validates");
            }
            VindicationResult::Unknown => panic!("read/read overlap must vindicate"),
        }

        // Same shape, write-mode sections: mutual exclusion is real.
        let mut b = TraceBuilder::new();
        b.push(t0, Op::AcqWrite(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqWrite(m)).unwrap();
        b.push(t1, Op::Read(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let tr = b.finish();
        assert_eq!(
            vindicate_pair(&tr, EventId::new(1), EventId::new(4)),
            VindicationResult::Unknown
        );
    }

    #[test]
    fn non_conflicting_pair_is_rejected() {
        let tr = paper::figure1();
        assert_eq!(
            vindicate_pair(&tr, EventId::new(0), EventId::new(4)),
            VindicationResult::Unknown
        );
    }

    #[test]
    fn vindication_agrees_with_oracle_on_random_small_traces() {
        use smarttrack_trace::gen::RandomTraceSpec;
        let spec = RandomTraceSpec::tiny();
        let mut vindicated = 0;
        let mut checked = 0;
        for seed in 0..400 {
            let tr = spec.generate(seed);
            let Some((e1, e2)) = first_pair(&tr) else {
                continue;
            };
            checked += 1;
            match vindicate_pair(&tr, e1, e2) {
                VindicationResult::Race(w) => {
                    vindicated += 1;
                    // Soundness: the witness validates (already checked
                    // internally) and the oracle agrees the pair races.
                    validate_witness(&tr, &w.order, (e1, e2)).expect("witness validates");
                    let oracle = PredictableRaceOracle::new(&tr);
                    assert!(
                        matches!(
                            oracle.is_predictable_race(e1, e2),
                            OracleResult::Race(..) | OracleResult::Unknown
                        ),
                        "vindicated a pair the oracle refutes (seed {seed})"
                    );
                }
                VindicationResult::Unknown => {}
            }
        }
        assert!(checked > 20, "enough racy traces generated ({checked})");
        assert!(
            vindicated * 2 >= checked,
            "vindication should succeed on most true races ({vindicated}/{checked})"
        );
    }
}

#[cfg(test)]
mod open_cs_tests {
    use super::*;
    use crate::witness::validate_witness;
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};

    /// Racing accesses inside critical sections on *different* locks: the
    /// witness must keep both critical sections open at the end.
    #[test]
    fn race_with_open_critical_sections_vindicates() {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let x = VarId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t0, Op::Acquire(LockId::new(0))).unwrap();
        let e1 = b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(LockId::new(0))).unwrap();
        b.push(t1, Op::Acquire(LockId::new(1))).unwrap();
        let e2 = b.push(t1, Op::Write(x)).unwrap();
        b.push(t1, Op::Release(LockId::new(1))).unwrap();
        let tr = b.finish();
        match vindicate_pair(&tr, e1, e2) {
            VindicationResult::Race(w) => {
                validate_witness(&tr, &w.order, (e1, e2)).expect("valid");
                // The witness contains both acquires but neither release.
                let ops: Vec<_> = w.order.iter().map(|&id| tr.event(id).op).collect();
                assert!(ops
                    .iter()
                    .any(|o| matches!(o, Op::Acquire(m) if m.index() == 0)));
                assert!(ops
                    .iter()
                    .any(|o| matches!(o, Op::Acquire(m) if m.index() == 1)));
                assert!(!ops.iter().any(|o| matches!(o, Op::Release(_))));
            }
            VindicationResult::Unknown => panic!("open-CS race must vindicate"),
        }
    }

    /// Racing accesses guarded by the *same* lock are impossible to make
    /// adjacent; vindication must refuse (and the analyses would never
    /// report such a pair in the first place).
    #[test]
    fn same_lock_pair_never_vindicates() {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let x = VarId::new(0);
        let m = LockId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t0, Op::Acquire(m)).unwrap();
        let e1 = b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        let e2 = b.push(t1, Op::Write(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let tr = b.finish();
        assert_eq!(vindicate_pair(&tr, e1, e2), VindicationResult::Unknown);
    }
}
