//! Independent validation of predicted traces (the §2.2 conditions).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use smarttrack_trace::{EventId, Op, Trace, TraceBuilder, VarId};

/// The notifies on each condvar that precede each wait in the original
/// trace (the wait's wake-up causes), and the enter events of each barrier
/// exit's round. Shared precomputation for the §2.2-style condvar/barrier
/// conditions.
///
/// Per wait, only each thread's **latest** preceding notify is recorded:
/// a thread's notifies execute in program order, and the prefix property
/// every consumer enforces (witness per-thread prefixes; the oracle's
/// per-thread positions) makes "the latest is placed" imply every earlier
/// one is too — so the list is bounded by the thread count instead of
/// growing with notify traffic (the same PO-dominance the DC graph
/// recorder's `last_notify` uses).
pub(crate) fn sync_prereqs(
    trace: &Trace,
) -> (
    HashMap<EventId, Vec<EventId>>,
    HashMap<EventId, Vec<EventId>>,
) {
    // Per condvar: the latest notify per notifying thread.
    let mut notifies_by_cond: HashMap<u32, Vec<(u32, EventId)>> = HashMap::new();
    let mut wait_prereqs: HashMap<EventId, Vec<EventId>> = HashMap::new();
    // Per barrier: enters of the currently gathering round, and (once
    // sealed) of the draining round with its remaining-exit count.
    let mut gather: HashMap<u32, Vec<EventId>> = HashMap::new();
    let mut draining: HashMap<u32, (Vec<EventId>, usize)> = HashMap::new();
    let mut exit_prereqs: HashMap<EventId, Vec<EventId>> = HashMap::new();
    for (id, e) in trace.iter() {
        match e.op {
            Op::Notify(c) | Op::NotifyAll(c) => {
                let latest = notifies_by_cond.entry(c.raw()).or_default();
                match latest.iter_mut().find(|(u, _)| *u == e.tid.raw()) {
                    Some(entry) => entry.1 = id,
                    None => latest.push((e.tid.raw(), id)),
                }
            }
            Op::Wait(c, _) => {
                wait_prereqs.insert(
                    id,
                    notifies_by_cond
                        .get(&c.raw())
                        .map(|latest| latest.iter().map(|&(_, n)| n).collect())
                        .unwrap_or_default(),
                );
            }
            Op::BarrierEnter(b) => {
                gather.entry(b.raw()).or_default().push(id);
            }
            Op::BarrierExit(b) => {
                let (open, remaining) = draining.entry(b.raw()).or_insert_with(|| {
                    let enters = gather.remove(&b.raw()).unwrap_or_default();
                    let parties = enters.len();
                    (enters, parties)
                });
                exit_prereqs.insert(id, open.clone());
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    draining.remove(&b.raw());
                }
            }
            _ => {}
        }
    }
    (wait_prereqs, exit_prereqs)
}

/// Why a candidate witness is not a valid predicted trace exposing a race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessError {
    /// An event id appears more than once.
    DuplicateEvent(EventId),
    /// The per-thread projection is not a prefix of the original's (program
    /// order violated or events skipped within a thread).
    NotAThreadPrefix(EventId),
    /// A read observes a different last writer than in the original trace.
    LastWriterChanged {
        /// The read.
        read: EventId,
        /// Its last writer in the original trace (`None` = no writer).
        original: Option<EventId>,
        /// Its last writer in the candidate (`None` = no writer).
        witness: Option<EventId>,
    },
    /// The candidate violates locking discipline.
    IllFormedLocking(String),
    /// The final two events are not conflicting, or not the claimed pair.
    BadRacingPair,
    /// A `join` appears although the joined thread has remaining events.
    JoinBeforeTermination(EventId),
    /// A `wait` appears before a notify that preceded it in the original
    /// trace (its wake-up cause would be missing).
    NotifyMissing {
        /// The wait.
        wait: EventId,
        /// The missing original notify.
        notify: EventId,
    },
    /// A barrier exit appears before some enter of its original round (the
    /// rendezvous would not have released yet).
    BarrierRoundBroken {
        /// The exit.
        exit: EventId,
        /// The missing enter of its round.
        enter: EventId,
    },
    /// Two acquisitions of one lock appear in reversed order relative to
    /// the original trace. Only the *sync-preserving* checker
    /// ([`validate_sync_preserving_witness`]) reports this: the base
    /// well-formedness conditions and the reversal-tolerant checker
    /// ([`validate_reversal_witness`]) deliberately allow it.
    LockOrderReversed {
        /// The acquisition that came first in the original trace.
        earlier: EventId,
        /// The trace-later acquisition scheduled before it in the witness.
        later: EventId,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::DuplicateEvent(e) => write!(f, "event {e} appears twice"),
            WitnessError::NotAThreadPrefix(e) => {
                write!(f, "event {e} breaks its thread's prefix order")
            }
            WitnessError::LastWriterChanged {
                read,
                original,
                witness,
            } => write!(
                f,
                "read {read} has last writer {witness:?}, originally {original:?}"
            ),
            WitnessError::IllFormedLocking(msg) => write!(f, "locking violated: {msg}"),
            WitnessError::BadRacingPair => write!(f, "final events are not the racing pair"),
            WitnessError::JoinBeforeTermination(e) => {
                write!(f, "join {e} before the joined thread terminated")
            }
            WitnessError::NotifyMissing { wait, notify } => {
                write!(f, "wait {wait} before its original notify {notify}")
            }
            WitnessError::BarrierRoundBroken { exit, enter } => {
                write!(f, "barrier exit {exit} before enter {enter} of its round")
            }
            WitnessError::LockOrderReversed { earlier, later } => {
                write!(
                    f,
                    "same-lock acquisitions reversed: {later} scheduled before {earlier}"
                )
            }
        }
    }
}

impl Error for WitnessError {}

/// Validates that `order` (event ids of `trace`) is a predicted trace of
/// `trace` whose final two events are the conflicting pair `racing`
/// (in either order).
///
/// The checks implement §2.2:
/// 1. every event is present in the original trace, at most once;
/// 2. the events of each thread form a *prefix* of that thread's original
///    projection (which implies program order is preserved);
/// 3. every read (including volatile reads) has the same last writer — or
///    lack of one — as in the original trace, **except the racing pair
///    itself**: the correct-reordering definitions the WCP/DC soundness
///    theorems are stated for (Kini et al. 2017, Roemer et al. 2018) exempt
///    the two racing events, whose values are irrelevant to the race;
/// 4. the witness is well formed (locking rules, including wait-holds-monitor
///    and barrier party discipline; joins only after the joined thread's full
///    prefix), every wait keeps the notifies that preceded it, and every
///    barrier exit keeps its round's enters;
/// 5. the last two events are `racing.0` and `racing.1`, adjacent.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn validate_witness(
    trace: &Trace,
    order: &[EventId],
    racing: (EventId, EventId),
) -> Result<(), WitnessError> {
    // 1 & 2: per-thread prefix check.
    let mut seen = vec![false; trace.len()];
    let mut thread_pos: HashMap<_, usize> = HashMap::new();
    let projections: HashMap<_, Vec<EventId>> = (0..trace.num_threads())
        .map(|t| {
            let tid = smarttrack_trace::ThreadId::new(t as u32);
            (tid, trace.thread_projection(tid))
        })
        .collect();
    for &id in order {
        if seen[id.index()] {
            return Err(WitnessError::DuplicateEvent(id));
        }
        seen[id.index()] = true;
        let e = trace.event(id);
        let pos = thread_pos.entry(e.tid).or_insert(0);
        let proj = &projections[&e.tid];
        if proj.get(*pos) != Some(&id) {
            return Err(WitnessError::NotAThreadPrefix(id));
        }
        *pos += 1;
    }

    // 3: last-writer preservation (regular and volatile variables have
    // separate namespaces).
    let original_lw = trace.last_writers();
    let mut lw_now: HashMap<VarId, EventId> = HashMap::new();
    let mut vol_lw_orig: HashMap<EventId, Option<EventId>> = HashMap::new();
    {
        let mut last: HashMap<VarId, EventId> = HashMap::new();
        for (id, e) in trace.iter() {
            match e.op {
                Op::VolatileRead(v) => {
                    vol_lw_orig.insert(id, last.get(&v).copied());
                }
                Op::VolatileWrite(v) => {
                    last.insert(v, id);
                }
                _ => {}
            }
        }
    }
    let mut vol_lw_now: HashMap<VarId, EventId> = HashMap::new();
    for &id in order {
        let e = trace.event(id);
        if id == racing.0 || id == racing.1 {
            // Racing events are exempt from read consistency (see above),
            // but their writes still update the last-writer state.
            match e.op {
                Op::Write(x) => {
                    lw_now.insert(x, id);
                }
                Op::VolatileWrite(v) => {
                    vol_lw_now.insert(v, id);
                }
                _ => {}
            }
            continue;
        }
        match e.op {
            Op::Read(x) => {
                let orig = original_lw.get(&id).copied().unwrap_or(None);
                let now = lw_now.get(&x).copied();
                if orig != now {
                    return Err(WitnessError::LastWriterChanged {
                        read: id,
                        original: orig,
                        witness: now,
                    });
                }
            }
            Op::Write(x) => {
                lw_now.insert(x, id);
            }
            Op::VolatileRead(v) => {
                let orig = vol_lw_orig.get(&id).copied().unwrap_or(None);
                let now = vol_lw_now.get(&v).copied();
                if orig != now {
                    return Err(WitnessError::LastWriterChanged {
                        read: id,
                        original: orig,
                        witness: now,
                    });
                }
            }
            Op::VolatileWrite(v) => {
                vol_lw_now.insert(v, id);
            }
            _ => {}
        }
    }

    // 3b: condvar/barrier ordering preservation — a wait keeps every
    // notify that preceded it (its wake-up causes), and a barrier exit
    // keeps every enter of its original round (the rendezvous must have
    // released). Extra notifies moved before a wait only add ordering and
    // are allowed, mirroring the clock analyses' conservative treatment.
    let (wait_prereqs, exit_prereqs) = sync_prereqs(trace);
    {
        let mut placed = vec![false; trace.len()];
        for &id in order {
            match trace.event(id).op {
                Op::Wait(..) => {
                    if let Some(missing) = wait_prereqs
                        .get(&id)
                        .and_then(|pre| pre.iter().find(|n| !placed[n.index()]))
                    {
                        return Err(WitnessError::NotifyMissing {
                            wait: id,
                            notify: *missing,
                        });
                    }
                }
                Op::BarrierExit(_) => {
                    if let Some(missing) = exit_prereqs
                        .get(&id)
                        .and_then(|pre| pre.iter().find(|n| !placed[n.index()]))
                    {
                        return Err(WitnessError::BarrierRoundBroken {
                            exit: id,
                            enter: *missing,
                        });
                    }
                }
                _ => {}
            }
            placed[id.index()] = true;
        }
    }

    // 4: well-formedness (locks + fork/join) via the trace builder, plus
    // join-after-termination.
    let mut b = TraceBuilder::new();
    for &id in order {
        let e = trace.event(id);
        if let Op::Join(u) = e.op {
            let consumed = thread_pos.get(&u).copied().unwrap_or(0);
            if consumed < projections[&u].len() {
                return Err(WitnessError::JoinBeforeTermination(id));
            }
        }
        b.push_event(*e)
            .map_err(|err| WitnessError::IllFormedLocking(err.to_string()))?;
    }

    // 5: the racing pair is last and adjacent.
    let n = order.len();
    if n < 2 {
        return Err(WitnessError::BadRacingPair);
    }
    let tail = (order[n - 2], order[n - 1]);
    let pair_ok = tail == racing || tail == (racing.1, racing.0);
    if !pair_ok || !trace.event(racing.0).conflicts_with(trace.event(racing.1)) {
        return Err(WitnessError::BadRacingPair);
    }
    Ok(())
}

/// The **reversal-tolerant** witness checker — the normative validator for
/// OSR reports (`smarttrack-detect`'s `osr_pair_witness` orders pass it by
/// construction).
///
/// It enforces every condition of [`validate_witness`] — per-thread prefix
/// property, last-writer preservation (racing pair exempt), well-formed
/// locking (mutual exclusion via replay), wait/notify and barrier-round
/// prerequisites, join-after-termination, racing pair last and adjacent —
/// but, like the §2.2 base conditions themselves, it does **not** require
/// same-lock critical sections to keep their observed acquisition order:
/// a reversed section pair is fine as long as replay stays well formed.
///
/// Strictness ordering: every witness accepted by
/// [`validate_sync_preserving_witness`] is accepted here; the converse
/// fails exactly on reversal-carrying witnesses.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn validate_reversal_witness(
    trace: &Trace,
    order: &[EventId],
    racing: (EventId, EventId),
) -> Result<(), WitnessError> {
    validate_witness(trace, order, racing)
}

/// The **sync-preserving** witness checker: [`validate_witness`] plus the
/// requirement that acquisitions of each lock appear in their original
/// trace order (read-mode acquisitions included — a sync-preserving
/// reordering commutes no two acquisitions of one lock).
///
/// SyncP witnesses (`syncp_pair_ideal` orders, which are trace-ordered)
/// pass; an OSR witness that reverses a section pair fails with
/// [`WitnessError::LockOrderReversed`] here while passing
/// [`validate_reversal_witness`] — that strictness gap *is* the OSR/SyncP
/// semantic difference, pinned by test.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn validate_sync_preserving_witness(
    trace: &Trace,
    order: &[EventId],
    racing: (EventId, EventId),
) -> Result<(), WitnessError> {
    validate_witness(trace, order, racing)?;
    // Per lock: the trace-latest acquisition placed so far. Any later
    // placement of a trace-earlier acquisition is an inversion.
    let mut latest_placed: HashMap<u32, EventId> = HashMap::new();
    for &id in order {
        match trace.event(id).op {
            Op::Acquire(l) | Op::AcqWrite(l) | Op::AcqRead(l) => {
                let entry = latest_placed.entry(l.raw()).or_insert(id);
                if entry.index() > id.index() {
                    return Err(WitnessError::LockOrderReversed {
                        earlier: id,
                        later: *entry,
                    });
                }
                *entry = id;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::paper;

    #[test]
    fn figure1_witness_validates() {
        let tr = paper::figure1();
        // Figure 1(b): T2's critical section, then rd(x) by T1, then wr(x).
        let order: Vec<EventId> = [4, 5, 6, 0, 7].map(EventId::new).to_vec();
        validate_witness(&tr, &order, (EventId::new(0), EventId::new(7)))
            .expect("paper figure 1(b) is a valid predicted trace");
    }

    #[test]
    fn rejects_non_prefix_projection() {
        let tr = paper::figure1();
        // Skipping T2's acq(m) (event 4) but keeping rd(z) (event 5) breaks
        // the prefix property.
        let order: Vec<EventId> = [5, 0, 7].map(EventId::new).to_vec();
        assert!(matches!(
            validate_witness(&tr, &order, (EventId::new(0), EventId::new(7))),
            Err(WitnessError::NotAThreadPrefix(_))
        ));
    }

    #[test]
    fn rejects_changed_last_writer_of_non_racing_read() {
        use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId};
        let mut b = TraceBuilder::new();
        let w0 = b.push(ThreadId::new(0), Op::Write(VarId::new(1))).unwrap();
        let r = b.push(ThreadId::new(1), Op::Read(VarId::new(1))).unwrap();
        let a = b.push(ThreadId::new(1), Op::Write(VarId::new(0))).unwrap();
        let c = b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
        let tr = b.finish();
        // Placing r before its original writer w0 changes its last writer
        // (w0 → None); r is not part of the racing pair (a, c), so this must
        // be rejected.
        let order = vec![r, w0, a, c];
        assert!(matches!(
            validate_witness(&tr, &order, (a, c)),
            Err(WitnessError::LastWriterChanged { .. })
        ));
    }

    #[test]
    fn racing_read_is_exempt_from_last_writer_check() {
        use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId};
        let mut b = TraceBuilder::new();
        let w0 = b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
        let w1 = b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
        let r = b.push(ThreadId::new(1), Op::Read(VarId::new(0))).unwrap();
        let _ = w1;
        let tr = b.finish();
        // In tr, r reads from w1; in the witness it sits next to w0's
        // racing write having seen only w0 — allowed for the racing pair
        // (Kini et al.'s correct-reordering definition).
        let order = vec![w0, r];
        validate_witness(&tr, &order, (w0, r)).expect("racing read is exempt");
    }

    #[test]
    fn rejects_lock_violations() {
        let tr = paper::figure1();
        // Both threads inside their m-critical sections at once.
        let order: Vec<EventId> = [0, 1, 4].map(EventId::new).to_vec();
        let r = validate_witness(&tr, &order, (EventId::new(0), EventId::new(7)));
        assert!(matches!(r, Err(WitnessError::IllFormedLocking(_))), "{r:?}");
    }

    #[test]
    fn rejects_non_adjacent_pair() {
        let tr = paper::figure1();
        let order: Vec<EventId> = [0, 4, 5, 6, 7].map(EventId::new).to_vec();
        assert_eq!(
            validate_witness(&tr, &order, (EventId::new(0), EventId::new(7))),
            Err(WitnessError::BadRacingPair)
        );
    }

    /// The canonical OSR reversal trace (two same-lock sections; the race
    /// needs them scheduled in reverse).
    fn reversal_trace() -> Trace {
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let (l, x, y) = (LockId::new(0), VarId::new(0), VarId::new(1));
        let mut b = TraceBuilder::new();
        b.push(t1, Op::Acquire(l)).unwrap(); // 0
        b.push(t1, Op::Write(y)).unwrap(); // 1
        b.push(t1, Op::Write(x)).unwrap(); // 2: e1
        b.push(t1, Op::Release(l)).unwrap(); // 3
        b.push(t2, Op::Acquire(l)).unwrap(); // 4
        b.push(t2, Op::Write(y)).unwrap(); // 5
        b.push(t2, Op::Release(l)).unwrap(); // 6
        b.push(t2, Op::Write(x)).unwrap(); // 7: e2
        b.finish()
    }

    #[test]
    fn strictness_ordering_is_pinned() {
        // SyncP-style witness (figure 1(b), trace-ordered): passes BOTH
        // checkers — sync-preserving is the stricter one.
        let tr = paper::figure1();
        let order: Vec<EventId> = [4, 5, 6, 0, 7].map(EventId::new).to_vec();
        let pair = (EventId::new(0), EventId::new(7));
        validate_sync_preserving_witness(&tr, &order, pair).expect("strict accepts SyncP witness");
        validate_reversal_witness(&tr, &order, pair).expect("relaxed accepts SyncP witness");

        // OSR reversal witness: t2's section scheduled before t1's. The
        // relaxed checker accepts it; the strict one pinpoints the
        // reversed acquisition pair.
        let tr = reversal_trace();
        let order: Vec<EventId> = [4, 5, 6, 0, 1, 2, 7].map(EventId::new).to_vec();
        let pair = (EventId::new(2), EventId::new(7));
        validate_reversal_witness(&tr, &order, pair).expect("relaxed accepts the reversal");
        assert_eq!(
            validate_sync_preserving_witness(&tr, &order, pair),
            Err(WitnessError::LockOrderReversed {
                earlier: EventId::new(0),
                later: EventId::new(4),
            })
        );
    }

    #[test]
    fn reversal_checker_still_rejects_mutual_exclusion_violations() {
        // Reversal tolerance is not anything-goes: overlapping sections of
        // one lock stay rejected by both checkers.
        let tr = reversal_trace();
        let order: Vec<EventId> = [0, 1, 4].map(EventId::new).to_vec();
        let pair = (EventId::new(2), EventId::new(7));
        assert!(matches!(
            validate_reversal_witness(&tr, &order, pair),
            Err(WitnessError::IllFormedLocking(_))
        ));
    }

    #[test]
    fn rejects_duplicates() {
        let tr = paper::figure1();
        let order: Vec<EventId> = [0, 0, 7].map(EventId::new).to_vec();
        assert_eq!(
            validate_witness(&tr, &order, (EventId::new(0), EventId::new(7))),
            Err(WitnessError::DuplicateEvent(EventId::new(0)))
        );
    }
}
