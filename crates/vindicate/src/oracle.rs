//! An exhaustive predictable-race oracle for small traces.
//!
//! Explores every correct reordering (per-thread prefixes, last-writer
//! preservation, locking discipline, fork/join feasibility) searching for a
//! state where two conflicting events can execute back to back. This is the
//! ground truth the vindication algorithm and the soundness claims (e.g.
//! "every WCP-race is a predictable race", §2.4) are tested against; it is
//! exponential and intended for traces of a few dozen events.

use std::collections::{HashMap, HashSet};

use smarttrack_clock::ThreadId;
use smarttrack_trace::{EventId, LockId, Op, Trace, VarId};

/// Outcome of an oracle query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleResult {
    /// A predictable race exists; a witness pair of conflicting events that
    /// can be made consecutive.
    Race(EventId, EventId),
    /// Exhaustively proven: no predictable race (for the queried pair or any
    /// pair).
    NoRace,
    /// The state budget was exhausted before the search completed.
    Unknown,
}

/// Outcome of a predictable-deadlock query
/// ([`PredictableRaceOracle::any_predictable_deadlock`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeadlockResult {
    /// A reachable state cyclically blocks these threads (in wait order:
    /// each waits on a lock held by the next, wrapping around).
    Deadlock(Vec<ThreadId>),
    /// Exhaustively proven: no correct reordering deadlocks.
    NoDeadlock,
    /// The state budget was exhausted before the search completed.
    Unknown,
}

/// An [`OracleResult`] together with how many states the search visited.
///
/// The state count is the cost metric the windowed analysis reports: it is
/// what blows up as windows grow, mirroring the SMT-solving cost that forces
/// the approaches in the paper's §6 to bound their windows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchOutcome {
    /// What the bounded search concluded.
    pub result: OracleResult,
    /// Number of distinct interleaving states visited.
    pub states_explored: usize,
}

/// Exhaustive search over correct reorderings of one trace.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::paper;
/// use smarttrack_vindicate::{OracleResult, PredictableRaceOracle};
///
/// let racy = paper::figure1();
/// let oracle = PredictableRaceOracle::new(&racy);
/// assert!(matches!(oracle.any_predictable_race(), OracleResult::Race(..)));
///
/// let race_free = paper::figure3();
/// let oracle = PredictableRaceOracle::new(&race_free);
/// assert_eq!(oracle.any_predictable_race(), OracleResult::NoRace);
/// ```
pub struct PredictableRaceOracle<'a> {
    trace: &'a Trace,
    projections: Vec<Vec<EventId>>,
    last_writers: HashMap<EventId, Option<EventId>>,
    vol_last_writers: HashMap<EventId, Option<EventId>>,
    /// Position of each event within its thread's projection (indexed by
    /// event index), for O(1) executed-yet checks.
    proj_pos: Vec<usize>,
    /// Per wait event: the notifies that must have executed first; per
    /// barrier exit: the enters of its round (see
    /// [`crate::witness::sync_prereqs`] — a correct reordering preserves a
    /// wait's wake-up causes and a rendezvous' release condition).
    sync_prereqs: HashMap<EventId, Vec<EventId>>,
    /// Maximum explored states before giving up.
    state_budget: usize,
}

/// Search state: how many events of each thread's projection have executed,
/// plus the current last writer per (volatile) variable. Lock state is
/// derivable from positions but cached for speed.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    positions: Vec<usize>,
    last_writer: Vec<Option<EventId>>,
    vol_last_writer: Vec<Option<EventId>>,
}

impl<'a> PredictableRaceOracle<'a> {
    /// Prepares the oracle (default budget: 500 000 states).
    pub fn new(trace: &'a Trace) -> Self {
        let projections: Vec<Vec<EventId>> = (0..trace.num_threads())
            .map(|t| trace.thread_projection(ThreadId::new(t as u32)))
            .collect();
        let mut vol_last_writers = HashMap::new();
        {
            let mut last: HashMap<VarId, EventId> = HashMap::new();
            for (id, e) in trace.iter() {
                match e.op {
                    Op::VolatileRead(v) => {
                        vol_last_writers.insert(id, last.get(&v).copied());
                    }
                    Op::VolatileWrite(v) => {
                        last.insert(v, id);
                    }
                    _ => {}
                }
            }
        }
        let mut proj_pos = vec![0usize; trace.len()];
        for proj in &projections {
            for (pos, &id) in proj.iter().enumerate() {
                proj_pos[id.index()] = pos;
            }
        }
        let (wait_prereqs, exit_prereqs) = crate::witness::sync_prereqs(trace);
        let mut sync_prereqs = wait_prereqs;
        sync_prereqs.extend(exit_prereqs);
        PredictableRaceOracle {
            trace,
            projections,
            last_writers: trace.last_writers(),
            vol_last_writers,
            proj_pos,
            sync_prereqs,
            state_budget: 500_000,
        }
    }

    /// Whether `id` has already executed in `state` (its thread consumed
    /// past its projection position).
    #[inline]
    fn executed(&self, state: &State, id: EventId) -> bool {
        let tid = self.trace.event(id).tid;
        state.positions[tid.index()] > self.proj_pos[id.index()]
    }

    /// Overrides the state budget.
    pub fn with_budget(mut self, states: usize) -> Self {
        self.state_budget = states;
        self
    }

    /// Searches for *any* predictable race.
    pub fn any_predictable_race(&self) -> OracleResult {
        self.search(None, 0, self.trace.len()).result
    }

    /// Decides whether the specific conflicting pair is a predictable race.
    pub fn is_predictable_race(&self, e1: EventId, e2: EventId) -> OracleResult {
        self.search(Some((e1, e2)), 0, self.trace.len()).result
    }

    /// Searches for a predictable race exposable by reordering only the
    /// events in the window `lo..hi` (indices into the observed trace).
    ///
    /// The prefix `..lo` is fixed in observed order, exactly as the
    /// bounded-window approaches of the paper's §6 fix everything outside
    /// the analyzed window; events at `hi..` never execute. Both racing
    /// events must lie inside the window, so a race whose accesses are more
    /// than `hi - lo` events apart is invisible at this window size.
    pub fn race_in_window(&self, lo: usize, hi: usize) -> SearchOutcome {
        self.search(None, lo, hi.min(self.trace.len()))
    }

    /// Decides whether the conflicting pair is a predictable race using only
    /// reorderings of the window `lo..hi` (see [`race_in_window`]).
    ///
    /// [`race_in_window`]: PredictableRaceOracle::race_in_window
    pub fn pair_in_window(&self, e1: EventId, e2: EventId, lo: usize, hi: usize) -> SearchOutcome {
        self.search(Some((e1, e2)), lo, hi.min(self.trace.len()))
    }

    /// Searches for a *predictable deadlock*: a correct reordering reaching
    /// a state where a set of threads waits cyclically on each other's held
    /// locks.
    ///
    /// This is the second disjunct of WCP's soundness guarantee ("an
    /// execution with a WCP-race has a predictable race or a predictable
    /// deadlock", paper §2.4 footnote 4): with nested critical sections, a
    /// WCP-race may correspond to a deadlock instead of a race, and this
    /// query provides the ground truth for that case.
    pub fn any_predictable_deadlock(&self) -> DeadlockResult {
        let nthreads = self.projections.len();
        let mut visited: HashSet<State> = HashSet::new();
        let mut stack = vec![self.prefix_state(0)];
        let mut explored = 0usize;
        while let Some(state) = stack.pop() {
            if !visited.insert(state.clone()) {
                continue;
            }
            explored += 1;
            if explored > self.state_budget {
                return DeadlockResult::Unknown;
            }
            if let Some(cycle) = self.lock_cycle(&state) {
                return DeadlockResult::Deadlock(cycle);
            }
            for t in 0..nthreads {
                if let Some(&id) = self.projections[t].get(state.positions[t]) {
                    if self.enabled(&state, id) {
                        stack.push(self.step(&state, t, id));
                    }
                }
            }
        }
        DeadlockResult::NoDeadlock
    }

    /// A cycle in the lock wait-for graph of `state`'s next events, if any:
    /// each returned thread's next event acquires a lock held by the next
    /// thread in the cycle. Such threads are permanently stuck — holders
    /// can only release once unblocked, and every one of them is blocked.
    ///
    /// An exclusive acquire waits on any holder of the lock; a read-mode
    /// acquire waits only on a write-mode holder (readers admit readers).
    fn lock_cycle(&self, state: &State) -> Option<Vec<ThreadId>> {
        let nthreads = self.projections.len();
        // waits_on[t] = thread holding the lock t's next event acquires.
        let waits_on: Vec<Option<usize>> = (0..nthreads)
            .map(|t| {
                let &id = self.projections[t].get(state.positions[t])?;
                let (m, exclusive) = match self.trace.event(id).op {
                    Op::Acquire(m) | Op::AcqWrite(m) => (m, true),
                    Op::AcqRead(m) => (m, false),
                    _ => return None,
                };
                if !self.fork_ready(state, ThreadId::new(t as u32), state.positions[t]) {
                    return None;
                }
                if exclusive {
                    self.holder(state, m)
                } else {
                    self.write_holder(state, m)
                }
            })
            .collect();
        // Follow wait edges from each thread; a repeat within the walk is a
        // cycle (graph is functional: at most one out-edge per node).
        for start in 0..nthreads {
            let mut path = Vec::new();
            let mut cur = start;
            while let Some(next) = waits_on[cur] {
                if let Some(pos) = path.iter().position(|&p| p == cur) {
                    return Some(
                        path[pos..]
                            .iter()
                            .map(|&p| ThreadId::new(p as u32))
                            .collect(),
                    );
                }
                path.push(cur);
                cur = next;
            }
        }
        None
    }

    /// The (lock, write-mode) holds of thread `t`'s consumed prefix:
    /// exclusive and write-mode acquires push write-mode holds, read-mode
    /// acquires push read-mode holds, releases pop the innermost hold of
    /// their lock regardless of mode.
    fn holds(&self, state: &State, t: usize) -> Vec<(LockId, bool)> {
        let mut held: Vec<(LockId, bool)> = Vec::new();
        for &id in &self.projections[t][..state.positions[t]] {
            match self.trace.event(id).op {
                Op::Acquire(l) | Op::AcqWrite(l) => held.push((l, true)),
                Op::AcqRead(l) => held.push((l, false)),
                Op::Release(l) => {
                    if let Some(pos) = held.iter().rposition(|&(h, _)| h == l) {
                        held.remove(pos);
                    }
                }
                _ => {}
            }
        }
        held
    }

    /// The thread currently holding lock `m` in any mode, if any.
    fn holder(&self, state: &State, m: LockId) -> Option<usize> {
        (0..self.projections.len()).find(|&t| self.holds(state, t).iter().any(|&(l, _)| l == m))
    }

    /// The thread currently holding lock `m` in *write* mode, if any.
    fn write_holder(&self, state: &State, m: LockId) -> Option<usize> {
        (0..self.projections.len())
            .find(|&t| self.holds(state, t).iter().any(|&(l, w)| l == m && w))
    }

    /// The state reached by executing every event before `lo` in observed
    /// order: per-thread positions plus last-writer bookkeeping.
    fn prefix_state(&self, lo: usize) -> State {
        let nthreads = self.projections.len();
        let mut state = State {
            positions: vec![0; nthreads],
            last_writer: vec![None; self.trace.num_vars()],
            vol_last_writer: vec![None; self.trace.num_volatiles()],
        };
        for (id, e) in self.trace.iter().take(lo) {
            state.positions[e.tid.index()] += 1;
            match e.op {
                Op::Write(x) => state.last_writer[x.index()] = Some(id),
                Op::VolatileWrite(v) => state.vol_last_writer[v.index()] = Some(id),
                _ => {}
            }
        }
        state
    }

    fn search(&self, target: Option<(EventId, EventId)>, lo: usize, hi: usize) -> SearchOutcome {
        let nthreads = self.projections.len();
        let init = self.prefix_state(lo);
        let mut visited: HashSet<State> = HashSet::new();
        let mut stack = vec![init];
        let mut explored = 0usize;
        while let Some(state) = stack.pop() {
            if !visited.insert(state.clone()) {
                continue;
            }
            explored += 1;
            if explored > self.state_budget {
                return SearchOutcome {
                    result: OracleResult::Unknown,
                    states_explored: explored,
                };
            }
            // Which events are enabled right now? Events at or past the
            // window end never execute.
            let enabled: Vec<(usize, EventId)> = (0..nthreads)
                .filter_map(|t| {
                    let id = *self.projections[t].get(state.positions[t])?;
                    (id.index() < hi && self.enabled(&state, id)).then_some((t, id))
                })
                .collect();
            // Race condition: two *next* events of different threads that
            // conflict. Following the correct-reordering definition the
            // WCP/DC soundness theorems are stated for (Kini et al. 2017,
            // Roemer et al. 2018), the racing pair itself is exempt from
            // read consistency — a race is about the accesses being
            // simultaneously enabled position-wise, not about the values the
            // racing read would see. Both events are plain accesses (a
            // conflict requires accesses), so nothing else can block them.
            for ti in 0..nthreads {
                let Some(&a) = self.projections[ti].get(state.positions[ti]) else {
                    continue;
                };
                if a.index() >= hi
                    || !self.fork_ready(&state, ThreadId::new(ti as u32), state.positions[ti])
                {
                    continue;
                }
                for u in (ti + 1)..nthreads {
                    let Some(&b) = self.projections[u].get(state.positions[u]) else {
                        continue;
                    };
                    if b.index() >= hi
                        || !self.fork_ready(&state, ThreadId::new(u as u32), state.positions[u])
                        || !self.trace.event(a).conflicts_with(self.trace.event(b))
                    {
                        continue;
                    }
                    let found = match target {
                        None => Some((a.min(b), a.max(b))),
                        Some((x, y)) if (a, b) == (x, y) || (a, b) == (y, x) => Some((x, y)),
                        _ => None,
                    };
                    if let Some((first, second)) = found {
                        return SearchOutcome {
                            result: OracleResult::Race(first, second),
                            states_explored: explored,
                        };
                    }
                }
            }
            for (t, id) in enabled {
                stack.push(self.step(&state, t, id));
            }
        }
        SearchOutcome {
            result: OracleResult::NoRace,
            states_explored: explored,
        }
    }

    /// Is the next event of its thread executable in this state?
    fn enabled(&self, state: &State, id: EventId) -> bool {
        let e = self.trace.event(id);
        let op_ok = match e.op {
            Op::Read(x) => {
                self.last_writers.get(&id).copied().unwrap_or(None) == state.last_writer[x.index()]
            }
            Op::Write(_) => true,
            Op::Acquire(m) | Op::AcqWrite(m) => self.lock_free(state, m),
            // A read section may overlap other read sections of the same
            // rwlock but never a write-mode section.
            Op::AcqRead(m) => self.write_holder(state, m).is_none(),
            // A failed trylock takes nothing and orders nothing: it is
            // executable whenever its thread is (dropping the constraint
            // that the lock be held mirrors the detectors, which give
            // TryAcqFail no ordering in any direction).
            Op::TryAcqFail(_) => true,
            Op::Release(_) => true,
            Op::Fork(u) => {
                // The child must not have started (always true: the child's
                // first event is only enabled after the fork executes).
                let _ = u;
                true
            }
            Op::Join(u) => state.positions[u.index()] == self.projections[u.index()].len(),
            Op::VolatileRead(v) => {
                self.vol_last_writers.get(&id).copied().unwrap_or(None)
                    == state.vol_last_writer[v.index()]
            }
            Op::VolatileWrite(_) => true,
            // A wait needs its wake-up causes (the notifies that preceded
            // it in the observed trace); a barrier exit needs every enter
            // of its observed round — mirroring the clock analyses, where
            // wait joins the notify clock and exit joins the rendezvous
            // clock. The wait's monitor is necessarily held by its own
            // thread already (its acquire is PO-earlier) and wait is an
            // atomic release-and-reacquire, so no lock condition applies.
            // Notifies and enters never block: notify is publish-only, and
            // an enter is the *arrival* at the rendezvous (the blocking is
            // modeled at the exit).
            Op::Wait(..) | Op::BarrierExit(_) => self
                .sync_prereqs
                .get(&id)
                .is_none_or(|pre| pre.iter().all(|&p| self.executed(state, p))),
            Op::Notify(_) | Op::NotifyAll(_) | Op::BarrierEnter(_) => true,
        };
        // Additionally: a forked thread's first event requires its fork to
        // have executed.
        op_ok && self.fork_ready(state, e.tid, state.positions[e.tid.index()])
    }

    /// If this is the thread's first event and the thread is forked in the
    /// trace, the fork must have executed.
    fn fork_ready(&self, state: &State, tid: ThreadId, pos: usize) -> bool {
        if pos > 0 {
            return true;
        }
        for (forker, proj) in self.projections.iter().enumerate() {
            for (i, &fid) in proj.iter().enumerate() {
                if let Op::Fork(child) = self.trace.event(fid).op {
                    if child == tid {
                        return state.positions[forker] > i;
                    }
                }
            }
        }
        true // not forked: a root thread
    }

    fn lock_free(&self, state: &State, m: LockId) -> bool {
        // A lock is exclusively acquirable iff no thread's consumed prefix
        // has an unmatched acquire of it in *any* mode.
        self.holder(state, m).is_none()
    }

    fn step(&self, state: &State, t: usize, id: EventId) -> State {
        let mut next = state.clone();
        next.positions[t] += 1;
        match self.trace.event(id).op {
            Op::Write(x) => next.last_writer[x.index()] = Some(id),
            Op::VolatileWrite(v) => next.vol_last_writer[v.index()] = Some(id),
            _ => {}
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::paper;

    #[test]
    fn figure1_has_a_predictable_race_on_x() {
        let tr = paper::figure1();
        let oracle = PredictableRaceOracle::new(&tr);
        // rd(x) by T1 is event 0; wr(x) by T2 is event 7.
        assert!(matches!(
            oracle.is_predictable_race(EventId::new(0), EventId::new(7)),
            OracleResult::Race(..)
        ));
    }

    #[test]
    fn figure2_has_a_predictable_race() {
        let tr = paper::figure2();
        let oracle = PredictableRaceOracle::new(&tr);
        assert!(matches!(
            oracle.is_predictable_race(EventId::new(0), EventId::new(11)),
            OracleResult::Race(..)
        ));
    }

    #[test]
    fn figure3_has_no_predictable_race() {
        let tr = paper::figure3();
        let oracle = PredictableRaceOracle::new(&tr);
        assert_eq!(oracle.any_predictable_race(), OracleResult::NoRace);
    }

    #[test]
    fn figure4_traces_have_no_predictable_race() {
        for (name, tr) in [
            ("4a", paper::figure4a()),
            ("4b", paper::figure4b()),
            ("4c", paper::figure4c()),
            ("4d", paper::figure4d()),
        ] {
            let oracle = PredictableRaceOracle::new(&tr);
            assert_eq!(
                oracle.any_predictable_race(),
                OracleResult::NoRace,
                "figure {name}"
            );
        }
    }

    #[test]
    fn fork_join_prevents_false_oracle_races() {
        use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId};
        let mut b = TraceBuilder::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        b.push(t0, Op::Write(VarId::new(0))).unwrap();
        b.push(t0, Op::Fork(t1)).unwrap();
        b.push(t1, Op::Write(VarId::new(0))).unwrap();
        b.push(t0, Op::Join(t1)).unwrap();
        b.push(t0, Op::Write(VarId::new(0))).unwrap();
        let oracle_trace = b.finish();
        let oracle = PredictableRaceOracle::new(&oracle_trace);
        assert_eq!(oracle.any_predictable_race(), OracleResult::NoRace);
    }

    #[test]
    fn overlapping_read_sections_expose_a_race_a_mutex_would_hide() {
        // T0 writes x inside a *read-mode* section; T1 reads x inside its
        // own read section. Read sections may overlap, so the accesses can
        // be made consecutive — a predictable race. (With exclusive
        // acquires instead, the sections serialize and rule (a) orders the
        // accesses: no race.)
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (m, x) = (LockId::new(0), VarId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t0, Op::AcqRead(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqRead(m)).unwrap();
        b.push(t1, Op::Read(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let tr = b.finish();
        let oracle = PredictableRaceOracle::new(&tr);
        assert!(matches!(
            oracle.any_predictable_race(),
            OracleResult::Race(..)
        ));

        // The exclusive-acquire lowering of the same shape has no race.
        let mut b = TraceBuilder::new();
        b.push(t0, Op::Acquire(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        b.push(t1, Op::Read(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let tr = b.finish();
        let oracle = PredictableRaceOracle::new(&tr);
        assert_eq!(oracle.any_predictable_race(), OracleResult::NoRace);
    }

    #[test]
    fn read_sections_cannot_overlap_a_write_section() {
        // Writer publishes x under a write-mode hold; reader reads under a
        // read-mode hold. The sections cannot overlap, so rule-(a)-style
        // ordering is real: no predictable race.
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (m, x) = (LockId::new(0), VarId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t0, Op::AcqWrite(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqRead(m)).unwrap();
        b.push(t1, Op::Read(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let tr = b.finish();
        let oracle = PredictableRaceOracle::new(&tr);
        assert_eq!(oracle.any_predictable_race(), OracleResult::NoRace);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let tr = paper::figure3();
        let oracle = PredictableRaceOracle::new(&tr).with_budget(3);
        assert_eq!(oracle.any_predictable_race(), OracleResult::Unknown);
    }

    #[test]
    fn inverted_lock_nesting_is_a_predictable_deadlock() {
        // The observed execution serializes the two inversely nested
        // sections, but the reordering where each thread takes its outer
        // lock first deadlocks.
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder};
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (m, n) = (LockId::new(0), LockId::new(1));
        let mut b = TraceBuilder::new();
        b.push(t0, Op::Acquire(m)).unwrap();
        b.push(t0, Op::Acquire(n)).unwrap();
        b.push(t0, Op::Release(n)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::Acquire(n)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        b.push(t1, Op::Release(n)).unwrap();
        let oracle_trace = b.finish();
        let oracle = PredictableRaceOracle::new(&oracle_trace);
        match oracle.any_predictable_deadlock() {
            DeadlockResult::Deadlock(threads) => {
                let mut sorted: Vec<_> = threads.iter().map(|t| t.index()).collect();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1]);
            }
            other => panic!("expected a deadlock, got {other:?}"),
        }
    }

    #[test]
    fn consistent_nesting_order_never_deadlocks() {
        // Both threads take m before n: no inversion, no deadlock.
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder};
        let (m, n) = (LockId::new(0), LockId::new(1));
        let mut b = TraceBuilder::new();
        for t in [ThreadId::new(0), ThreadId::new(1)] {
            b.push(t, Op::Acquire(m)).unwrap();
            b.push(t, Op::Acquire(n)).unwrap();
            b.push(t, Op::Release(n)).unwrap();
            b.push(t, Op::Release(m)).unwrap();
        }
        let oracle_trace = b.finish();
        let oracle = PredictableRaceOracle::new(&oracle_trace);
        assert_eq!(
            oracle.any_predictable_deadlock(),
            DeadlockResult::NoDeadlock
        );
    }

    #[test]
    fn paper_figures_have_no_predictable_deadlock() {
        for (name, tr) in paper::all_figures() {
            let oracle = PredictableRaceOracle::new(&tr);
            assert_eq!(
                oracle.any_predictable_deadlock(),
                DeadlockResult::NoDeadlock,
                "{name}"
            );
        }
    }

    #[test]
    fn three_way_lock_cycle_is_found() {
        // t0: m then n; t1: n then p; t2: p then m — a 3-cycle reachable by
        // letting each thread take its first lock.
        use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder};
        let locks = [LockId::new(0), LockId::new(1), LockId::new(2)];
        let mut b = TraceBuilder::new();
        for t in 0..3usize {
            let tid = ThreadId::new(t as u32);
            let outer = locks[t];
            let inner = locks[(t + 1) % 3];
            b.push(tid, Op::Acquire(outer)).unwrap();
            b.push(tid, Op::Acquire(inner)).unwrap();
            b.push(tid, Op::Release(inner)).unwrap();
            b.push(tid, Op::Release(outer)).unwrap();
        }
        let oracle_trace = b.finish();
        let oracle = PredictableRaceOracle::new(&oracle_trace);
        match oracle.any_predictable_deadlock() {
            DeadlockResult::Deadlock(threads) => assert_eq!(threads.len(), 3),
            other => panic!("expected a 3-cycle deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_search_respects_the_budget() {
        let tr = paper::figure2();
        let oracle = PredictableRaceOracle::new(&tr).with_budget(2);
        assert_eq!(oracle.any_predictable_deadlock(), DeadlockResult::Unknown);
    }
}
