//! Bounded-window predictive race detection — the approach the paper's §6
//! argues against.
//!
//! SMT-based predictive analyses "cannot scale to full executions and
//! instead analyze bounded windows of execution, typically missing races
//! that are more than a few thousand events apart" (§2.4, §6), while "prior
//! work shows that predictable races can be millions of events apart". This
//! module makes that trade-off concrete and measurable: it slides a window
//! over the observed trace and, inside each window, decides *exactly*
//! (via the exhaustive [`PredictableRaceOracle`]) whether any conflicting
//! pair is a predictable race, with everything before the window frozen in
//! observed order and everything after it excluded.
//!
//! Within a window the checker is complete, so a miss is attributable to
//! the window bound itself — the precise failure mode partial-order
//! analyses (WCP/DC/WDC) do not have. The per-query state count stands in
//! for SMT solving cost; it grows combinatorially with window size, which
//! is why these approaches must bound their windows in the first place.
//!
//! Since the `Engine`/`Session` redesign, the windowed analysis is itself a
//! streaming [`Detector`]: [`WindowedDetector`] buffers the stream and runs
//! each window the moment the stream has filled it, so windowed races
//! surface incrementally (and can ride in any fan-out
//! [`Session`] lane next to the partial-order
//! analyses). [`WindowedRaceAnalysis`] is the whole-trace convenience
//! driver on top.
//!
//! # Examples
//!
//! A race whose accesses are 200 events apart is invisible at window 64 but
//! found by an unbounded window:
//!
//! ```
//! use smarttrack_vindicate::{WindowedConfig, WindowedRaceAnalysis};
//! use smarttrack_workloads::distant_race_trace;
//!
//! let (trace, a, b) = distant_race_trace(200);
//! let narrow = WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(64)).analyze();
//! assert!(narrow.races().is_empty());
//!
//! let wide = WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(trace.len())).analyze();
//! assert_eq!(wide.races(), &[(a, b)]);
//! ```

use std::collections::{HashMap, HashSet};

use smarttrack_detect::{AccessKind, Detector, OptLevel, RaceReport, Relation, Report, Session};
use smarttrack_trace::{Event, EventId, Trace, TraceBuilder, VarId};

use crate::oracle::{OracleResult, PredictableRaceOracle};

/// Window geometry and per-query budget for [`WindowedRaceAnalysis`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowedConfig {
    /// Number of consecutive trace events each window covers.
    pub window: usize,
    /// How far the window advances each step. A stride smaller than the
    /// window overlaps adjacent windows so that pairs straddling a boundary
    /// are still co-visible in some window (the usual SMT-window setup).
    pub stride: usize,
    /// State budget for each per-pair oracle query; queries exceeding it
    /// count as [`OracleResult::Unknown`].
    pub budget_per_query: usize,
}

impl WindowedConfig {
    /// A window of `window` events with 50% overlap and the default
    /// per-query budget.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0, "window must cover at least one event");
        WindowedConfig {
            window,
            stride: (window / 2).max(1),
            budget_per_query: 200_000,
        }
    }
}

impl Default for WindowedConfig {
    /// The literature's typical setting: windows of a few thousand events.
    fn default() -> Self {
        WindowedConfig::with_window(1_000)
    }
}

/// What a windowed run found and what it cost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowedReport {
    races: Vec<(EventId, EventId)>,
    windows: usize,
    queries: usize,
    unknown_queries: usize,
    states_explored: usize,
}

impl WindowedReport {
    /// Conflicting pairs proven to be predictable races, deduplicated,
    /// ordered by first discovery.
    pub fn races(&self) -> &[(EventId, EventId)] {
        &self.races
    }

    /// Number of windows analyzed.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Number of per-pair oracle queries issued (candidate conflicting
    /// pairs co-visible in some window).
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Queries that exhausted their state budget (neither proven nor
    /// refuted).
    pub fn unknown_queries(&self) -> usize {
        self.unknown_queries
    }

    /// Total interleaving states visited across all queries — the run's
    /// cost, standing in for SMT solving time.
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }
}

/// Streaming bounded-window analysis as a [`Detector`] lane.
///
/// Events are buffered as they arrive; every time the stream has filled the
/// next window, that window is analyzed immediately (its races appearing in
/// [`report`](Detector::report) and through any session
/// [`RaceSink`](smarttrack_detect::RaceSink)), and
/// [`finish_stream`](Detector::finish_stream) flushes the trailing partial
/// windows. Fed the same stream, it analyzes exactly the window sequence
/// the whole-trace [`WindowedRaceAnalysis`] does.
///
/// Each candidate pair (two conflicting accesses co-visible in a window) is
/// queried at most once with a conclusive verdict: a pair that came back
/// `Unknown` (budget) is retried if a later window also contains it, while
/// a refuted pair is settled. Refutation in the *first* co-visible window
/// is final because later windows only shrink the search space: they freeze
/// a longer prefix, and their larger horizon adds no reachable races for
/// this pair — every event needed (transitively) to enable the pair has a
/// smaller trace index than the pair itself (a read's observed last writer
/// precedes it, a lock's release — mutex or either rwlock mode — precedes
/// its re-acquisition, a wait's wake-up notifies precede it, a barrier
/// exit's round of enters precedes it, a child thread finishes before its
/// join, and a failed trylock needs nothing at all), so events past the
/// first window's horizon can always be dropped from a hypothetical
/// witness. A window cut that lands *inside* a synchronization region is
/// likewise safe, because the oracle derives lock/monitor state from each
/// thread's full consumed prefix: a read-mode hold opened before the cut
/// still blocks write acquires (while admitting readers) after it, a
/// notify frozen in the prefix still satisfies an in-window wait, and an
/// open barrier round's frozen enters still count toward its in-window
/// exits.
pub struct WindowedDetector {
    config: WindowedConfig,
    buffer: TraceBuilder,
    state: WindowState,
    /// Start of the next window to analyze.
    lo: usize,
    /// End (`hi`) of the last analyzed window; `usize::MAX` when none ran.
    covered_to: usize,
}

/// The window-running half of [`WindowedDetector`], split from the event
/// buffer so windows can run against the buffer's zero-copy
/// [`TraceBuilder::with_snapshot`] view while mutating counters and dedup
/// sets.
#[derive(Default)]
struct WindowState {
    report: Report,
    windowed: WindowedReport,
    refuted: HashSet<(EventId, EventId)>,
    raced: HashSet<(EventId, EventId)>,
}

impl WindowState {
    /// Analyzes the window `lo..hi` of `trace` with `oracle` (built over
    /// the same trace).
    fn run_window(
        &mut self,
        trace: &Trace,
        oracle: &PredictableRaceOracle<'_>,
        lo: usize,
        hi: usize,
    ) {
        self.windowed.windows += 1;
        if lo >= hi {
            return;
        }
        for (a, b) in candidate_pairs(trace, lo, hi) {
            if self.refuted.contains(&(a, b)) || self.raced.contains(&(a, b)) {
                continue;
            }
            let outcome = oracle.pair_in_window(a, b, lo, hi);
            self.windowed.queries += 1;
            self.windowed.states_explored += outcome.states_explored;
            match outcome.result {
                OracleResult::Race(x, y) => {
                    self.raced.insert((a, b));
                    self.windowed.races.push((x, y));
                    self.report.push(pair_race_report(trace, x, y));
                }
                OracleResult::NoRace => {
                    self.refuted.insert((a, b));
                }
                OracleResult::Unknown => {
                    self.windowed.unknown_queries += 1;
                }
            }
        }
    }
}

impl WindowedDetector {
    /// A streaming windowed analysis with the given geometry and budget.
    ///
    /// # Panics
    ///
    /// Panics if `config.window` or `config.stride` is zero.
    pub fn new(config: WindowedConfig) -> Self {
        assert!(config.window > 0, "window must cover at least one event");
        assert!(config.stride > 0, "stride must advance the window");
        WindowedDetector {
            config,
            buffer: TraceBuilder::new(),
            state: WindowState::default(),
            lo: 0,
            covered_to: usize::MAX,
        }
    }

    /// The windowed-analysis view of the results so far: window/query/state
    /// counters in addition to the races in [`report`](Detector::report).
    pub fn windowed_report(&self) -> &WindowedReport {
        &self.state.windowed
    }

    /// Consumes the detector, returning the windowed report.
    pub fn into_report(self) -> WindowedReport {
        self.state.windowed
    }
}

impl Detector for WindowedDetector {
    fn name(&self) -> &'static str {
        "Windowed-Oracle"
    }

    /// Reported as WDC: oracle-proven predictable races are a subset of the
    /// races the (complete within its window) WDC analysis reports.
    fn relation(&self) -> Relation {
        Relation::Wdc
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Unopt
    }

    fn process(&mut self, _id: EventId, event: &Event) {
        self.buffer
            .push_event(*event)
            .expect("WindowedDetector requires a well-formed stream");
        // At most one window can have filled per event (`stride > 0`), so
        // the oracle rebuild below happens once per completed window, not
        // once per event. The buffer is lent out zero-copy.
        if self.buffer.len() >= self.lo + self.config.window {
            let Self {
                config,
                buffer,
                state,
                lo,
                covered_to,
            } = self;
            let hi = *lo + config.window;
            buffer.with_snapshot(|trace| {
                let oracle = PredictableRaceOracle::new(trace).with_budget(config.budget_per_query);
                state.run_window(trace, &oracle, *lo, hi);
            });
            *covered_to = hi;
            *lo += config.stride;
        }
    }

    fn finish_stream(&mut self) {
        let n = self.buffer.len();
        if n == 0 || self.covered_to == n {
            return;
        }
        // The buffer no longer grows: one oracle serves every remaining
        // (partial-tail) window.
        let Self {
            config,
            buffer,
            state,
            lo,
            covered_to,
        } = self;
        buffer.with_snapshot(|trace| {
            let oracle = PredictableRaceOracle::new(trace).with_budget(config.budget_per_query);
            loop {
                let hi = (*lo + config.window).min(n);
                state.run_window(trace, &oracle, (*lo).min(hi), hi);
                *covered_to = hi;
                if hi == n {
                    break;
                }
                *lo += config.stride;
            }
        });
    }

    fn report(&self) -> &Report {
        &self.state.report
    }

    fn footprint_bytes(&self) -> usize {
        self.buffer.len() * std::mem::size_of::<Event>()
            + (self.state.refuted.len() + self.state.raced.len())
                * std::mem::size_of::<(EventId, EventId)>()
            + self.state.windowed.races.capacity() * std::mem::size_of::<(EventId, EventId)>()
            + self.state.report.footprint_bytes()
    }
}

/// Conflicting cross-thread access pairs with both events in `lo..hi`,
/// in (first, second) event order.
fn candidate_pairs(trace: &Trace, lo: usize, hi: usize) -> Vec<(EventId, EventId)> {
    let mut by_var: HashMap<VarId, Vec<EventId>> = HashMap::new();
    let mut pairs = Vec::new();
    for (id, e) in trace.iter().skip(lo).take(hi - lo) {
        let Some(var) = e.op.access_var() else {
            continue;
        };
        let prior = by_var.entry(var).or_default();
        for &p in prior.iter() {
            if trace.event(p).conflicts_with(e) {
                pairs.push((p, id));
            }
        }
        prior.push(id);
    }
    pairs
}

/// Shapes an oracle-proven racing pair as a [`RaceReport`] at the second
/// access, with the first access' thread as the prior.
fn pair_race_report(trace: &Trace, first: EventId, second: EventId) -> RaceReport {
    let (e1, e2) = (trace.event(first), trace.event(second));
    RaceReport {
        event: second,
        loc: e2.loc,
        tid: e2.tid,
        var: e2.op.access_var().expect("racing events are accesses"),
        kind: if e2.op.is_write() {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        prior_threads: vec![e1.tid],
    }
}

/// Sliding-window predictable-race detection over one recorded trace: the
/// whole-trace driver over [`WindowedDetector`], routed through the same
/// [`Session`] ingestion path as every other analysis driver.
///
/// See the [module documentation](self) for what this models and the
/// example there for typical use.
pub struct WindowedRaceAnalysis<'a> {
    trace: &'a Trace,
    config: WindowedConfig,
}

impl<'a> WindowedRaceAnalysis<'a> {
    /// Prepares a windowed run over `trace`.
    pub fn new(trace: &'a Trace, config: WindowedConfig) -> Self {
        WindowedRaceAnalysis { trace, config }
    }

    /// Runs every window and returns what was found and what it cost.
    pub fn analyze(&self) -> WindowedReport {
        let mut detector = WindowedDetector::new(self.config.clone());
        let mut session = Session::from_detector(&mut detector);
        session
            .feed_trace(self.trace)
            .expect("a validated Trace re-admits cleanly");
        session.finish();
        detector.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::{paper, LockId, Op, ThreadId, TraceBuilder};

    #[test]
    fn whole_trace_window_matches_unbounded_oracle_on_figure1() {
        let trace = paper::figure1();
        let config = WindowedConfig::with_window(trace.len());
        let report = WindowedRaceAnalysis::new(&trace, config).analyze();
        assert_eq!(report.races().len(), 1);
        assert_eq!(report.windows(), 1);
    }

    #[test]
    fn figure3_has_no_race_at_any_window_size() {
        let trace = paper::figure3();
        for window in [2, 4, 8, trace.len()] {
            let config = WindowedConfig::with_window(window);
            let report = WindowedRaceAnalysis::new(&trace, config).analyze();
            assert!(
                report.races().is_empty(),
                "window {window} reported {:?}",
                report.races()
            );
        }
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let trace = TraceBuilder::new().finish();
        let report = WindowedRaceAnalysis::new(&trace, WindowedConfig::default()).analyze();
        assert_eq!(report, WindowedReport::default());
    }

    #[test]
    fn frozen_prefix_blocks_reordering_before_the_window() {
        // T0: wr(x) acq(m) rel(m) | T1: acq(m) rel(m) wr(x)
        // Unbounded, the two writes race (nothing orders them). If the
        // window starts *after* T0's critical section, T0's wr(x) is frozen
        // in the prefix and can no longer meet T1's write.
        let mut b = TraceBuilder::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let x = smarttrack_trace::VarId::new(0);
        let m = LockId::new(0);
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Acquire(m)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        b.push(t1, Op::Write(x)).unwrap();
        let trace = b.finish();

        let oracle = PredictableRaceOracle::new(&trace);
        assert!(matches!(
            oracle.race_in_window(0, trace.len()).result,
            OracleResult::Race(..)
        ));
        // Window 3..6 freezes T0 entirely: its write happened "in the past".
        assert_eq!(
            oracle.race_in_window(3, trace.len()).result,
            OracleResult::NoRace
        );
    }

    #[test]
    fn overlapping_strides_cover_boundary_straddling_pairs() {
        // Conflicting accesses at indices 3 and 5: windows [0,4) and [4,8)
        // each miss the pair, but the overlapping window [2,6) sees both.
        let mut b = TraceBuilder::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let x = smarttrack_trace::VarId::new(0);
        let y = smarttrack_trace::VarId::new(1);
        b.push(t0, Op::Write(y)).unwrap();
        b.push(t0, Op::Read(y)).unwrap();
        b.push(t0, Op::Write(y)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t1, Op::Read(y)).unwrap(); // conflicts with index 2's write too
        b.push(t1, Op::Write(x)).unwrap();
        b.push(t1, Op::Read(y)).unwrap();
        b.push(t1, Op::Read(y)).unwrap();
        let trace = b.finish();

        let config = WindowedConfig {
            window: 4,
            stride: 2,
            budget_per_query: 100_000,
        };
        let report = WindowedRaceAnalysis::new(&trace, config).analyze();
        assert!(report.races().contains(&(EventId::new(3), EventId::new(5))));
    }

    #[test]
    fn unknown_queries_are_counted_and_retried() {
        let trace = paper::figure1();
        let config = WindowedConfig {
            window: trace.len(),
            stride: 1,
            budget_per_query: 1,
        };
        let report = WindowedRaceAnalysis::new(&trace, config).analyze();
        assert!(report.races().is_empty());
        assert!(report.unknown_queries() > 0);
        assert_eq!(report.unknown_queries(), report.queries());
    }

    #[test]
    fn with_window_sets_fifty_percent_overlap() {
        let config = WindowedConfig::with_window(1000);
        assert_eq!(config.stride, 500);
        assert_eq!(WindowedConfig::with_window(1).stride, 1);
    }

    #[test]
    #[should_panic(expected = "window must cover at least one event")]
    fn zero_window_panics() {
        let _ = WindowedConfig::with_window(0);
    }

    #[test]
    fn streaming_detector_finds_races_before_end_of_stream() {
        // Two adjacent conflicting writes land inside the first window;
        // the race must be visible as soon as that window has filled, long
        // before finish_stream.
        let mut b = TraceBuilder::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let x = smarttrack_trace::VarId::new(0);
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t1, Op::Write(x)).unwrap();
        for _ in 0..6 {
            b.push(t0, Op::Read(smarttrack_trace::VarId::new(1)))
                .unwrap();
        }
        let trace = b.finish();

        let mut det = WindowedDetector::new(WindowedConfig {
            window: 2,
            stride: 2,
            budget_per_query: 100_000,
        });
        for (id, event) in trace.iter() {
            det.process(id, event);
            if id.index() == 1 {
                assert_eq!(
                    det.report().dynamic_count(),
                    1,
                    "first window flushed as soon as it filled"
                );
            }
        }
        det.finish_stream();
        assert_eq!(det.windowed_report().races().len(), 1);
    }

    #[test]
    fn streaming_matches_whole_trace_analysis() {
        // Same windows, same counters, whether windows run as the stream
        // fills or all at once at the end.
        for (window, stride) in [(4, 2), (3, 3), (5, 1), (100, 50)] {
            let trace = paper::figure1();
            let config = WindowedConfig {
                window,
                stride,
                budget_per_query: 200_000,
            };
            let whole = WindowedRaceAnalysis::new(&trace, config.clone()).analyze();

            let mut det = WindowedDetector::new(config);
            for (id, event) in trace.iter() {
                det.process(id, event);
            }
            det.finish_stream();
            assert_eq!(det.into_report(), whole, "window {window} stride {stride}");
        }
    }
}
