#![warn(missing_docs)]

//! Vindication: checking that a reported DC-/WDC-race is a *true* predictable
//! race by constructing a witness — a predicted trace (paper §2.2) that ends
//! with the two conflicting events next to each other.
//!
//! The paper relies on prior work's `VindicateRace` (Roemer et al. 2018): "a
//! vindication algorithm can rule out false races, providing soundness
//! overall" (§2.4), and notes that WDC-races can be vindicated with the same
//! machinery (§3). This crate provides:
//!
//! * [`witness`] — an independent validator for the predicted-trace
//!   conditions (events are a subset forming per-thread prefixes, program
//!   order preserved, every read keeps its last writer, locking well-formed,
//!   racing events consecutive);
//! * [`oracle`] — an exhaustive search for predictable races on small traces
//!   (ground truth for testing);
//! * [`vindicate`] — the constraint-graph-based witness construction in the
//!   spirit of `VindicateRace`: sound (every produced witness is validated)
//!   but incomplete (may answer "unknown").
//!
//! # Examples
//!
//! The paper's Figure 1 race vindicates; the Figure 3 WDC-race does not:
//!
//! ```
//! use smarttrack_detect::{run_detector, Detector, UnoptWdc};
//! use smarttrack_trace::paper;
//! use smarttrack_vindicate::{vindicate_first_race, VindicationResult};
//!
//! let trace = paper::figure1();
//! let mut det = UnoptWdc::new();
//! run_detector(&mut det, &trace);
//! let result = vindicate_first_race(&trace, det.report()).expect("a race was reported");
//! assert!(matches!(result, VindicationResult::Race(_)));
//!
//! let trace = paper::figure3();
//! let mut det = UnoptWdc::new();
//! run_detector(&mut det, &trace);
//! let result = vindicate_first_race(&trace, det.report()).expect("a race was reported");
//! assert!(matches!(result, VindicationResult::Unknown));
//! ```

pub mod oracle;
pub mod vindicate;
pub mod window;
pub mod witness;

pub use oracle::{DeadlockResult, OracleResult, PredictableRaceOracle, SearchOutcome};
pub use vindicate::{
    find_prior_access, vindicate_first_race, vindicate_pair, VindicationResult, Witness,
};
pub use window::{WindowedConfig, WindowedDetector, WindowedRaceAnalysis, WindowedReport};
pub use witness::{
    validate_reversal_witness, validate_sync_preserving_witness, validate_witness, WitnessError,
};
