//! Race-pattern building blocks, taken from the paper's figures.
//!
//! Each pattern is emitted as a contiguous block with fresh variables and
//! locks, so its detectability is exactly that of the corresponding figure
//! regardless of the surrounding workload:
//!
//! * [`PatternKind::HbRace`] — an unsynchronized conflicting pair: detected
//!   by every relation.
//! * [`PatternKind::Predictive`] — Figure 1(a): ordered by HB through an
//!   unrelated critical section, detected by WCP/DC/WDC only.
//! * [`PatternKind::DcOnly`] — Figure 2(a): WCP orders it via HB
//!   composition; only DC/WDC detect it.
//! * [`PatternKind::WdcFalse`] — Figure 3: a false race only WDC reports.
//! * [`PatternKind::CondvarHandoff`] — producer-consumer via `notify`/`wait`:
//!   ordered purely through the condvar, race-free under every relation.
//! * [`PatternKind::CondvarRace`] — a write issued *after* the notify races
//!   with the woken consumer's read: detected by every relation.
//! * [`PatternKind::BarrierPhase`] — phased double-buffering through a
//!   barrier: cross-phase accesses ordered by the rendezvous, race-free.
//! * [`PatternKind::BarrierRace`] — same-phase accesses after a rendezvous
//!   are unordered: detected by every relation.
//! * [`PatternKind::ReaderOverlap`] — a write inside a read-mode rwlock
//!   section vs overlapping readers: detected by every relation (and hidden
//!   entirely if read-acquires are lowered to exclusive ones).
//! * [`PatternKind::Reversal`] — a race exposed only by *reversing* two
//!   same-lock critical sections: invisible to every Table 1 relation and
//!   to SyncP, detected exactly once by the OSR extension row.

use smarttrack_clock::ThreadId;
use smarttrack_trace::{BarrierId, CondId, Loc, LockId, Op, TraceBuilder, VarId};

/// The kinds of injectable race patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Detected by HB and everything weaker.
    HbRace,
    /// Detected by WCP/DC/WDC but not HB (Figure 1(a)).
    Predictive,
    /// Detected by DC/WDC but not WCP or HB (Figure 2(a)).
    DcOnly,
    /// Reported only by WDC; not a predictable race (Figure 3).
    WdcFalse,
    /// Producer-consumer handoff via condvar `notify`/`wait`: race-free
    /// (the consumer's read is ordered after the producer's write purely
    /// through the notify edge).
    CondvarHandoff,
    /// A write *after* the notify races with the woken consumer's read:
    /// detected by every relation.
    CondvarRace,
    /// Barrier-phased double-buffering: each thread writes its buffer
    /// before the rendezvous and reads the other's after it — race-free.
    BarrierPhase,
    /// Unordered same-phase accesses after a rendezvous: detected by every
    /// relation.
    BarrierRace,
    /// A write inside a *read-mode* rwlock section races with two
    /// overlapping readers' reads of the same variable: read sections never
    /// exclude each other, so every relation detects it. Lowering the
    /// read-acquires to exclusive acquires masks the race completely —
    /// the regression the captured-`RwLock` fix pins.
    ReaderOverlap,
    /// A race hidden behind a same-lock critical-section *reversal*: the
    /// first thread writes `x` inside its section, the second writes `x`
    /// right after its own section of the same lock, and the sections
    /// conflict on a second variable so neither can be dropped. Only
    /// scheduling the second section *before* the first exposes the pair —
    /// invisible to HB/WCP/DC/WDC *and* SyncP (rule 3 forces the
    /// endpoint), reported exactly once by OSR.
    Reversal,
}

impl PatternKind {
    /// Threads the pattern needs.
    pub fn threads_needed(self) -> usize {
        match self {
            PatternKind::HbRace
            | PatternKind::Predictive
            | PatternKind::CondvarHandoff
            | PatternKind::CondvarRace
            | PatternKind::BarrierPhase
            | PatternKind::BarrierRace
            | PatternKind::Reversal => 2,
            PatternKind::DcOnly | PatternKind::WdcFalse | PatternKind::ReaderOverlap => 3,
        }
    }

    /// Fresh variables the pattern consumes.
    pub fn vars_needed(self) -> u32 {
        match self {
            PatternKind::HbRace
            | PatternKind::CondvarHandoff
            | PatternKind::CondvarRace
            | PatternKind::BarrierRace
            | PatternKind::ReaderOverlap => 1,
            PatternKind::Predictive | PatternKind::WdcFalse => 3,
            PatternKind::DcOnly | PatternKind::BarrierPhase | PatternKind::Reversal => 2,
        }
    }

    /// Fresh locks the pattern consumes.
    pub fn locks_needed(self) -> u32 {
        match self {
            PatternKind::HbRace | PatternKind::BarrierPhase | PatternKind::BarrierRace => 0,
            PatternKind::Predictive
            | PatternKind::CondvarHandoff
            | PatternKind::CondvarRace
            | PatternKind::ReaderOverlap
            | PatternKind::Reversal => 1,
            PatternKind::DcOnly => 2,
            PatternKind::WdcFalse => 3,
        }
    }

    /// Fresh condition variables the pattern consumes.
    pub fn condvars_needed(self) -> u32 {
        match self {
            PatternKind::CondvarHandoff | PatternKind::CondvarRace => 1,
            _ => 0,
        }
    }

    /// Fresh barriers the pattern consumes.
    pub fn barriers_needed(self) -> u32 {
        match self {
            PatternKind::BarrierPhase | PatternKind::BarrierRace => 1,
            _ => 0,
        }
    }

    /// Statically distinct races one instance of this pattern contributes
    /// under each relation, as `(HB, WCP, DC, WDC)`. This is the per-site
    /// decomposition of [`RaceMix::expected_static`], exposed so external
    /// batteries (e.g. the live-capture differential tests) can pin a
    /// single pattern's expectation without assembling a whole mix.
    pub fn expected_static_races(self) -> (u32, u32, u32, u32) {
        match self {
            PatternKind::HbRace
            | PatternKind::CondvarRace
            | PatternKind::BarrierRace
            | PatternKind::ReaderOverlap => (1, 1, 1, 1),
            PatternKind::Predictive => (0, 1, 1, 1),
            PatternKind::DcOnly => (0, 0, 1, 1),
            PatternKind::WdcFalse => (0, 0, 0, 1),
            // The reversal pattern's race is invisible to every Table 1
            // relation (and to SyncP): only OSR's reversal-permitting
            // closure reports it — exactly once, pinned by the capture
            // differential and `tests/osr_differential.rs`.
            PatternKind::CondvarHandoff | PatternKind::BarrierPhase | PatternKind::Reversal => {
                (0, 0, 0, 0)
            }
        }
    }
}

/// The statically distinct race mix of one workload, derived from Table 7
/// (`predictive = WCP − HB` races, `dc_only = DC − WCP` races).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceMix {
    /// Races every relation detects.
    pub hb: u32,
    /// Races only the predictive relations detect (Figure 1 pattern).
    pub predictive: u32,
    /// Races only DC/WDC detect (Figure 2 pattern).
    pub dc_only: u32,
    /// False WDC-only reports (Figure 3 pattern); 0 for all DaCapo profiles,
    /// matching the paper's finding that WDC reports no false races on them.
    pub wdc_false: u32,
    /// Races between a post-notify write and the woken consumer
    /// ([`PatternKind::CondvarRace`]); detected by every relation.
    pub condvar: u32,
    /// Races between unordered same-phase accesses after a rendezvous
    /// ([`PatternKind::BarrierRace`]); detected by every relation.
    pub barrier: u32,
    /// Race-free condvar handoffs ([`PatternKind::CondvarHandoff`]);
    /// exercise the notify/wait machinery without adding races.
    pub condvar_handoff: u32,
    /// Race-free barrier phases ([`PatternKind::BarrierPhase`]).
    pub barrier_phase: u32,
    /// Races between a write in a read-mode rwlock section and overlapping
    /// readers ([`PatternKind::ReaderOverlap`]); detected by every relation.
    pub reader_overlap: u32,
    /// Dynamic repetitions per static race site.
    pub repeats_per_site: u32,
}

impl RaceMix {
    /// Expected statically distinct races under each relation
    /// `(HB, WCP, DC, WDC)`.
    pub fn expected_static(&self) -> (u32, u32, u32, u32) {
        // Condvar, barrier, and reader-overlap races are unsynchronized
        // under every relation, so they count like plain HB races.
        let hb = self.hb + self.condvar + self.barrier + self.reader_overlap;
        let wcp = hb + self.predictive;
        let dc = wcp + self.dc_only;
        let wdc = dc + self.wdc_false;
        (hb, wcp, dc, wdc)
    }

    /// All pattern instances to inject, as `(kind, site_index)` pairs.
    pub fn sites(&self) -> Vec<(PatternKind, u32)> {
        let mut out = Vec::new();
        for i in 0..self.hb {
            out.push((PatternKind::HbRace, i));
        }
        for i in 0..self.predictive {
            out.push((PatternKind::Predictive, self.hb + i));
        }
        for i in 0..self.dc_only {
            out.push((PatternKind::DcOnly, self.hb + self.predictive + i));
        }
        for i in 0..self.wdc_false {
            out.push((
                PatternKind::WdcFalse,
                self.hb + self.predictive + self.dc_only + i,
            ));
        }
        let mut next = self.hb + self.predictive + self.dc_only + self.wdc_false;
        for (kind, count) in [
            (PatternKind::CondvarRace, self.condvar),
            (PatternKind::BarrierRace, self.barrier),
            (PatternKind::ReaderOverlap, self.reader_overlap),
            (PatternKind::CondvarHandoff, self.condvar_handoff),
            (PatternKind::BarrierPhase, self.barrier_phase),
        ] {
            for i in 0..count {
                out.push((kind, next + i));
            }
            next += count;
        }
        out
    }
}

/// Resource allocator for pattern emission: fresh ids beyond the body's.
pub(crate) struct PatternAlloc {
    pub next_var: u32,
    pub next_lock: u32,
    pub next_condvar: u32,
    pub next_barrier: u32,
    /// Location block per site: locations must be stable across repetitions
    /// of the same site (dynamic races at one static location) and distinct
    /// across sites.
    pub loc_base: u32,
}

const LOCS_PER_SITE: u32 = 32;

/// Emits one repetition of `kind` at static site `site` using `threads`
/// (which must currently hold no locks). Allocates fresh vars/locks from
/// `alloc`; locations are stable per site.
pub(crate) fn emit(
    b: &mut TraceBuilder,
    kind: PatternKind,
    site: u32,
    threads: &[ThreadId],
    alloc: &mut PatternAlloc,
) {
    assert!(threads.len() >= kind.threads_needed(), "not enough threads");
    debug_assert!(
        threads[..kind.threads_needed()]
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            == kind.threads_needed(),
        "pattern threads must be distinct"
    );
    let var = |a: &mut PatternAlloc| {
        let v = VarId::new(a.next_var);
        a.next_var += 1;
        v
    };
    let lock = |a: &mut PatternAlloc| {
        let l = LockId::new(a.next_lock);
        a.next_lock += 1;
        l
    };
    let condvar = |a: &mut PatternAlloc| {
        let c = CondId::new(a.next_condvar);
        a.next_condvar += 1;
        c
    };
    let barrier = |a: &mut PatternAlloc| {
        let bar = BarrierId::new(a.next_barrier);
        a.next_barrier += 1;
        bar
    };
    let loc_base = alloc.loc_base;
    let loc = move |i: u32| Loc::new(loc_base + site * LOCS_PER_SITE + i);
    let (ta, tb) = (threads[0], threads[1]);
    match kind {
        PatternKind::HbRace => {
            let x = var(alloc);
            b.push_at(ta, Op::Write(x), loc(0)).expect("well-formed");
            b.push_at(tb, Op::Write(x), loc(1)).expect("well-formed");
        }
        PatternKind::Predictive => {
            // Figure 1(a): the critical sections share no data.
            let (x, y, z) = (var(alloc), var(alloc), var(alloc));
            let m = lock(alloc);
            b.push_at(ta, Op::Read(x), loc(0)).expect("well-formed");
            b.push_at(ta, Op::Acquire(m), loc(1)).expect("well-formed");
            b.push_at(ta, Op::Write(y), loc(2)).expect("well-formed");
            b.push_at(ta, Op::Release(m), loc(3)).expect("well-formed");
            b.push_at(tb, Op::Acquire(m), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Read(z), loc(5)).expect("well-formed");
            b.push_at(tb, Op::Release(m), loc(6)).expect("well-formed");
            b.push_at(tb, Op::Write(x), loc(7)).expect("well-formed");
        }
        PatternKind::DcOnly => {
            // Figure 2(a).
            let tc = threads[2];
            let (x, y) = (var(alloc), var(alloc));
            let (m, n) = (lock(alloc), lock(alloc));
            b.push_at(ta, Op::Read(x), loc(0)).expect("well-formed");
            b.push_at(ta, Op::Acquire(m), loc(1)).expect("well-formed");
            b.push_at(ta, Op::Write(y), loc(2)).expect("well-formed");
            b.push_at(ta, Op::Release(m), loc(3)).expect("well-formed");
            b.push_at(tb, Op::Acquire(m), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Read(y), loc(5)).expect("well-formed");
            b.push_at(tb, Op::Release(m), loc(6)).expect("well-formed");
            b.push_at(tb, Op::Acquire(n), loc(7)).expect("well-formed");
            b.push_at(tb, Op::Release(n), loc(8)).expect("well-formed");
            b.push_at(tc, Op::Acquire(n), loc(9)).expect("well-formed");
            b.push_at(tc, Op::Release(n), loc(10)).expect("well-formed");
            b.push_at(tc, Op::Write(x), loc(11)).expect("well-formed");
        }
        PatternKind::WdcFalse => {
            // Figure 3, with sync(o) = acq;rd;wr;rel.
            let tc = threads[2];
            let (x, ov, pv) = (var(alloc), var(alloc), var(alloc));
            let (m, o, p) = (lock(alloc), lock(alloc), lock(alloc));
            let sync = |b: &mut TraceBuilder, t: ThreadId, l: LockId, v: VarId, at: Loc| {
                b.push_at(t, Op::Acquire(l), at).expect("well-formed");
                b.push_at(t, Op::Read(v), at).expect("well-formed");
                b.push_at(t, Op::Write(v), at).expect("well-formed");
                b.push_at(t, Op::Release(l), at).expect("well-formed");
            };
            b.push_at(ta, Op::Acquire(m), loc(0)).expect("well-formed");
            sync(b, ta, o, ov, loc(1));
            b.push_at(ta, Op::Read(x), loc(2)).expect("well-formed");
            b.push_at(ta, Op::Release(m), loc(3)).expect("well-formed");
            sync(b, tb, o, ov, loc(4));
            sync(b, tb, p, pv, loc(5));
            b.push_at(tc, Op::Acquire(m), loc(6)).expect("well-formed");
            sync(b, tc, p, pv, loc(7));
            b.push_at(tc, Op::Release(m), loc(8)).expect("well-formed");
            b.push_at(tc, Op::Write(x), loc(9)).expect("well-formed");
        }
        PatternKind::CondvarHandoff => {
            // Producer writes, then notifies; the woken consumer's read is
            // ordered purely through the notify edge (no common lock on the
            // data: the monitor protects nothing else).
            let x = var(alloc);
            let m = lock(alloc);
            let c = condvar(alloc);
            b.push_at(ta, Op::Write(x), loc(0)).expect("well-formed");
            b.push_at(ta, Op::Notify(c), loc(1)).expect("well-formed");
            b.push_at(tb, Op::Acquire(m), loc(2)).expect("well-formed");
            b.push_at(tb, Op::Wait(c, m), loc(3)).expect("well-formed");
            b.push_at(tb, Op::Read(x), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Release(m), loc(5)).expect("well-formed");
        }
        PatternKind::CondvarRace => {
            // The producer writes *after* notifying: the woken consumer's
            // read is unordered with the write under every relation.
            let x = var(alloc);
            let m = lock(alloc);
            let c = condvar(alloc);
            b.push_at(ta, Op::Notify(c), loc(0)).expect("well-formed");
            b.push_at(ta, Op::Write(x), loc(1)).expect("well-formed");
            b.push_at(tb, Op::Acquire(m), loc(2)).expect("well-formed");
            b.push_at(tb, Op::Wait(c, m), loc(3)).expect("well-formed");
            b.push_at(tb, Op::Read(x), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Release(m), loc(5)).expect("well-formed");
        }
        PatternKind::BarrierPhase => {
            // Phase 1: each thread writes its own buffer; rendezvous; phase
            // 2: each reads the *other* thread's buffer. All-to-all ordering
            // makes this race-free.
            let (x0, x1) = (var(alloc), var(alloc));
            let bar = barrier(alloc);
            b.push_at(ta, Op::Write(x0), loc(0)).expect("well-formed");
            b.push_at(tb, Op::Write(x1), loc(1)).expect("well-formed");
            b.push_at(ta, Op::BarrierEnter(bar), loc(2))
                .expect("well-formed");
            b.push_at(tb, Op::BarrierEnter(bar), loc(3))
                .expect("well-formed");
            b.push_at(ta, Op::BarrierExit(bar), loc(4))
                .expect("well-formed");
            b.push_at(tb, Op::BarrierExit(bar), loc(5))
                .expect("well-formed");
            b.push_at(ta, Op::Read(x1), loc(6)).expect("well-formed");
            b.push_at(tb, Op::Read(x0), loc(7)).expect("well-formed");
        }
        PatternKind::BarrierRace => {
            // Both threads leave the rendezvous and touch the same variable
            // in the same phase: the barrier orders nothing between them.
            let x = var(alloc);
            let bar = barrier(alloc);
            b.push_at(ta, Op::BarrierEnter(bar), loc(0))
                .expect("well-formed");
            b.push_at(tb, Op::BarrierEnter(bar), loc(1))
                .expect("well-formed");
            b.push_at(ta, Op::BarrierExit(bar), loc(2))
                .expect("well-formed");
            b.push_at(tb, Op::BarrierExit(bar), loc(3))
                .expect("well-formed");
            b.push_at(ta, Op::Write(x), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Read(x), loc(5)).expect("well-formed");
        }
        PatternKind::ReaderOverlap => {
            // A buggy writer mutates x inside a *read-mode* section; two
            // readers read x in literally overlapping read sections. Read
            // sections never exclude each other, so nothing orders the
            // write before either read: every relation reports. Both reads
            // share one static site, so the pattern contributes exactly one
            // statically-distinct race. Lowering the three `acqr`s to plain
            // `acq` serializes the sections and rule (a)/HB hides the race
            // entirely (pinned by the capture differential battery).
            let tc = threads[2];
            let x = var(alloc);
            let m = lock(alloc);
            b.push_at(ta, Op::AcqRead(m), loc(0)).expect("well-formed");
            b.push_at(ta, Op::Write(x), loc(1)).expect("well-formed");
            b.push_at(ta, Op::Release(m), loc(2)).expect("well-formed");
            b.push_at(tb, Op::AcqRead(m), loc(3)).expect("well-formed");
            b.push_at(tc, Op::AcqRead(m), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Read(x), loc(5)).expect("well-formed");
            b.push_at(tc, Op::Read(x), loc(5)).expect("well-formed");
            b.push_at(tb, Op::Release(m), loc(6)).expect("well-formed");
            b.push_at(tc, Op::Release(m), loc(7)).expect("well-formed");
        }
        PatternKind::Reversal => {
            // The canonical OSR-beats-SyncP shape: both sections write y
            // (so neither is droppable), ta's x-write sits *inside* its
            // section, tb's sits *after* its own. In trace order rule 3
            // forces ta's release before its x-write — SyncP (and every
            // Table 1 relation) stays silent; reversing the sections runs
            // tb's section first and makes the two x-writes adjacent.
            let (x, y) = (var(alloc), var(alloc));
            let m = lock(alloc);
            b.push_at(ta, Op::Acquire(m), loc(0)).expect("well-formed");
            b.push_at(ta, Op::Write(y), loc(1)).expect("well-formed");
            b.push_at(ta, Op::Write(x), loc(2)).expect("well-formed");
            b.push_at(ta, Op::Release(m), loc(3)).expect("well-formed");
            b.push_at(tb, Op::Acquire(m), loc(4)).expect("well-formed");
            b.push_at(tb, Op::Write(y), loc(5)).expect("well-formed");
            b.push_at(tb, Op::Release(m), loc(6)).expect("well-formed");
            b.push_at(tb, Op::Write(x), loc(7)).expect("well-formed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::Trace;

    fn emit_one(kind: PatternKind) -> Trace {
        let mut b = TraceBuilder::new();
        let mut alloc = PatternAlloc {
            next_var: 0,
            next_lock: 0,
            next_condvar: 0,
            next_barrier: 0,
            loc_base: 0,
        };
        let threads: Vec<ThreadId> = (0..3).map(ThreadId::new).collect();
        emit(&mut b, kind, 0, &threads, &mut alloc);
        b.finish()
    }

    #[test]
    fn patterns_are_well_formed() {
        for kind in [
            PatternKind::HbRace,
            PatternKind::Predictive,
            PatternKind::DcOnly,
            PatternKind::WdcFalse,
            PatternKind::CondvarHandoff,
            PatternKind::CondvarRace,
            PatternKind::BarrierPhase,
            PatternKind::BarrierRace,
            PatternKind::ReaderOverlap,
            PatternKind::Reversal,
        ] {
            let tr = emit_one(kind);
            Trace::from_events(tr.events().iter().copied())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn race_mix_site_counts() {
        let mix = RaceMix {
            hb: 2,
            predictive: 3,
            dc_only: 1,
            wdc_false: 0,
            condvar: 2,
            barrier: 1,
            condvar_handoff: 4,
            barrier_phase: 4,
            reader_overlap: 2,
            repeats_per_site: 5,
        };
        assert_eq!(mix.sites().len(), 19);
        // Condvar/barrier/reader-overlap races count under every relation,
        // like HB races; the handoff/phase sites add no races.
        assert_eq!(mix.expected_static(), (7, 10, 11, 11));
        // Site indices are globally unique.
        let mut idx: Vec<u32> = mix.sites().iter().map(|&(_, i)| i).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 19);
    }

    #[test]
    fn per_pattern_expectations_decompose_the_mix() {
        // Summing every emitted site's per-pattern expectation must equal
        // the mix-level expectation, for any mix shape.
        for mix in [
            RaceMix {
                hb: 2,
                predictive: 3,
                dc_only: 1,
                wdc_false: 2,
                condvar: 2,
                barrier: 1,
                condvar_handoff: 4,
                barrier_phase: 4,
                reader_overlap: 1,
                repeats_per_site: 5,
            },
            RaceMix {
                condvar: 1,
                barrier_phase: 2,
                repeats_per_site: 1,
                ..RaceMix::default()
            },
        ] {
            let mut sum = (0, 0, 0, 0);
            for (kind, _) in mix.sites() {
                let (hb, wcp, dc, wdc) = kind.expected_static_races();
                sum = (sum.0 + hb, sum.1 + wcp, sum.2 + dc, sum.3 + wdc);
            }
            assert_eq!(sum, mix.expected_static(), "{mix:?}");
        }
    }
}
