#![warn(missing_docs)]

//! DaCapo-calibrated synthetic workloads.
//!
//! The paper evaluates on ten DaCapo benchmarks instrumented by RoadRunner
//! (§5.2). This crate substitutes seeded synthetic workloads calibrated, per
//! program, against the paper's measured run-time characteristics (Table 2:
//! thread counts, non-same-epoch-access fraction, fraction of NSEAs holding
//! ≥1/≥2/≥3 locks) and race profile (Table 7: statically distinct races per
//! relation, scaled dynamic counts). Event counts scale linearly with a
//! user-chosen factor so experiments run anywhere from laptop-smoke-test to
//! paper-sized.
//!
//! # Examples
//!
//! ```
//! use smarttrack_workloads::{profiles, Workload};
//!
//! let xalan = profiles::xalan();
//! let trace = xalan.trace(0.00002, 42);
//! assert!(trace.len() > 1_000);
//! // xalan is the paper's most lock-intensive program: nearly every
//! // non-same-epoch access holds a lock.
//! let stats = smarttrack_trace::stats::TraceStats::compute(&trace);
//! assert!(stats.pct_nsea_holding(1) > 80.0);
//! ```

mod corpus;
mod distant;
mod patterns;
mod profile;
mod synth;

pub use corpus::{corpus, corpus_profiles};
pub use distant::distant_race_trace;
pub use patterns::{PatternKind, RaceMix};
pub use profile::{profiles, Table2Row, Workload};
