//! The ten DaCapo workload profiles, calibrated against the paper's Table 2
//! (run-time characteristics) and Table 7 (race counts).

use smarttrack_trace::Trace;

use crate::patterns::RaceMix;
use crate::synth::Synthesizer;

/// The paper's Table 2 row for one program: measured characteristics the
/// synthetic workload is calibrated against (and reported next to, in the
/// reproduction's Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table2Row {
    /// Total threads (the parenthesized max-live count is `live_threads`).
    pub threads: u32,
    /// Maximum simultaneously live threads.
    pub live_threads: u32,
    /// Total events, in millions.
    pub events_m: f64,
    /// Non-same-epoch accesses, in millions.
    pub nsea_m: f64,
    /// Percent of NSEAs holding ≥ 1 lock.
    pub pct_ge1: f64,
    /// Percent of NSEAs holding ≥ 2 locks.
    pub pct_ge2: f64,
    /// Percent of NSEAs holding ≥ 3 locks.
    pub pct_ge3: f64,
}

/// A DaCapo-style workload: paper-measured targets plus a scalable synthetic
/// generator.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Program name as in the paper's tables.
    pub name: &'static str,
    /// The paper's measured characteristics (calibration target).
    pub paper: Table2Row,
    /// Race sites to inject, from Table 7's statically distinct counts.
    pub races: RaceMix,
    /// Fraction of synthetic accesses that are writes.
    pub write_frac: f64,
    /// Fraction of locked body blocks that take their outermost lock as a
    /// reader-writer lock (mostly read-mode, with calibrated write-mode and
    /// failed-trylock traffic). 0 for the DaCapo profiles — the Java
    /// benchmarks' monitors are exclusive — and positive for [`profiles::
    /// rwmix`].
    pub rw_frac: f64,
}

impl Workload {
    /// Generates the workload trace at `scale` (events ≈ `paper.events_m` ×
    /// 10⁶ × `scale`), deterministically per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` would produce an empty trace.
    pub fn trace(&self, scale: f64, seed: u64) -> Trace {
        let events = (self.paper.events_m * 1e6 * scale) as usize;
        assert!(events > 0, "scale too small for {}", self.name);
        Synthesizer::new(self, events, self.effective_repeats(scale), seed).generate()
    }

    /// Dynamic repetitions per race site at `scale`.
    ///
    /// `races.repeats_per_site` is calibrated for the reference scale `1e-4`;
    /// dynamic race counts scale with trace length (like the paper's, which
    /// are proportional to executed events), while statically distinct sites
    /// stay constant.
    pub fn effective_repeats(&self, scale: f64) -> u32 {
        ((self.races.repeats_per_site as f64 * scale / 1e-4).round() as u32).max(1)
    }

    /// The target number of events at `scale`.
    pub fn events_at(&self, scale: f64) -> usize {
        (self.paper.events_m * 1e6 * scale) as usize
    }

    /// Target same-epoch-access ratio (`All / NSEAs` from Table 2).
    pub fn burst_target(&self) -> f64 {
        // Accesses are roughly half of all events in the DaCapo traces; the
        // burst length controls how many same-epoch accesses follow each
        // non-same-epoch access.
        (self.paper.events_m / self.paper.nsea_m).max(1.0)
    }
}

/// The ten profiles with the paper's Table 2 numbers and Table 7-derived
/// race mixes (using the `Unopt-` column's statically distinct races, made
/// monotone across relations where run-to-run variation in the paper broke
/// monotonicity — see DESIGN.md).
pub mod profiles {
    use super::*;

    fn row(
        threads: u32,
        live: u32,
        events_m: f64,
        nsea_m: f64,
        p1: f64,
        p2: f64,
        p3: f64,
    ) -> Table2Row {
        Table2Row {
            threads,
            live_threads: live,
            events_m,
            nsea_m,
            pct_ge1: p1,
            pct_ge2: p2,
            pct_ge3: p3,
        }
    }

    fn mix(hb: u32, predictive: u32, dc_only: u32, repeats: u32) -> RaceMix {
        RaceMix {
            hb,
            predictive,
            dc_only,
            repeats_per_site: repeats.max(1),
            ..RaceMix::default()
        }
    }

    /// avrora: AVR microcontroller simulation.
    pub fn avrora() -> Workload {
        Workload {
            name: "avrora",
            paper: row(7, 7, 1_400.0, 140.0, 5.89, 0.1, 0.0),
            races: mix(6, 0, 0, 12),
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// batik: SVG rasterizer (race-free in the paper).
    pub fn batik() -> Workload {
        Workload {
            name: "batik",
            paper: row(7, 2, 160.0, 5.8, 46.1, 0.1, 0.1),
            races: RaceMix {
                repeats_per_site: 1,
                ..RaceMix::default()
            },
            write_frac: 0.4,
            rw_frac: 0.0,
        }
    }

    /// h2: in-memory SQL database — the paper's most lock-intensive program
    /// together with xalan.
    pub fn h2() -> Workload {
        Workload {
            name: "h2",
            paper: row(10, 9, 3_800.0, 300.0, 82.8, 80.1, 0.17),
            races: mix(13, 0, 0, 10),
            write_frac: 0.3,
            rw_frac: 0.0,
        }
    }

    /// jython: Python interpreter (two threads).
    ///
    /// The paper's Table 7 reports more DC- than WCP-races for jython; the
    /// Figure 2 pattern that separates DC from WCP needs three threads, which
    /// jython does not have, so this profile folds those sites into the
    /// two-thread predictive pattern (expected counts: HB 21, WCP/DC/WDC 22;
    /// see EXPERIMENTS.md).
    pub fn jython() -> Workload {
        Workload {
            name: "jython",
            paper: row(2, 2, 730.0, 170.0, 3.82, 0.23, 0.1),
            races: mix(21, 1, 0, 1),
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// luindex: document indexing.
    pub fn luindex() -> Workload {
        Workload {
            name: "luindex",
            paper: row(3, 3, 400.0, 41.0, 25.8, 25.4, 25.3),
            races: mix(1, 0, 0, 1),
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// lusearch: text search (race-free in the paper).
    pub fn lusearch() -> Workload {
        Workload {
            name: "lusearch",
            paper: row(10, 10, 1_400.0, 140.0, 3.79, 0.39, 0.1),
            races: RaceMix {
                repeats_per_site: 1,
                ..RaceMix::default()
            },
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// pmd: source-code analyzer.
    pub fn pmd() -> Workload {
        Workload {
            name: "pmd",
            paper: row(9, 9, 200.0, 7.9, 1.13, 0.0, 0.0),
            races: mix(6, 0, 4, 20),
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// sunflow: ray tracer — extreme same-epoch access ratio.
    pub fn sunflow() -> Workload {
        Workload {
            name: "sunflow",
            paper: row(17, 16, 9_700.0, 3.5, 0.78, 0.1, 0.0),
            races: mix(6, 12, 1, 3),
            write_frac: 0.4,
            rw_frac: 0.0,
        }
    }

    /// tomcat: servlet container — many threads, many distinct race sites.
    pub fn tomcat() -> Workload {
        Workload {
            name: "tomcat",
            paper: row(37, 37, 49.0, 11.0, 14.0, 8.45, 3.95),
            races: mix(120, 3, 4, 25),
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// xalan: XSLT processor — nearly every NSEA holds a lock; the biggest
    /// beneficiary of SmartTrack's CCS optimizations.
    pub fn xalan() -> Workload {
        Workload {
            name: "xalan",
            paper: row(9, 9, 630.0, 240.0, 99.9, 99.7, 1.27),
            races: mix(8, 55, 11, 8),
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// condsync: a reproduction-specific workload (not one of the paper's
    /// ten) whose synchronization is dominated by condvar handoffs and
    /// barrier phases — xalan/avrora-class programs coordinate worker pools
    /// exactly this way. It drives the `wait`/`notify`/barrier clock rules
    /// on every analysis hot path: the race mix carries a few condvar and
    /// barrier races (detected by every relation) atop a large body of
    /// race-free handoffs and phases. Not part of [`all`] (which mirrors
    /// the paper's Table 2), but included in the hotpath bench lanes.
    pub fn condsync() -> Workload {
        Workload {
            name: "condsync",
            paper: row(8, 8, 100.0, 20.0, 35.0, 2.0, 0.0),
            races: RaceMix {
                hb: 2,
                condvar: 3,
                barrier: 3,
                condvar_handoff: 20,
                barrier_phase: 20,
                repeats_per_site: 10,
                ..RaceMix::default()
            },
            write_frac: 0.35,
            rw_frac: 0.0,
        }
    }

    /// rwmix: a reproduction-specific reader-writer-lock contention profile
    /// (not one of the paper's ten — the DaCapo monitors are exclusive).
    /// Calibrated on the shapes rwlock microbenchmark suites converge on:
    /// a handful of hot shared maps guarded by rwlocks, ~90% read-mode
    /// acquisitions against ~10% write-mode, trylock fall-back paths that
    /// fail under contention, and a worker pool several times larger than
    /// the lock count. Most locked body blocks take the outermost lock in
    /// read mode; the race mix injects
    /// [`PatternKind::ReaderOverlap`](crate::patterns::PatternKind::ReaderOverlap)
    /// sites
    /// (the write-under-read-lock bug class exclusive lowering masks) atop
    /// plain HB races. Exercises `acqr`/`acqw`/`tryf` on every analysis hot
    /// path; surfaced by `generate`/`list` and the hotpath bench lanes.
    pub fn rwmix() -> Workload {
        Workload {
            name: "rwmix",
            paper: row(12, 12, 150.0, 30.0, 60.0, 5.0, 0.0),
            races: RaceMix {
                hb: 2,
                reader_overlap: 4,
                repeats_per_site: 10,
                ..RaceMix::default()
            },
            write_frac: 0.3,
            rw_frac: 0.8,
        }
    }

    /// All ten profiles in the paper's table order.
    pub fn all() -> Vec<Workload> {
        vec![
            avrora(),
            batik(),
            h2(),
            jython(),
            luindex(),
            lusearch(),
            pmd(),
            sunflow(),
            tomcat(),
            xalan(),
        ]
    }

    /// The paper's ten profiles plus the reproduction-specific extensions
    /// ([`condsync`] and [`rwmix`]) — the single list the CLI's `generate`
    /// and `list` surfaces present, so the two can never drift apart.
    pub fn extended() -> Vec<Workload> {
        let mut out = all();
        out.push(condsync());
        out.push(rwmix());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::stats::TraceStats;

    #[test]
    fn all_profiles_generate_well_formed_traces() {
        for w in profiles::all() {
            let tr = w.trace(0.00001, 7);
            Trace::from_events(tr.events().iter().copied())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(tr.len() > 100, "{} too small: {}", w.name, tr.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = profiles::avrora();
        assert_eq!(w.trace(0.00001, 3), w.trace(0.00001, 3));
        assert_ne!(w.trace(0.00001, 3), w.trace(0.00001, 4));
    }

    #[test]
    fn thread_counts_match_paper() {
        for w in profiles::all() {
            let tr = w.trace(0.00002, 1);
            let stats = TraceStats::compute(&tr);
            assert!(
                stats.threads_total >= w.paper.threads as usize,
                "{}: {} threads < paper's {}",
                w.name,
                stats.threads_total,
                w.paper.threads
            );
        }
    }

    #[test]
    fn lock_intensity_ordering_matches_paper() {
        // xalan and h2 must be far more lock-intensive than pmd and sunflow
        // (the property driving Table 5's performance differences).
        let pct = |w: &Workload| {
            let tr = w.trace(0.00002, 5);
            TraceStats::compute(&tr).pct_nsea_holding(1)
        };
        let xalan = pct(&profiles::xalan());
        let h2 = pct(&profiles::h2());
        let pmd = pct(&profiles::pmd());
        let sunflow = pct(&profiles::sunflow());
        assert!(xalan > 80.0, "xalan {xalan:.1}%");
        assert!(h2 > 60.0, "h2 {h2:.1}%");
        assert!(pmd < 20.0, "pmd {pmd:.1}%");
        assert!(sunflow < 20.0, "sunflow {sunflow:.1}%");
    }

    #[test]
    fn nsea_fraction_tracks_burst_target() {
        // sunflow has an extreme same-epoch ratio; avrora a moderate one.
        let frac = |w: &Workload| {
            let tr = w.trace(0.00002, 9);
            TraceStats::compute(&tr).nsea_fraction()
        };
        assert!(
            frac(&profiles::sunflow()) < frac(&profiles::avrora()),
            "sunflow must have a (much) lower NSEA fraction"
        );
    }
}
