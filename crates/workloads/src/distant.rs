//! A predictable race whose accesses are arbitrarily far apart.
//!
//! "Prior work shows that predictable races can be millions of events
//! apart" (paper §6, citing Roemer et al. 2018). This generator embeds the
//! paper's Figure 1 race pattern around a configurable stretch of unrelated
//! single-threaded work, producing the workload that separates unbounded
//! partial-order analyses (which find the race at any distance, in linear
//! time) from bounded-window approaches (which miss it as soon as the
//! distance exceeds the window).

use smarttrack_trace::{EventId, LockId, Op, ThreadId, Trace, TraceBuilder, VarId};

/// Builds a trace containing exactly one predictable race whose two
/// accesses are at least `distance` events apart, and returns the trace
/// together with the racing pair (in trace order).
///
/// Layout (Figure 1 of the paper, stretched):
///
/// ```text
/// T0: rd(x) acq(m) wr(y) rel(m)
/// T2:   ... `distance` events of thread-local filler work ...
/// T1: acq(m) rd(z) rel(m) wr(x)
/// ```
///
/// The filler thread touches only its own variable under its own lock, so
/// the Figure 1 race between T0's `rd(x)` (the first event) and T1's
/// `wr(x)` (the last event) is the only predictable race in the trace, and
/// no reordering constraint connects the filler to either side.
///
/// # Examples
///
/// ```
/// use smarttrack_workloads::distant_race_trace;
///
/// let (trace, first, second) = distant_race_trace(1_000);
/// assert!(second.index() - first.index() >= 1_000);
/// assert!(trace.event(first).conflicts_with(trace.event(second)));
/// ```
pub fn distant_race_trace(distance: usize) -> (Trace, EventId, EventId) {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let filler_thread = ThreadId::new(2);
    let x = VarId::new(0);
    let y = VarId::new(1);
    let z = VarId::new(2);
    let filler_var = VarId::new(3);
    let m = LockId::new(0);
    let filler_lock = LockId::new(1);

    let mut b = TraceBuilder::new();
    let push = |b: &mut TraceBuilder, tid, op| {
        b.push(tid, op)
            .expect("distant-race construction is well formed")
    };

    let first = push(&mut b, t0, Op::Read(x));
    push(&mut b, t0, Op::Acquire(m));
    push(&mut b, t0, Op::Write(y));
    push(&mut b, t0, Op::Release(m));

    // Thread-local filler: acq(l) wr(f) rel(l) blocks, then plain accesses
    // for the remainder so any distance is hit exactly.
    let mut emitted = 0usize;
    while emitted + 3 <= distance {
        push(&mut b, filler_thread, Op::Acquire(filler_lock));
        push(&mut b, filler_thread, Op::Write(filler_var));
        push(&mut b, filler_thread, Op::Release(filler_lock));
        emitted += 3;
    }
    while emitted < distance {
        push(&mut b, filler_thread, Op::Read(filler_var));
        emitted += 1;
    }

    push(&mut b, t1, Op::Acquire(m));
    push(&mut b, t1, Op::Read(z));
    push(&mut b, t1, Op::Release(m));
    let second = push(&mut b, t1, Op::Write(x));

    (b.finish(), first, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racing_pair_spans_the_requested_distance() {
        for distance in [0, 1, 2, 3, 10, 997] {
            let (trace, a, b) = distant_race_trace(distance);
            assert!(
                b.index() - a.index() >= distance,
                "distance {distance}: pair {a:?}..{b:?}"
            );
            assert_eq!(a.index(), 0);
            assert_eq!(b.index(), trace.len() - 1);
            assert_eq!(
                trace.len(),
                8 + distance,
                "filler emits exactly `distance` events"
            );
        }
    }

    #[test]
    fn trace_has_exactly_the_figure1_shape_around_the_filler() {
        let (trace, a, b) = distant_race_trace(6);
        assert_eq!(trace.event(a).op, Op::Read(VarId::new(0)));
        assert_eq!(trace.event(b).op, Op::Write(VarId::new(0)));
        assert_eq!(trace.num_threads(), 3);
        assert_eq!(trace.len(), 14);
    }

    #[test]
    fn zero_distance_is_plain_figure1_with_idle_filler_thread() {
        let (trace, _, _) = distant_race_trace(0);
        assert_eq!(trace.len(), 8);
    }
}
