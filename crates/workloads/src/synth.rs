//! The workload synthesizer: a calibrated "body" (reproducing Table 2's
//! characteristics) with race patterns (Table 7's mix) injected between body
//! blocks.
//!
//! Body structure, per scheduling step: one worker thread emits a complete
//! *block* — either an unlocked access burst on thread-private data, a
//! critical-section block at calibrated nesting depth touching lock-protected
//! shared data, or a read of a read-shared variable. Blocks are atomic, so
//! locks never straddle block boundaries and pattern blocks can be injected
//! at any step without interleaving hazards (see `patterns`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smarttrack_clock::ThreadId;
use smarttrack_trace::{Loc, LockId, Op, Trace, TraceBuilder, VarId};

use crate::patterns::{emit, PatternAlloc, PatternKind};
use crate::profile::Workload;

/// Private variables per thread.
const PRIVATE_VARS: u32 = 8;
/// Shared (lock-protected) variables per global lock.
const SHARED_PER_LOCK: u32 = 4;
/// Read-shared variables (written once before the workers fork).
const READ_SHARED: u32 = 6;
/// Private locks per thread, for nesting beyond the outermost global lock.
const PRIVATE_LOCKS: u32 = 3;
/// Cap on burst length (sunflow's same-epoch ratio is ~2800:1; emitting the
/// full ratio as one burst would make tiny-scale traces degenerate).
const MAX_BURST: usize = 400;
/// Distinct body source locations per thread.
const BODY_LOCS: u32 = 64;

pub(crate) struct Synthesizer<'a> {
    workload: &'a Workload,
    events: usize,
    repeats: u32,
    rng: SmallRng,
}

impl<'a> Synthesizer<'a> {
    pub fn new(workload: &'a Workload, events: usize, repeats: u32, seed: u64) -> Self {
        Synthesizer {
            workload,
            events,
            repeats: repeats.max(1),
            rng: SmallRng::seed_from_u64(seed ^ 0xdaca_90b3_57ac_c0de),
        }
    }

    pub fn generate(mut self) -> Trace {
        let w = self.workload;
        let threads = w.paper.threads.max(2);
        let workers: Vec<ThreadId> = (1..threads).map(ThreadId::new).collect();
        let main = ThreadId::new(0);

        let n_global_locks = (threads / 2).clamp(2, 8);
        let global_lock = |g: u32| LockId::new(g);
        let private_lock =
            |t: ThreadId, i: u32| LockId::new(n_global_locks + t.raw() * PRIVATE_LOCKS + i);
        let shared_var = |g: u32, i: u32| VarId::new(g * SHARED_PER_LOCK + i);
        let read_shared_var = |i: u32| VarId::new(n_global_locks * SHARED_PER_LOCK + i);
        let private_var = |t: ThreadId, i: u32| {
            VarId::new(n_global_locks * SHARED_PER_LOCK + READ_SHARED + t.raw() * PRIVATE_VARS + i)
        };
        let body_loc = |t: ThreadId, i: u32| Loc::new(t.raw() * BODY_LOCS + i % BODY_LOCS);

        let mut alloc = PatternAlloc {
            next_var: n_global_locks * SHARED_PER_LOCK + READ_SHARED + threads * PRIVATE_VARS,
            next_lock: n_global_locks + threads * PRIVATE_LOCKS,
            next_condvar: 0,
            next_barrier: 0,
            loc_base: threads * BODY_LOCS,
        };

        let mut b = TraceBuilder::new();

        // Prologue: the main thread initializes read-shared data and forks
        // the workers (ordering the initialization before all of them).
        for i in 0..READ_SHARED {
            b.push_at(main, Op::Write(read_shared_var(i)), body_loc(main, i))
                .expect("well-formed");
        }
        for &t in &workers {
            b.push_at(main, Op::Fork(t), body_loc(main, 60))
                .expect("fork of fresh thread");
        }

        // Pattern schedule: instances spread evenly through the body.
        let mut instances: Vec<(PatternKind, u32)> = Vec::new();
        for (kind, site) in w.races.sites() {
            for _ in 0..self.repeats {
                instances.push((kind, site));
            }
        }
        // Deterministic shuffle.
        for i in (1..instances.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            instances.swap(i, j);
        }
        let body_events = self.events.saturating_sub(instances.len() * 20).max(64);
        let step = (body_events / instances.len().max(1)).max(1);
        let mut next_pattern = step / 2;
        let mut inst_iter = instances.into_iter();

        // Calibration: probability that an access block is locked, and the
        // conditional deeper-nesting probabilities, from Table 2.
        let p1 = (w.paper.pct_ge1 / 100.0).clamp(0.0, 1.0);
        let p2_given_1 = if w.paper.pct_ge1 > 0.0 {
            (w.paper.pct_ge2 / w.paper.pct_ge1).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let p3_given_2 = if w.paper.pct_ge2 > 0.0 {
            (w.paper.pct_ge3 / w.paper.pct_ge2).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let burst_target = w.burst_target().min(MAX_BURST as f64);

        while b.len() < body_events {
            if b.len() >= next_pattern {
                if let Some((kind, site)) = inst_iter.next() {
                    let team = self.pick_team(&workers, kind.threads_needed());
                    emit(&mut b, kind, site, &team, &mut alloc);
                    next_pattern += step;
                } else {
                    next_pattern = usize::MAX;
                }
            }
            let t = workers[self.rng.gen_range(0..workers.len())];
            if self.rng.gen_bool(p1) {
                self.locked_block(
                    &mut b,
                    t,
                    p2_given_1,
                    p3_given_2,
                    burst_target,
                    n_global_locks,
                    &global_lock,
                    &private_lock,
                    &shared_var,
                    &private_var,
                    &body_loc,
                );
            } else if self.rng.gen_bool(0.1) {
                // Read-shared data access (drives the shared-read FTO cases).
                let v = read_shared_var(self.rng.gen_range(0..READ_SHARED));
                b.push_at(t, Op::Read(v), body_loc(t, 61))
                    .expect("well-formed");
            } else {
                let v = private_var(t, self.rng.gen_range(0..PRIVATE_VARS));
                self.burst(&mut b, t, v, burst_target, &body_loc);
            }
        }

        // Drain any unemitted pattern instances.
        for (kind, site) in inst_iter {
            let team = self.pick_team(&workers, kind.threads_needed());
            emit(&mut b, kind, site, &team, &mut alloc);
        }

        // Epilogue: join all workers.
        for &t in &workers {
            b.push_at(main, Op::Join(t), body_loc(main, 62))
                .expect("join of live thread");
        }
        b.finish()
    }

    fn pick_team(&mut self, workers: &[ThreadId], n: usize) -> Vec<ThreadId> {
        let mut pool: Vec<ThreadId> = workers.to_vec();
        // The main thread can serve as a pattern participant when the worker
        // pool is small (it only runs the prologue/epilogue otherwise).
        if pool.len() < n {
            pool.push(ThreadId::new(0));
        }
        assert!(
            pool.len() >= n,
            "profile has too few threads for a {n}-thread race pattern"
        );
        let mut team = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.rng.gen_range(0..pool.len());
            team.push(pool.swap_remove(i));
        }
        team
    }

    #[allow(clippy::too_many_arguments)]
    fn locked_block(
        &mut self,
        b: &mut TraceBuilder,
        t: ThreadId,
        p2: f64,
        p3: f64,
        burst_target: f64,
        n_global_locks: u32,
        global_lock: &impl Fn(u32) -> LockId,
        private_lock: &impl Fn(ThreadId, u32) -> LockId,
        shared_var: &impl Fn(u32, u32) -> VarId,
        private_var: &impl Fn(ThreadId, u32) -> VarId,
        body_loc: &impl Fn(ThreadId, u32) -> Loc,
    ) {
        let mut depth = 1usize;
        if self.rng.gen_bool(p2) {
            depth = 2;
            if self.rng.gen_bool(p3) {
                depth = 3;
            }
        }
        let g = self.rng.gen_range(0..n_global_locks);
        let mut held = vec![global_lock(g)];
        for i in 0..(depth - 1) {
            held.push(private_lock(t, i as u32));
        }
        // Reader-writer outermost section (`rw_frac`-calibrated profiles):
        // reader-heavy rwlock workloads take the read path ~90% of the time,
        // and contended fast paths occasionally record a failed trylock first
        // (legal here: the thread holds nothing between blocks).
        // Short-circuit so mutex-only profiles (`rw_frac == 0`) consume no
        // RNG draw here — their random streams, and therefore the calibrated
        // Table 2 statistics, are byte-identical to pre-rwlock builds.
        let rw_outer = self.workload.rw_frac > 0.0 && self.rng.gen_bool(self.workload.rw_frac);
        let read_mode = rw_outer && self.rng.gen_bool(0.9);
        if rw_outer && self.rng.gen_bool(0.1) {
            b.push_at(t, Op::TryAcqFail(held[0]), body_loc(t, 39))
                .expect("failed trylock of a lock this thread does not hold");
        }
        for (i, &m) in held.iter().enumerate() {
            // Nested private locks stay exclusive; only the outermost global
            // lock takes reader/writer mode.
            let op = match (i, rw_outer, read_mode) {
                (0, true, true) => Op::AcqRead(m),
                (0, true, false) => Op::AcqWrite(m),
                _ => Op::Acquire(m),
            };
            b.push_at(t, op, body_loc(t, 40 + i as u32))
                .expect("locks are free between blocks");
        }
        // Accesses at full nesting depth: shared data protected by the
        // global lock, plus some private data.
        let sites = self.rng.gen_range(1..=2);
        for _ in 0..sites {
            let (v, shared) = if self.rng.gen_bool(0.7) {
                (shared_var(g, self.rng.gen_range(0..SHARED_PER_LOCK)), true)
            } else {
                (private_var(t, self.rng.gen_range(0..PRIVATE_VARS)), false)
            };
            // Shared data under a read-mode hold must stay read-only, or the
            // body itself would race (read sections don't exclude each other).
            let write_frac = if read_mode && shared {
                0.0
            } else {
                self.workload.write_frac
            };
            self.burst_with(b, t, v, burst_target, write_frac, body_loc);
        }
        for (i, &m) in held.iter().enumerate().rev() {
            b.push_at(t, Op::Release(m), body_loc(t, 50 + i as u32))
                .expect("releasing held lock");
        }
    }

    fn burst(
        &mut self,
        b: &mut TraceBuilder,
        t: ThreadId,
        v: VarId,
        burst_target: f64,
        body_loc: &impl Fn(ThreadId, u32) -> Loc,
    ) {
        self.burst_with(b, t, v, burst_target, self.workload.write_frac, body_loc);
    }

    fn burst_with(
        &mut self,
        b: &mut TraceBuilder,
        t: ThreadId,
        v: VarId,
        burst_target: f64,
        write_frac: f64,
        body_loc: &impl Fn(ThreadId, u32) -> Loc,
    ) {
        // Burst length averaging `burst_target` accesses per epoch.
        let len = 1 + self.rng.gen_range(0..(2.0 * burst_target) as usize + 1);
        let loc_i = self.rng.gen_range(0..32);
        for _ in 0..len.min(MAX_BURST) {
            let op = if self.rng.gen_bool(write_frac) {
                Op::Write(v)
            } else {
                Op::Read(v)
            };
            b.push_at(t, op, body_loc(t, loc_i)).expect("well-formed");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::profiles;
    use smarttrack_detect::{run_detector, Detector, FtoHb, UnoptDc, UnoptWcp, UnoptWdc};

    #[test]
    fn race_mix_shape_matches_table7_ordering() {
        // xalan: HB ≪ WCP < DC = WDC statically distinct races.
        let w = profiles::xalan();
        let tr = w.trace(0.00004, 17);
        let mut hb = FtoHb::new();
        let mut wcp = UnoptWcp::new();
        let mut dc = UnoptDc::new();
        let mut wdc = UnoptWdc::new();
        run_detector(&mut hb, &tr);
        run_detector(&mut wcp, &tr);
        run_detector(&mut dc, &tr);
        run_detector(&mut wdc, &tr);
        let (h, w_, d, wd) = (
            hb.report().static_count(),
            wcp.report().static_count(),
            dc.report().static_count(),
            wdc.report().static_count(),
        );
        assert!(h < w_, "HB {h} < WCP {w_}");
        assert!(w_ < d, "WCP {w_} < DC {d}");
        assert_eq!(d, wd, "DC {d} == WDC {wd} (no false WDC races injected)");
        let (eh, ew, ed, _) = w.races.expected_static();
        assert_eq!(h, eh as usize);
        assert_eq!(w_, ew as usize);
        assert_eq!(d, ed as usize);
    }

    #[test]
    fn race_free_profiles_stay_race_free() {
        for w in [profiles::batik(), profiles::lusearch()] {
            let tr = w.trace(0.0001, 23);
            let mut wdc = UnoptWdc::new();
            run_detector(&mut wdc, &tr);
            assert!(
                wdc.report().is_empty(),
                "{} must be race-free even under WDC, got {}",
                w.name,
                wdc.report()
            );
        }
    }

    #[test]
    fn rwmix_emits_reader_writer_traffic_with_exact_races() {
        use smarttrack_trace::Op;
        let w = profiles::rwmix();
        let tr = w.trace(0.0001, 41);
        let (mut acqr, mut acqw, mut tryf) = (0usize, 0usize, 0usize);
        for e in tr.events() {
            match e.op {
                Op::AcqRead(_) => acqr += 1,
                Op::AcqWrite(_) => acqw += 1,
                Op::TryAcqFail(_) => tryf += 1,
                _ => {}
            }
        }
        assert!(acqr > 0, "rwmix must emit read-mode acquires");
        assert!(acqw > 0, "rwmix must emit write-mode acquires");
        assert!(tryf > 0, "rwmix must emit failed trylocks");
        assert!(
            acqr > 4 * acqw,
            "rwmix is reader-heavy: {acqr} read-mode vs {acqw} write-mode"
        );
        // The injected races are exactly the expected ones: the reader-heavy
        // body itself is race-free (read sections only read shared data).
        let mut hb = FtoHb::new();
        let mut wdc = UnoptWdc::new();
        run_detector(&mut hb, &tr);
        run_detector(&mut wdc, &tr);
        let (eh, _, _, ewd) = w.races.expected_static();
        assert_eq!(hb.report().static_count(), eh as usize);
        assert_eq!(wdc.report().static_count(), ewd as usize);
    }

    #[test]
    fn dynamic_counts_scale_with_repeats() {
        let w = profiles::avrora(); // 6 sites, 12 repeats at reference scale
        let scale = 0.00002;
        let tr = w.trace(scale, 3);
        let mut hb = FtoHb::new();
        run_detector(&mut hb, &tr);
        assert_eq!(hb.report().static_count(), 6);
        assert_eq!(
            hb.report().dynamic_count(),
            6 * w.effective_repeats(scale) as usize
        );
        assert!(
            w.effective_repeats(0.0002) > w.effective_repeats(scale),
            "repeats grow with scale"
        );
    }
}
