//! Calibrated multi-trace corpora for batch analysis, tests, and benches.
//!
//! A corpus is what the batch layer (`smarttrack_detect::EnginePool`, the
//! CLI `batch` command) consumes: many independent traces analyzed
//! concurrently and aggregated into one report. This module emits a
//! *mixed* corpus from the two workloads bracketing the paper's analysis
//! cost spectrum — lock-saturated xalan (the biggest beneficiary of
//! SmartTrack's CCS optimizations) and same-epoch-heavy avrora — so a
//! batch over it exercises both the slowest and the cheapest per-event
//! paths.

use smarttrack_trace::Trace;

use crate::profile::profiles;

/// The profiles a [`corpus`] mixes, in emission order per seed.
pub fn corpus_profiles() -> Vec<crate::Workload> {
    vec![profiles::xalan(), profiles::avrora()]
}

/// Emits a labeled mixed corpus: for each seed, one trace per
/// [`corpus_profiles`] workload at `scale` (labels are
/// `"<profile>-s<seed>"`). Deterministic: same `(scale, seeds)` → same
/// traces in the same order. With `n` seeds the corpus holds `2n` traces.
///
/// # Examples
///
/// ```
/// let corpus = smarttrack_workloads::corpus(2e-6, &[1, 2]);
/// assert_eq!(corpus.len(), 4);
/// assert_eq!(corpus[0].0, "xalan-s1");
/// assert!(corpus.iter().all(|(_, trace)| trace.len() > 100));
/// ```
///
/// # Panics
///
/// Panics if `scale` is too small to produce non-empty traces (see
/// [`crate::Workload::trace`]).
pub fn corpus(scale: f64, seeds: &[u64]) -> Vec<(String, Trace)> {
    seeds
        .iter()
        .flat_map(|&seed| {
            corpus_profiles().into_iter().map(move |workload| {
                (
                    format!("{}-s{seed}", workload.name),
                    workload.trace(scale, seed),
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_labeled() {
        let a = corpus(2e-6, &[7, 8]);
        let b = corpus(2e-6, &[7, 8]);
        assert_eq!(a.len(), 4);
        assert_eq!(
            a.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            ["xalan-s7", "avrora-s7", "xalan-s8", "avrora-s8"]
        );
        for ((la, ta), (lb, tb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(ta, tb);
        }
        // Different seeds produce different traces under the same label
        // scheme.
        let c = corpus(2e-6, &[9]);
        assert_ne!(a[0].1, c[0].1);
    }

    #[test]
    fn corpus_mixes_the_cost_spectrum() {
        use smarttrack_trace::stats::TraceStats;
        let traces = corpus(2e-5, &[3]);
        let lock_pct = |t: &Trace| TraceStats::compute(t).pct_nsea_holding(1);
        let (xalan, avrora) = (lock_pct(&traces[0].1), lock_pct(&traces[1].1));
        assert!(
            xalan > avrora + 30.0,
            "xalan ({xalan:.1}%) must be far more lock-bound than avrora ({avrora:.1}%)"
        );
    }
}
