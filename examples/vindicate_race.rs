//! Vindication in action: separating true predictable races from false
//! WDC reports.
//!
//! ```text
//! cargo run --example vindicate_race
//! ```
//!
//! WDC is the cheapest predictive relation but may over-report (paper §3).
//! The paper's answer is vindication: attempt to construct a *witness* — a
//! feasible reordering of the observed trace in which the two accesses are
//! adjacent. Figure 2's WDC-race vindicates; Figure 3's is a false race and
//! never does. An exhaustive oracle double-checks both verdicts here.

use smarttrack::trace::fmt::render_columns;
use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_trace::{paper, Trace};
use smarttrack_vindicate::{
    vindicate_first_race, OracleResult, PredictableRaceOracle, VindicationResult,
};

fn investigate(name: &str, trace: &Trace) {
    println!("=== {name} ===\n{}", render_columns(trace));
    let wdc = analyze(
        trace,
        AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack),
    );
    if wdc.report.is_empty() {
        println!("SmartTrack-WDC reports no race.\n");
        return;
    }
    let race = &wdc.report.races()[0];
    println!("SmartTrack-WDC reports: {race}");

    match vindicate_first_race(trace, &wdc.report) {
        Some(VindicationResult::Race(witness)) => {
            println!(
                "vindication: TRUE race — witness reordering:\n{}",
                render_columns(&witness.to_trace(trace))
            );
        }
        Some(VindicationResult::Unknown) => {
            println!("vindication: no witness found (suspected false race)");
        }
        None => println!("vindication: nothing to check"),
    }

    let oracle = PredictableRaceOracle::new(trace);
    match oracle.any_predictable_race() {
        OracleResult::Race(a, b) => println!("oracle: predictable race exists ({a}, {b})\n"),
        OracleResult::NoRace => println!("oracle: NO predictable race — WDC over-reported\n"),
        OracleResult::Unknown => println!("oracle: inconclusive (budget)\n"),
    }
}

fn main() {
    investigate("Figure 2 (true DC/WDC race)", &paper::figure2());
    investigate("Figure 3 (false WDC race)", &paper::figure3());
}
