//! Quickstart: stream an execution through the `Engine`/`Session` API and
//! watch SmartTrack predict a race that plain happens-before analysis
//! misses.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program below is the paper's Figure 1: thread 0 reads `x` and then
//! logs something under a lock; thread 1 takes the same lock for an unrelated
//! read and then writes `x`. In the observed schedule the lock orders the two
//! `x` accesses, so HB analysis is silent — but nothing *forces* that order,
//! and SmartTrack predicts the race from the single observed run.
//!
//! The engine fans four analyses out over a *single pass* of the event
//! stream, and a race sink prints each race the moment its lane detects it —
//! the paper's online deployment shape, where the application is still
//! running when the race surfaces.

use smarttrack::trace::fmt::render_columns;
use smarttrack::{AnalysisConfig, Engine, OptLevel, RaceNotice, Relation};
use smarttrack_runtime::{Program, SchedulePolicy, Scheduler, ThreadSpec};
use smarttrack_trace::{LockId, VarId};
use smarttrack_vindicate::{vindicate_first_race, VindicationResult};

fn main() {
    let x = VarId::new(0); // unprotected shared data
    let log_buf = VarId::new(1); // lock-protected log buffer
    let scratch = VarId::new(2);
    let log_lock = LockId::new(0);

    let program = Program::new(vec![
        ThreadSpec::new()
            .read(x) // racy read
            .acquire(log_lock)
            .write(log_buf) // log something
            .release(log_lock),
        ThreadSpec::new()
            .acquire(log_lock)
            .read(scratch) // unrelated work under the same lock
            .release(log_lock)
            .write(x), // racy write
    ]);

    let trace = Scheduler::new(&program, SchedulePolicy::ProgramOrder)
        .run(|_, _| {})
        .expect("executes without deadlock");

    println!("Observed execution:\n{}", render_columns(&trace));

    // One engine, four analyses, one pass over the stream.
    let engine = Engine::builder()
        .relation(Relation::Dc)
        .opt_level(OptLevel::SmartTrack)
        .fanout([
            AnalysisConfig::new(Relation::Hb, OptLevel::Fto),
            AnalysisConfig::new(Relation::Wcp, OptLevel::SmartTrack),
            AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack),
        ])
        .build()
        .expect("all selected cells exist in Table 1");

    let mut session = engine.open();
    // Races surface the moment a lane detects them, not at end-of-trace.
    session.set_sink(|notice: &RaceNotice<'_>| {
        println!(
            "  [online] {:<14} flagged {} mid-stream",
            notice.analysis, notice.race
        );
    });

    println!("Streaming {} events through the session…", trace.len());
    for &event in trace.events() {
        session.feed(event).expect("well-formed stream");
    }

    println!("\nFinal verdicts:");
    let outcomes = session.finish();
    for outcome in &outcomes {
        println!(
            "{:<16} → {} ({} race(s))",
            outcome.name,
            if outcome.report.is_empty() {
                "no race"
            } else {
                "RACE"
            },
            outcome.report.dynamic_count()
        );
    }

    // The predictive race is real: construct and print a witness from the
    // primary (SmartTrack-DC) lane's report.
    match vindicate_first_race(&trace, &outcomes[0].report) {
        Some(VindicationResult::Race(witness)) => {
            println!(
                "\nVerified witness (a feasible reordering exposing the race):\n{}",
                render_columns(&witness.to_trace(&trace))
            );
        }
        Some(VindicationResult::Unknown) => println!("\ncould not vindicate (unexpected here)"),
        None => println!("\nno race to vindicate"),
    }
}
