//! Quickstart: find a predictable race that plain happens-before analysis
//! misses.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program below is the paper's Figure 1: thread 0 reads `x` and then
//! logs something under a lock; thread 1 takes the same lock for an unrelated
//! read and then writes `x`. In the observed schedule the lock orders the two
//! `x` accesses, so HB analysis is silent — but nothing *forces* that order,
//! and SmartTrack predicts the race from the single observed run.

use smarttrack::trace::fmt::render_columns;
use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_runtime::{Program, SchedulePolicy, Scheduler, ThreadSpec};
use smarttrack_trace::{LockId, VarId};
use smarttrack_vindicate::{vindicate_first_race, VindicationResult};

fn main() {
    let x = VarId::new(0); // unprotected shared data
    let log_buf = VarId::new(1); // lock-protected log buffer
    let scratch = VarId::new(2);
    let log_lock = LockId::new(0);

    let program = Program::new(vec![
        ThreadSpec::new()
            .read(x) // racy read
            .acquire(log_lock)
            .write(log_buf) // log something
            .release(log_lock),
        ThreadSpec::new()
            .acquire(log_lock)
            .read(scratch) // unrelated work under the same lock
            .release(log_lock)
            .write(x), // racy write
    ]);

    let trace = Scheduler::new(&program, SchedulePolicy::ProgramOrder)
        .run(|_, _| {})
        .expect("executes without deadlock");

    println!("Observed execution:\n{}", render_columns(&trace));

    for (relation, level) in [
        (Relation::Hb, OptLevel::Fto),
        (Relation::Wcp, OptLevel::SmartTrack),
        (Relation::Dc, OptLevel::SmartTrack),
        (Relation::Wdc, OptLevel::SmartTrack),
    ] {
        let outcome = analyze(&trace, AnalysisConfig::new(relation, level));
        println!(
            "{:<16} → {} ({} race(s))",
            outcome.name,
            if outcome.report.is_empty() {
                "no race"
            } else {
                "RACE"
            },
            outcome.report.dynamic_count()
        );
    }

    // The predictive race is real: construct and print a witness.
    let outcome = analyze(
        &trace,
        AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
    );
    match vindicate_first_race(&trace, &outcome.report) {
        Some(VindicationResult::Race(witness)) => {
            println!(
                "\nVerified witness (a feasible reordering exposing the race):\n{}",
                render_columns(&witness.to_trace(&trace))
            );
        }
        Some(VindicationResult::Unknown) => println!("\ncould not vindicate (unexpected here)"),
        None => println!("\nno race to vindicate"),
    }
}
