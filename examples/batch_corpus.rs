//! Corpus-scale batch analysis: record a corpus of executions to disk,
//! then analyze all of it in parallel with an `EnginePool` and read one
//! aggregated, deduplicated race report — the ingestion-service shape of
//! the ROADMAP's production deployment (many users' recorded traces, one
//! report), equivalent to `smarttrack batch <dir> --out report.json`.
//!
//! ```text
//! cargo run --release --example batch_corpus [dir-or-glob]
//! ```
//!
//! Without an argument, the example first writes a small calibrated
//! corpus (mixed xalan + avrora, two seeds, as STB files) to a temp
//! directory. With one, it batches whatever trace files the directory or
//! `*`-glob names — the same expansion rules as the CLI
//! ([`smarttrack_trace::formats::corpus_paths`]).

use smarttrack::{AnalysisConfig, BatchJob, Engine, EnginePool};
use smarttrack_trace::formats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = match std::env::args().nth(1) {
        Some(arg) => arg,
        None => {
            // Record: a mixed corpus bracketing the analysis cost spectrum
            // (lock-saturated xalan, same-epoch-heavy avrora).
            let dir = std::env::temp_dir().join("smarttrack-batch-corpus");
            std::fs::create_dir_all(&dir)?;
            for (label, trace) in smarttrack_workloads::corpus(2e-6, &[1, 2]) {
                smarttrack_trace::binary::write_stb_file(&trace, dir.join(format!("{label}.stb")))?;
            }
            println!("recorded a 4-trace corpus to {}\n", dir.display());
            dir.display().to_string()
        }
    };

    let paths = formats::corpus_paths(&arg)?;
    if paths.is_empty() {
        return Err(format!("{arg}: no trace files matched").into());
    }

    // One engine (the CLI's default selection: the HB baseline plus the
    // three SmartTrack-optimized predictive analyses), one pool sized to
    // the machine, one streaming session per file. STB members stream
    // chunk by chunk; a corrupt file would fail only its own row.
    let configs: Vec<AnalysisConfig> = ["fto-hb", "st-wcp", "st-dc", "st-wdc"]
        .into_iter()
        .map(|name| name.parse().expect("known analysis"))
        .collect();
    let engine = Engine::builder().fanout(configs).build()?;
    let pool = EnginePool::new(engine);
    println!(
        "batching {} file(s) over {} worker(s)…\n",
        paths.len(),
        pool.workers()
    );

    // Watch races arrive live from whichever worker finds them first,
    // then print the deterministic aggregated report.
    let (report, stats) = pool.run_observed(
        paths.into_iter().map(BatchJob::from_path).collect(),
        |race| {
            println!("live: {} in {} — {}", race.analysis, race.label, race.race);
        },
    );
    println!(
        "\n{report}\npeak resident sessions: {} (≤ {} workers)",
        stats.peak_resident_sessions, stats.workers
    );
    println!(
        "machine-readable: CorpusReport::to_json(), {} bytes",
        report.to_json().len()
    );
    Ok(())
}
