//! The paper's §6 comparison, run live: bounded-window predictive analysis
//! (the SMT-based related work, which "analyzes bounded windows of
//! execution, typically missing races that are more than a few thousand
//! events apart") versus the unbounded partial-order analyses this paper
//! optimizes.
//!
//! ```text
//! cargo run --release --example windowed_vs_unbounded
//! ```
//!
//! Part 1 sweeps the distance between a predictable race's two accesses and
//! shows the windowed analysis missing the race as soon as the distance
//! exceeds its window, while SmartTrack-WDC finds it at every distance in
//! one linear pass. Part 2 shows why the windows cannot simply be enlarged:
//! per-window exhaustive-search cost grows steeply with window size.

use std::time::Instant;

use smarttrack_detect::{run_detector, Detector, SmartTrackWdc};
use smarttrack_vindicate::{WindowedConfig, WindowedRaceAnalysis};
use smarttrack_workloads::{distant_race_trace, profiles};

fn main() {
    println!("== Part 1: race detection vs. distance between the racing accesses ==");
    println!("   (window = 512 events, 50% overlap; SmartTrack-WDC is unbounded)\n");
    println!(
        "{:>10} {:>14} {:>16} {:>18}",
        "distance", "windowed", "SmartTrack-WDC", "windowed states"
    );
    for distance in [100usize, 400, 1_000, 4_000, 20_000] {
        let (trace, _, _) = distant_race_trace(distance);

        let windowed =
            WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(512)).analyze();

        let mut wdc = SmartTrackWdc::new();
        run_detector(&mut wdc, &trace);

        println!(
            "{:>10} {:>14} {:>16} {:>18}",
            distance,
            if windowed.races().is_empty() {
                "MISSED"
            } else {
                "found"
            },
            if wdc.report().dynamic_count() > 0 {
                "found"
            } else {
                "MISSED"
            },
            windowed.states_explored(),
        );
    }

    println!("\n== Part 2: why windows stay small — cost vs. window size ==");
    println!("   (avrora-profile workload; disjoint windows; exhaustive per-pair checks)\n");
    let trace = profiles::avrora().trace(0.000_002, 7);
    println!(
        "   workload: {} events, {} threads",
        trace.len(),
        trace.num_threads()
    );
    println!(
        "\n{:>8} {:>10} {:>14} {:>12} {:>10}",
        "window", "queries", "states", "races", "time"
    );
    for window in [32usize, 64, 128, 256, 512] {
        let config = WindowedConfig {
            window,
            stride: window,
            budget_per_query: 50_000,
        };
        let start = Instant::now();
        let report = WindowedRaceAnalysis::new(&trace, config).analyze();
        let elapsed = start.elapsed();
        println!(
            "{:>8} {:>10} {:>14} {:>12} {:>9.1?}",
            window,
            report.queries(),
            report.states_explored(),
            report.races().len(),
            elapsed,
        );
    }

    let start = Instant::now();
    let mut wdc = SmartTrackWdc::new();
    run_detector(&mut wdc, &trace);
    let elapsed = start.elapsed();
    println!(
        "\n   SmartTrack-WDC (unbounded, linear): {} dynamic races in {:.1?}",
        wdc.report().dynamic_count(),
        elapsed
    );
}
