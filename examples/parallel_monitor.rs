//! Online parallel race detection: analysis hooks running *inside* the
//! application threads, the way the paper's RoadRunner-based implementations
//! deploy (§5.1).
//!
//! ```text
//! cargo run --release --example parallel_monitor
//! ```
//!
//! A config hot-reload service — the paper's Figure 1 pattern in the wild.
//! A worker thread reads the current config *without synchronization* and
//! then records a metric under the stats lock; the reloader thread records
//! its own metric under the same lock and then *writes* the config, again
//! unsynchronized. The stats lock makes most observed schedules look
//! ordered, so plain happens-before analysis only reports the race when the
//! scheduler happens to interleave the accesses directly. The predictive
//! WDC analysis proves the race from **every** schedule: the critical
//! sections touch different metrics, so nothing actually orders the config
//! accesses.
//!
//! Both analyses run online, on real OS threads, with lock-free same-epoch
//! fast paths and fine-grained metadata locks — and the run also records the
//! observed linearization and replays it through the sequential detector to
//! show the two views agree.

use std::collections::BTreeSet;

use smarttrack_detect::{run_detector, Detector, SmartTrackWdc};
use smarttrack_parallel::{
    run_online, ConcurrentFtoHb, ConcurrentSmartTrackWdc, OnlineAnalysis, WorldSpec,
};
use smarttrack_runtime::{Program, ThreadSpec};
use smarttrack_trace::{LockId, VarId};

const RELOADS: u32 = 24;

fn service_program() -> Program {
    let stats_lock = LockId::new(0);
    let worker_metric = VarId::new(100); // only the worker touches this
    let reload_metric = VarId::new(101); // only the reloader touches this
    let config = |i: u32| VarId::new(i); // one slot per reload generation

    let mut worker = ThreadSpec::new();
    let mut reloader = ThreadSpec::new();
    for i in 0..RELOADS {
        // Worker: read config unprotected, then log a metric under the lock.
        worker = worker
            .read(config(i))
            .acquire(stats_lock)
            .read(worker_metric)
            .write(worker_metric)
            .release(stats_lock);
        // Reloader: log its own metric under the lock, then install the new
        // config unprotected. The two critical sections touch *different*
        // metrics, so no conflicting-critical-section ordering arises —
        // exactly Figure 1.
        reloader = reloader
            .acquire(stats_lock)
            .read(reload_metric)
            .write(reload_metric)
            .release(stats_lock)
            .write(config(i));
    }
    Program::new(vec![worker, reloader])
}

fn main() {
    let program = service_program();
    let spec = WorldSpec::of_program(&program);

    // Non-predictive baseline: FTO-HB, online. Schedule-dependent.
    let hb = ConcurrentFtoHb::new(spec);
    let hb_run = run_online(&program, &hb, false).expect("program is lock-correct");

    // Predictive: SmartTrack-WDC, online, plus linearization recording.
    let wdc = ConcurrentSmartTrackWdc::new(spec);
    let wdc_run = run_online(&program, &wdc, true).expect("program is lock-correct");

    println!(
        "service ran {} events on 2 threads; {} config reloads\n",
        wdc_run.events, RELOADS
    );
    println!(
        "{:<28} {} statically distinct / {} dynamic races",
        hb.name(),
        hb_run.report.static_count(),
        hb_run.report.dynamic_count()
    );
    println!(
        "{:<28} {} statically distinct / {} dynamic races",
        wdc.name(),
        wdc_run.report.static_count(),
        wdc_run.report.dynamic_count()
    );

    // Every config slot races under WDC, in *every* schedule: the paper's
    // predictive-coverage claim, live.
    let racy_vars: BTreeSet<u32> = wdc_run.report.races().iter().map(|r| r.var.raw()).collect();
    let expected: BTreeSet<u32> = (0..RELOADS).collect();
    assert_eq!(
        racy_vars, expected,
        "WDC proves the race on every config generation from any one run"
    );
    println!(
        "\npredictive analysis caught the config race on all {RELOADS} generations;\n\
         HB caught {} of them in this schedule (re-run for a different draw)",
        hb_run.report.static_count()
    );

    // The recorded linearization replayed offline agrees with the online
    // view — the §4.3 detect-then-check deployment.
    let recorded = wdc_run.recorded.expect("recording was requested");
    let mut offline = SmartTrackWdc::new();
    run_detector(&mut offline, &recorded);
    let offline_vars: BTreeSet<u32> = offline
        .report()
        .races()
        .iter()
        .map(|r| r.var.raw())
        .collect();
    assert_eq!(offline_vars, expected);
    println!(
        "offline replay of the observed linearization agrees: {} static races",
        offline.report().static_count()
    );
}
