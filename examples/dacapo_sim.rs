//! Runs the calibrated DaCapo-style workloads and compares detector costs —
//! a miniature of the paper's evaluation loop (§5.2–5.5).
//!
//! ```text
//! cargo run --release --example dacapo_sim [scale]
//! ```

use std::time::Instant;

use smarttrack::trace::stats::TraceStats;
use smarttrack::{AnalysisConfig, OptLevel, Relation};
use smarttrack_detect::run_detector;
use smarttrack_workloads::profiles;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2e-5);

    let configs = [
        AnalysisConfig::new(Relation::Hb, OptLevel::Fto),
        AnalysisConfig::new(Relation::Dc, OptLevel::Unopt),
        AnalysisConfig::new(Relation::Dc, OptLevel::Fto),
        AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
    ];
    println!(
        "{:<10} {:>9} {:>7}  {:>12} {:>12} {:>12} {:>12}",
        "program", "events", "lock%", "FTO-HB", "Unopt-DC", "FTO-DC", "ST-DC"
    );
    for w in profiles::all() {
        let trace = w.trace(scale, 42);
        let stats = TraceStats::compute(&trace);
        print!(
            "{:<10} {:>9} {:>6.1}%",
            w.name,
            trace.len(),
            stats.pct_nsea_holding(1)
        );
        for config in configs {
            let mut det = config.detector().expect("valid");
            let start = Instant::now();
            run_detector(det.as_mut(), &trace);
            let elapsed = start.elapsed();
            print!(
                "  {:>7.1}ms/{:<3}",
                elapsed.as_secs_f64() * 1e3,
                det.report().static_count()
            );
        }
        println!();
    }
    println!("\ncolumns: time / statically distinct races");
    println!("expected shape (paper §5.5): ST-DC ≈ FTO-HB ≪ Unopt-DC, most pronounced");
    println!("for lock-heavy programs (h2, xalan); race counts identical across levels.");
}
