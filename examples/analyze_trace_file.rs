//! Offline trace analysis: record an execution to a file, load it later, and
//! run the full analysis pipeline — the workflow the paper's §4.3 deployment
//! model implies (record cheaply in production, analyze/replay offline).
//!
//! ```text
//! cargo run --example analyze_trace_file [path/to/trace]
//! ```
//!
//! The trace file may be in any of the four supported formats — native
//! line text, STD/`RAPID`, CSV, or the compact STB binary format — and is
//! auto-detected the same way the `smarttrack` CLI does it: magic-byte
//! sniffing first (STB announces itself), then the file extension
//! (`.stb`, `.std`/`.rapid`, `.csv`, else native). The CLI's `--format`
//! flag forces a format the same way passing one to
//! [`smarttrack_trace::formats::parse_bytes`] does here.
//!
//! Without an argument, the example records a fresh execution of the
//! Figure 1 program to a temp `.stb` file first — the format a production
//! recorder would pick: ~2–3 bytes per event instead of tens, and
//! streamable back in bounded memory (see `docs/TRACE_FORMATS.md`).

use smarttrack::two_phase::detect_then_check;
use smarttrack::Relation;
use smarttrack_runtime::{execute, Program, SchedulePolicy, ThreadSpec};
use smarttrack_trace::{binary, formats, LockId, VarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Record: run the program and persist the observed trace as STB
            // (the extension picks the binary format; `.trace` would have
            // written native text).
            let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
            let m = LockId::new(0);
            let program = Program::new(vec![
                ThreadSpec::new().read(x).acquire(m).write(y).release(m),
                ThreadSpec::new().acquire(m).read(z).release(m).write(x),
            ]);
            let trace = execute(&program, SchedulePolicy::ProgramOrder)?;
            let path = std::env::temp_dir().join("smarttrack-recorded.stb");
            binary::write_stb_file(&trace, &path)?;
            println!(
                "recorded {} events to {} ({} bytes of STB)",
                trace.len(),
                path.display(),
                std::fs::metadata(&path)?.len()
            );
            path
        }
    };

    // Analyze: load the trace — whatever its format — and run the
    // two-phase pipeline (§4.3): SmartTrack-DC detection, then
    // graph-building replay + vindication only if races were found.
    let trace = formats::read_file(&path)?;
    println!("loaded {} events from {}", trace.len(), path.display());
    let outcome = detect_then_check(&trace, Relation::Dc);
    println!(
        "phase 1 ({}): {}",
        outcome.detection.name, outcome.detection.report
    );
    if outcome.replayed {
        println!(
            "phase 2 (replay + vindication): {} verified, {} unverified",
            outcome.verified(),
            outcome.unverified()
        );
        for c in &outcome.checked {
            match (&c.prior, &c.witness) {
                (Some(p), Some(_)) => println!("  race ({p}, {}): VERIFIED witness", c.event),
                (Some(p), None) => println!("  race ({p}, {}): unverified", c.event),
                (None, _) => println!("  race at {}: no prior access found", c.event),
            }
        }
    } else {
        println!("phase 2 skipped: no races detected");
    }
    Ok(())
}
