//! Runs the full Table 1 analysis matrix over the paper's example executions
//! and a synthetic xalan-style workload, printing the detection matrix,
//! plus the §6 Eraser lockset baseline (which false-positives wherever the
//! lock discipline is violated without a predictable race).
//!
//! ```text
//! cargo run --release --example compare_analyses
//! ```

use smarttrack::{analyze_all, AnalysisOutcome};
use smarttrack_detect::EraserLockset;
use smarttrack_trace::{paper, Trace};
use smarttrack_workloads::profiles;

fn print_matrix(title: &str, outcomes: &[AnalysisOutcome], trace: &Trace) {
    println!("{title}");
    for o in outcomes {
        println!(
            "  {:<16} {:>4} static / {:>6} dynamic races   (peak metadata: {} KiB)",
            o.name,
            o.report.static_count(),
            o.report.dynamic_count(),
            o.summary.peak_footprint_bytes / 1024,
        );
    }
    let mut eraser = EraserLockset::new();
    eraser.run(trace);
    println!(
        "  {:<16} {:>4} static / {:>6} dynamic violations (lockset discipline; §6 baseline)",
        "Eraser",
        eraser.report().static_count(),
        eraser.report().dynamic_count(),
    );
    println!();
}

fn main() {
    for (name, trace) in paper::all_figures() {
        print_matrix(
            &format!("paper {name} ({} events)", trace.len()),
            &analyze_all(&trace),
            &trace,
        );
    }

    let xalan = profiles::xalan();
    let trace = xalan.trace(2e-5, 7);
    println!(
        "xalan-style workload: {} events, {} threads (expected static races: HB {}, WCP {}, DC {}, WDC {})",
        trace.len(),
        trace.num_threads(),
        xalan.races.expected_static().0,
        xalan.races.expected_static().1,
        xalan.races.expected_static().2,
        xalan.races.expected_static().3,
    );
    print_matrix("", &analyze_all(&trace), &trace);
}
