//! Live capture demo: record a real multithreaded execution into STB and
//! analyze it — the paper's online pipeline (§5.1) end to end in-process.
//!
//! ```text
//! cargo run --example capture_demo
//! ```
//!
//! A producer/consumer pair synchronizes through a captured mutex+condvar,
//! then races on purpose on one extra variable. The capture session
//! records the execution into an in-memory STB stream, which every Table-1
//! analysis then replays — the deliberate race is found by all of them,
//! the condvar-ordered handoff by none.

use std::sync::Arc;

use smarttrack_capture::{CaptureConfig, CaptureSession, CaptureSink, Condvar, Mutex, Shared};
use smarttrack_detect::{analyze, AnalysisConfig};
use smarttrack_trace::binary::from_stb_bytes;

fn main() {
    let (sink, bytes) = CaptureSink::memory();
    let session = CaptureSession::new(sink, CaptureConfig::default());

    // Handoff state: `ready` is read under the monitor, `payload` is
    // published before the notifying critical section (race-free), and
    // `sloppy` is written after it (a real race).
    let monitor = Arc::new(Mutex::new(&session, ()));
    let ready = Arc::new(Shared::new(&session, false));
    let cv = Arc::new(Condvar::new(&session));
    let payload = Arc::new(Shared::new(&session, 0u32));
    let sloppy = Arc::new(Shared::new(&session, 0u32));

    let producer = {
        let (monitor, ready, cv) = (monitor.clone(), ready.clone(), cv.clone());
        let (payload, sloppy) = (payload.clone(), sloppy.clone());
        session.spawn(move || {
            payload.set(42);
            {
                let _g = monitor.lock();
                ready.set(true);
                cv.notify_one();
            }
            sloppy.set(7); // after the release: unordered with the consumer
        })
    };
    let consumer = {
        let (monitor, ready, cv) = (monitor.clone(), ready.clone(), cv.clone());
        let (payload, sloppy) = (payload.clone(), sloppy.clone());
        session.spawn(move || {
            let mut g = monitor.lock();
            while !ready.get() {
                g = cv.wait(g);
            }
            drop(g);
            let got = payload.get(); // ordered: race-free
            let _ = sloppy.get(); // unordered: races with the late write
            assert_eq!(got, 42);
        })
    };
    producer.join().expect("producer");
    consumer.join().expect("consumer");

    let report = session.finish().expect("finish capture");
    println!(
        "captured {} events from {} threads",
        report.events, report.threads
    );

    let stb = bytes.lock().expect("memory sink").clone();
    let trace = from_stb_bytes(&stb).expect("captured stream is validator-clean");
    println!("decoded {} events back from STB", trace.len());

    for config in AnalysisConfig::table1() {
        let outcome = analyze(&trace, config);
        println!(
            "  {config:<12} -> {} statically-distinct race(s)",
            outcome.report.static_count()
        );
    }
}
