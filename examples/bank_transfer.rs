//! A realistic racy program: a bank with a check-then-act bug.
//!
//! ```text
//! cargo run --example bank_transfer
//! ```
//!
//! `audit` reads an account balance without the account lock (a classic
//! "it's just a read" bug), while `transfer` updates balances under the lock.
//! Whether HB analysis observes the race depends entirely on the schedule;
//! the predictive analyses find it from *any* schedule. This example runs
//! several schedules and shows HB flickering while SmartTrack-WCP (which is
//! sound: every reported race is a true predictable race) stays stable.

use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_runtime::{Program, SchedulePolicy, Scheduler, ThreadSpec};
use smarttrack_trace::{LockId, VarId};

fn bank_program() -> Program {
    let balance_a = VarId::new(0);
    let balance_b = VarId::new(1);
    let audit_total = VarId::new(2);
    let account_lock = LockId::new(0);

    // Thread 0: two transfers A→B under the account lock.
    let mut transfers = ThreadSpec::new();
    for _ in 0..2 {
        transfers = transfers
            .acquire(account_lock)
            .read(balance_a)
            .write(balance_a)
            .read(balance_b)
            .write(balance_b)
            .release(account_lock);
    }

    // Thread 1: audit — sums balances, but reads `balance_a` *outside* the
    // lock before locking to read `balance_b` (the bug).
    let audit = ThreadSpec::new()
        .read(balance_a) // ← unprotected read: races with the transfers
        .acquire(account_lock)
        .read(balance_b)
        .release(account_lock)
        .write(audit_total);

    Program::new(vec![transfers, audit])
}

fn main() {
    let program = bank_program();
    println!("schedule    FTO-HB    ST-WCP (sound predictive)");
    println!("----------------------------------------------");
    let mut hb_found = 0;
    let mut wcp_found = 0;
    let schedules = 8;
    for seed in 0..schedules {
        let trace = Scheduler::new(&program, SchedulePolicy::Random(seed))
            .run(|_, _| {})
            .expect("no deadlock");
        let hb = analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Fto));
        let wcp = analyze(
            &trace,
            AnalysisConfig::new(Relation::Wcp, OptLevel::SmartTrack),
        );
        hb_found += usize::from(!hb.report.is_empty());
        wcp_found += usize::from(!wcp.report.is_empty());
        println!(
            "seed {seed:<2}     {:<9} {}",
            if hb.report.is_empty() {
                "silent"
            } else {
                "race"
            },
            if wcp.report.is_empty() {
                "silent"
            } else {
                "race"
            },
        );
    }
    println!(
        "\nHB saw the bug in {hb_found}/{schedules} schedules; \
         predictive analysis in {wcp_found}/{schedules}."
    );
    assert_eq!(
        wcp_found, schedules as usize,
        "prediction is schedule-independent here"
    );
}
