//! STB cross-version compatibility battery.
//!
//! The v2 codec revision (condvar/barrier op tags, 4-bit tag field, 7-field
//! header hint) must leave v1 byte streams meaning exactly what they always
//! meant, in both directions:
//!
//! * **Golden v1 bytes** committed below — produced by the v1 writer at the
//!   revision that introduced v2 — decode byte-for-byte identically to the
//!   traces that produced them, forever. The writer also still *emits*
//!   exactly these bytes for v1-expressible traces, so archived recordings
//!   diff clean against fresh ones.
//! * **Truncation fuzz** — every single-byte truncation of a stream
//!   containing every v2 op tag is a precise error, never a panic or a
//!   silent short decode (extending the v1-only fuzz in `binary.rs`).
//! * **Corruption fuzz** — every single-byte *bit flip* of a v2 stream
//!   either fails to decode or decodes to a well-formed trace; it must
//!   never panic.

use smarttrack_trace::binary::{
    from_stb_bytes, to_stb_bytes, StbError, StbReader, STB_VERSION, STB_VERSION_2,
};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{
    paper, BarrierId, CondId, LockId, Op, ThreadId, Trace, TraceBuilder, VarId,
};

/// `paper::figure1()` as written by the v1 encoder (34 bytes, header hint
/// included). Committed so that a future revision that changes what these
/// bytes decode to — or what the writer emits for this trace — fails here.
const FIGURE1_V1: &[u8] = &[
    0x89, 0x53, 0x54, 0x42, 0x01, 0x01, 0x08, 0x02, 0x03, 0x01, 0x00, 0x14, 0x08, 0x00, 0x04, 0x08,
    0x00, 0x0a, 0x02, 0x29, 0x02, 0x0b, 0x02, 0x01, 0x04, 0x0a, 0x02, 0x28, 0x02, 0x0b, 0x02, 0x39,
    0x02, 0x00,
];

/// `paper::figure3()` as written by the v1 encoder (64 bytes).
const FIGURE3_V1: &[u8] = &[
    0x89, 0x53, 0x54, 0x42, 0x01, 0x01, 0x16, 0x03, 0x03, 0x03, 0x00, 0x32, 0x16, 0x00, 0x07, 0x0a,
    0x00, 0x2a, 0x02, 0x28, 0x00, 0x09, 0x00, 0x0b, 0x00, 0x18, 0x02, 0x1b, 0x02, 0x01, 0x08, 0x2a,
    0x02, 0x28, 0x00, 0x09, 0x00, 0x0b, 0x00, 0x2a, 0x02, 0x28, 0x00, 0x09, 0x00, 0x0b, 0x00, 0x02,
    0x07, 0x3a, 0x02, 0x4a, 0x02, 0x08, 0x00, 0x09, 0x00, 0x0b, 0x00, 0x3b, 0x02, 0x39, 0x02, 0x00,
];

/// A compact trace containing every v2-only op tag (wait, notify,
/// notifyAll, barrier enter, barrier exit) plus every v1 tag.
fn all_tags_trace() -> Trace {
    let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
    let (c0, c1) = (CondId::new(0), CondId::new(1));
    let m = LockId::new(0);
    let bar = BarrierId::new(0);
    let mut b = TraceBuilder::new();
    b.push(t0, Op::Fork(t1)).unwrap();
    b.push(t0, Op::Fork(t2)).unwrap();
    b.push(t0, Op::Write(VarId::new(0))).unwrap();
    b.push(t0, Op::VolatileWrite(VarId::new(0))).unwrap();
    b.push(t1, Op::VolatileRead(VarId::new(0))).unwrap();
    b.push(t0, Op::Notify(c0)).unwrap();
    b.push(t0, Op::NotifyAll(c1)).unwrap();
    b.push(t1, Op::Acquire(m)).unwrap();
    b.push(t1, Op::Wait(c0, m)).unwrap();
    b.push(t1, Op::Read(VarId::new(0))).unwrap();
    b.push(t1, Op::Release(m)).unwrap();
    b.push(t1, Op::BarrierEnter(bar)).unwrap();
    b.push(t2, Op::BarrierEnter(bar)).unwrap();
    b.push(t1, Op::BarrierExit(bar)).unwrap();
    b.push(t2, Op::BarrierExit(bar)).unwrap();
    b.push(t0, Op::Join(t2)).unwrap();
    b.finish()
}

#[test]
fn golden_v1_bytes_decode_identically_under_the_v2_reader() {
    for (name, golden, trace) in [
        ("figure1", FIGURE1_V1, paper::figure1()),
        ("figure3", FIGURE3_V1, paper::figure3()),
    ] {
        assert_eq!(golden[4], STB_VERSION, "{name}: golden bytes are v1");
        let decoded = from_stb_bytes(golden).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, trace, "{name}: golden decode drifted");
        let reader = StbReader::new(golden).unwrap();
        let hint = reader.header().hint.expect("golden streams carry hints");
        assert_eq!(hint.events, trace.len() as u64, "{name}");
        assert_eq!(hint.condvars, 0, "{name}: v1 hints decode zero condvars");
        assert_eq!(hint.barriers, 0, "{name}: v1 hints decode zero barriers");
    }
}

#[test]
fn writer_still_emits_the_golden_v1_bytes() {
    assert_eq!(
        to_stb_bytes(&paper::figure1()),
        FIGURE1_V1,
        "figure1 encoding drifted from the committed v1 bytes"
    );
    assert_eq!(
        to_stb_bytes(&paper::figure3()),
        FIGURE3_V1,
        "figure3 encoding drifted from the committed v1 bytes"
    );
}

#[test]
fn every_new_op_tag_round_trips_in_v2() {
    let trace = all_tags_trace();
    let bytes = to_stb_bytes(&trace);
    assert_eq!(bytes[4], STB_VERSION_2);
    assert_eq!(from_stb_bytes(&bytes).unwrap(), trace);
}

#[test]
fn truncation_anywhere_in_a_v2_stream_is_a_precise_error() {
    let bytes = to_stb_bytes(&all_tags_trace());
    for cut in 0..bytes.len() {
        match from_stb_bytes(&bytes[..cut]) {
            Err(StbError::Truncated { offset, .. }) => {
                assert!(offset <= cut as u64, "offset {offset} past cut {cut}")
            }
            Err(other) => panic!("cut at {cut}: unexpected error {other}"),
            Ok(_) => panic!("cut at {cut}: truncated stream decoded"),
        }
    }
}

#[test]
fn truncation_fuzz_over_random_sync_traces_and_chunk_sizes() {
    use smarttrack_trace::binary::{StbHint, StbWriter};
    for seed in 0..3u64 {
        let trace = RandomTraceSpec::tiny_sync().generate(seed);
        for chunk in [1, 7, 64] {
            let mut w =
                StbWriter::with_hint(Vec::new(), StbHint::of_trace(&trace)).chunk_events(chunk);
            for e in trace.events() {
                w.write(e).unwrap();
            }
            let bytes = w.finish().unwrap();
            for cut in 0..bytes.len() {
                match from_stb_bytes(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(_) => panic!("seed {seed} chunk {chunk}: cut {cut} decoded"),
                }
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_the_v2_decoder() {
    let bytes = to_stb_bytes(&all_tags_trace());
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            // Any outcome but a panic is acceptable: a precise error, or a
            // decode to some other well-formed trace.
            let _ = from_stb_bytes(&mutated);
        }
    }
}

#[test]
fn v2_streams_skip_chunks_with_sync_ops() {
    use smarttrack_trace::binary::{StbHint, StbWriter};
    let trace = RandomTraceSpec::tiny_sync().generate(9);
    let mut w = StbWriter::with_hint(Vec::new(), StbHint::of_trace(&trace)).chunk_events(8);
    for e in trace.events() {
        w.write(e).unwrap();
    }
    let bytes = w.finish().unwrap();
    let mut reader = StbReader::new(&bytes[..]).unwrap();
    let skipped = reader.skip_chunk().unwrap().expect("first chunk");
    assert_eq!(skipped, 8);
    let rest: Result<Vec<_>, _> = (&mut reader).collect();
    assert_eq!(rest.unwrap(), &trace.events()[8..]);
}

#[test]
fn sessions_presize_from_v2_hints() {
    // The v2 header's condvar/barrier cardinalities flow into StreamHint.
    let trace = all_tags_trace();
    let bytes = to_stb_bytes(&trace);
    let reader = StbReader::new(&bytes[..]).unwrap();
    let hint = smarttrack_detect::StreamHint::of_stb_header(reader.header());
    assert_eq!(hint.condvars, Some(trace.num_condvars()));
    assert_eq!(hint.barriers, Some(trace.num_barriers()));
    // And a session fed from the reader matches whole-trace analysis.
    let config = smarttrack::AnalysisConfig::table1()[0];
    let engine = smarttrack::Engine::for_config(config).unwrap();
    let mut session = engine.open_with_hint(hint);
    for event in StbReader::new(&bytes[..]).unwrap() {
        session.feed(event.unwrap()).unwrap();
    }
    let streamed = session.finish_one().report;
    let whole = smarttrack::analyze(&trace, config).report;
    assert_eq!(streamed, whole);
}
