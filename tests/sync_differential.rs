//! Differential fuzz battery for the condvar/barrier synchronization ops —
//! the pin for the event-model extension (`wait`/`ntf`/`nfa`/`bent`/`bext`).
//!
//! Three property families, checked on proptest-randomized traces that mix
//! the new operations with the old ones, on the workload sync patterns, and
//! on the condvar/barrier-heavy calibrated `condsync` workload:
//!
//! 1. **Path equivalence.** For every Table 1 cell, the direct
//!    [`run_detector`] driver, per-event `feed`, whole-stream `feed_batch`,
//!    and the legacy [`analyze`] wrapper produce bit-identical [`Report`]s
//!    on traces containing every new op.
//! 2. **Cross-level agreement.** Every optimization level (FT2/FTO/ST)
//!    agrees with its Unopt oracle on the first race per cell — and on the
//!    trace truncated just after it, reports are bit-identical (the same
//!    contract `tests/opt_equivalence.rs` pins for the old ops).
//! 3. **Relation inclusion.** HB ⊆ WCP ⊆ DC ⊆ WDC (compared up to the
//!    first race) still holds with condvar and barrier ordering in play:
//!    the new ops are *hard* edges in every relation, so they must never
//!    invert the hierarchy.

use proptest::prelude::*;
use smarttrack::{analyze, run_detector, AnalysisConfig, Engine, OptLevel, Relation, Report};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{Op, Trace, TraceBuilder};

/// The optimization levels available for one relation (Table 1 row).
fn levels(relation: Relation) -> Vec<OptLevel> {
    match relation {
        Relation::Hb => vec![OptLevel::Unopt, OptLevel::Epochs, OptLevel::Fto],
        _ => vec![OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack],
    }
}

/// True if the trace exercises at least one of the new synchronization ops.
fn has_sync_ops(trace: &Trace) -> bool {
    trace.events().iter().any(|e| {
        matches!(
            e.op,
            Op::Wait(..)
                | Op::Notify(_)
                | Op::NotifyAll(_)
                | Op::BarrierEnter(_)
                | Op::BarrierExit(_)
        )
    })
}

/// Runs `config` over `trace` through every ingestion path, asserts they all
/// produce bit-identical reports, and returns that report.
fn pinned_report(trace: &Trace, config: AnalysisConfig, label: &str) -> Report {
    let mut det = config.detector().expect("valid Table 1 cell");
    run_detector(det.as_mut(), trace);
    let direct = det.report().clone();

    let legacy = analyze(trace, config);
    assert_eq!(
        legacy.report, direct,
        "{label}: {config} analyze() diverged from run_detector()"
    );

    let engine = Engine::for_config(config).expect("valid Table 1 cell");
    let mut session = engine.open();
    for &event in trace.events() {
        session.feed(event).expect("well-formed event");
    }
    let fed = session.finish_one().report;
    assert_eq!(
        fed, direct,
        "{label}: {config} per-event feed diverged from run_detector()"
    );

    let mut session = engine.open();
    session.feed_batch(trace.events()).expect("well-formed");
    let batched = session.finish_one().report;
    assert_eq!(
        batched, direct,
        "{label}: {config} feed_batch diverged from run_detector()"
    );
    direct
}

/// The trace prefix holding the first `events` events.
///
/// A prefix cut mid-barrier-round or mid-handoff is still well-formed (open
/// rounds are allowed, like open critical sections), so truncation at the
/// first race always revalidates.
fn truncated(trace: &Trace, events: usize) -> Trace {
    let mut b = TraceBuilder::new();
    for ev in &trace.events()[..events] {
        b.push_event(*ev).expect("prefix of a valid trace is valid");
    }
    b.finish()
}

/// Property families 1 and 2 for every cell of one relation.
fn assert_levels_agree(trace: &Trace, relation: Relation, label: &str) {
    let reports: Vec<(OptLevel, Report)> = levels(relation)
        .into_iter()
        .map(|level| {
            let config = AnalysisConfig::new(relation, level);
            (level, pinned_report(trace, config, label))
        })
        .collect();

    let (oracle_level, oracle) = &reports[0];
    assert_eq!(*oracle_level, OptLevel::Unopt, "Unopt is the oracle");
    for (level, report) in &reports[1..] {
        assert_eq!(
            report.first_race_event(),
            oracle.first_race_event(),
            "{label}: {relation} first race differs between Unopt and {level}"
        );
        if oracle.is_empty() {
            assert_eq!(
                report, oracle,
                "{label}: {relation} race-free verdict differs at {level}"
            );
        }
    }

    if let Some(first) = oracle.first_race_event() {
        let cut = truncated(trace, first.index() + 1);
        let mut cut_reports = levels(relation).into_iter().map(|level| {
            let config = AnalysisConfig::new(relation, level);
            (level, pinned_report(&cut, config, label))
        });
        let (_, cut_oracle) = cut_reports.next().expect("at least one level");
        assert_eq!(
            cut_oracle.dynamic_count(),
            1,
            "{label}: prefix has one race"
        );
        for (level, report) in cut_reports {
            assert_eq!(
                report, cut_oracle,
                "{label}: {relation} prefix report differs at {level}"
            );
        }
    }
}

/// Property family 3: the relation hierarchy, compared at first races.
fn assert_inclusion(trace: &Trace, label: &str) {
    let first = |relation| {
        analyze(trace, AnalysisConfig::new(relation, OptLevel::Unopt))
            .report
            .first_race_event()
    };
    let (hb, wcp, dc, wdc) = (
        first(Relation::Hb),
        first(Relation::Wcp),
        first(Relation::Dc),
        first(Relation::Wdc),
    );
    if let Some(h) = hb {
        let w = wcp.unwrap_or_else(|| panic!("{label}: HB-race without a WCP-race"));
        assert!(w <= h, "{label}: WCP first race after HB's ({w:?} > {h:?})");
    }
    if let Some(w) = wcp {
        let d = dc.unwrap_or_else(|| panic!("{label}: WCP-race without a DC-race"));
        assert!(d <= w, "{label}: DC first race after WCP's");
    }
    if let Some(d) = dc {
        let wd = wdc.unwrap_or_else(|| panic!("{label}: DC-race without a WDC-race"));
        assert!(wd <= d, "{label}: WDC first race after DC's");
    }
}

fn assert_everything(trace: &Trace, label: &str) {
    for relation in Relation::ALL {
        assert_levels_agree(trace, relation, label);
    }
    assert_inclusion(trace, label);
}

/// Randomized traces with all five new ops mixed into the usual lock /
/// volatile / fork-join traffic.
fn arb_sync_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        2u32..5,       // threads
        60usize..280,  // events
        2u32..6,       // vars
        1u32..4,       // locks
        1u32..3,       // condvars
        1u32..3,       // barriers
        any::<u64>(),  // seed
        any::<bool>(), // fork_join
    )
        .prop_map(
            |(threads, events, vars, locks, condvars, barriers, seed, fork_join)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        condvars,
                        condvar_prob: 0.12,
                        barriers,
                        barrier_prob: 0.05,
                        acquire_prob: 0.15,
                        release_prob: 0.18,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn randomized_sync_traces_agree_everywhere((spec, seed) in arb_sync_spec()) {
        let trace = spec.generate(seed);
        // The spec's condvar/barrier probabilities make sync-free traces
        // vanishingly rare; the properties hold either way.
        assert_everything(&trace, "random-sync");
    }

    /// Feeding through an STB v2 encode/decode round trip must not change
    /// any cell's report either (the codec is part of the ingestion path).
    #[test]
    fn stb_v2_round_trip_preserves_reports((spec, seed) in arb_sync_spec()) {
        let trace = spec.generate(seed);
        let bytes = smarttrack_trace::binary::to_stb_bytes(&trace);
        let decoded = smarttrack_trace::binary::from_stb_bytes(&bytes).expect("round trip");
        for config in AnalysisConfig::table1() {
            let a = analyze(&trace, config).report;
            let b = analyze(&decoded, config).report;
            prop_assert_eq!(a, b, "{} diverged across the STB round trip", config);
        }
    }
}

/// Deterministic traces with *known* expected races, across all 14 cells.
mod known_patterns {
    use super::*;
    use smarttrack_trace::{BarrierId, CondId, LockId, ThreadId, VarId};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }

    /// Producer-consumer handoff ordered purely through the condvar: no
    /// cell may report a race.
    #[test]
    fn condvar_handoff_is_race_free_in_all_14_cells() {
        let (c, m) = (CondId::new(0), LockId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Notify(c)).unwrap();
        b.push(t(1), Op::Acquire(m)).unwrap();
        b.push(t(1), Op::Wait(c, m)).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m)).unwrap();
        let trace = b.finish();
        for config in AnalysisConfig::table1() {
            let report = pinned_report(&trace, config, "handoff");
            assert!(report.is_empty(), "{config} reported a race: {report}");
        }
    }

    /// A write issued after the notify races with the woken consumer's
    /// read: every cell must report exactly that race.
    #[test]
    fn post_notify_write_races_in_all_14_cells() {
        let (c, m) = (CondId::new(0), LockId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Notify(c)).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Acquire(m)).unwrap();
        b.push(t(1), Op::Wait(c, m)).unwrap();
        let rd = b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m)).unwrap();
        let trace = b.finish();
        for config in AnalysisConfig::table1() {
            let report = pinned_report(&trace, config, "post-notify");
            assert_eq!(
                report.first_race_event(),
                Some(rd),
                "{config} missed the post-notify race"
            );
        }
    }

    /// Barrier phases: cross-phase accesses are ordered, same-phase
    /// accesses race — in every cell.
    #[test]
    fn barrier_phases_order_across_not_within_in_all_14_cells() {
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(0), Op::BarrierExit(bar)).unwrap();
        b.push(t(1), Op::BarrierExit(bar)).unwrap();
        b.push(t(0), Op::Read(x(1))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(0), Op::Write(x(2))).unwrap();
        let racy = b.push(t(1), Op::Write(x(2))).unwrap();
        let trace = b.finish();
        for config in AnalysisConfig::table1() {
            let report = pinned_report(&trace, config, "barrier-phase");
            assert_eq!(
                report.first_race_event(),
                Some(racy),
                "{config} disagreed on the same-phase race"
            );
            assert_eq!(report.dynamic_count(), 1, "{config} extra races");
        }
    }

    /// The full workload sync patterns, emitted through the generator used
    /// by the calibrated profiles: expected static race counts must hold
    /// for every relation.
    #[test]
    fn condsync_workload_matches_its_expected_race_mix() {
        let w = smarttrack_workloads::profiles::condsync();
        let trace = w.trace(2e-5, 11);
        assert!(has_sync_ops(&trace), "condsync must exercise the new ops");
        let (eh, ew, ed, ewd) = w.races.expected_static();
        let expect = [
            (Relation::Hb, eh),
            (Relation::Wcp, ew),
            (Relation::Dc, ed),
            (Relation::Wdc, ewd),
        ];
        for (relation, expected) in expect {
            let report = analyze(&trace, AnalysisConfig::new(relation, OptLevel::Unopt)).report;
            assert_eq!(
                report.static_count(),
                expected as usize,
                "{relation} static race count off on condsync"
            );
        }
        assert_everything(&trace, "condsync");
    }

    /// EventId stability: cutting right after a mid-round race keeps a
    /// barrier open — the analyses and all ingestion paths must cope.
    #[test]
    fn race_inside_an_open_barrier_round_agrees_everywhere() {
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(2), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::BarrierExit(bar)).unwrap();
        // t1 still inside the round; t2 races with t0's post-exit read.
        b.push(t(0), Op::Read(x(0))).unwrap();
        let trace = b.finish();
        assert_everything(&trace, "open-round");
    }

    /// The fuzz property on a handful of fixed seeds, so a regression is
    /// reproducible without proptest shrinking.
    #[test]
    fn pinned_seeds_agree_everywhere() {
        for seed in [3, 17, 92, 1234] {
            let trace = RandomTraceSpec::tiny_sync().generate(seed);
            assert_everything(&trace, "tiny-sync");
        }
    }
}

/// The exhaustive reordering oracle must agree with the clock analyses'
/// verdicts on tiny synchronization-heavy traces: no analysis may call a
/// race on an ordering the oracle proves unbreakable (HB soundness), and
/// race-free-under-WDC traces must be predictable-race-free.
#[test]
fn oracle_agrees_on_tiny_sync_traces() {
    use smarttrack_vindicate::{OracleResult, PredictableRaceOracle};
    let mut hb_races = 0usize;
    for seed in 0..120u64 {
        let trace = RandomTraceSpec::tiny_sync().generate(seed);
        if !has_sync_ops(&trace) {
            continue;
        }
        let hb = analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Unopt)).report;
        let oracle = PredictableRaceOracle::new(&trace).with_budget(200_000);
        match oracle.any_predictable_race() {
            OracleResult::NoRace => {
                // The oracle respects notify→wait and rendezvous ordering;
                // an HB race on an oracle-race-free trace would mean the
                // detectors order *less* than the ground truth allows.
                assert!(
                    hb.is_empty(),
                    "seed {seed}: HB reports a race the oracle refutes: {hb}"
                );
            }
            OracleResult::Race(e1, e2) => {
                let _ = (e1, e2);
                if !hb.is_empty() {
                    hb_races += 1;
                }
            }
            OracleResult::Unknown => {}
        }
    }
    assert!(hb_races > 0, "battery never saw a racy sync trace");
}
