//! Differential fuzz battery for the reader-writer lock event extension —
//! the pin for the `acqr`/`acqw`/`tryf` op-model change.
//!
//! Property families, checked on proptest-randomized traces mixing shared
//! read sections, exclusive write sections, and failed trylocks with every
//! older op:
//!
//! 1. **Path equivalence.** For every Table 1 cell, the direct
//!    [`run_detector`] driver, per-event `feed`, whole-stream `feed_batch`,
//!    and the legacy [`analyze`] wrapper produce bit-identical [`Report`]s
//!    on traces containing the new ops.
//! 2. **Cross-level agreement.** Every optimization level agrees with its
//!    Unopt oracle on the first race per cell.
//! 3. **Relation inclusion.** HB ⊆ WCP ⊆ DC ⊆ WDC (up to the first race)
//!    with reader/writer sections in play: read-mode acquires weaken some
//!    edges but do so *consistently* down the hierarchy.
//! 4. **STB v3 round-trip invariance.** Traces with the new ops encode as
//!    v3, decode back to the identical trace, and report identically in
//!    every cell; traces without them still emit their old version byte.
//! 5. **Codec robustness.** Every single-byte truncation of a stream
//!    containing every new tag is a precise error; every single-byte bit
//!    flip either errors or decodes to a well-formed trace — never panics.
//! 6. **Oracle cross-check.** On tiny rwlock traces, WDC race pairs that
//!    vindicate produce validating witnesses the exhaustive oracle never
//!    refutes.

use proptest::prelude::*;
use smarttrack::{analyze, run_detector, AnalysisConfig, Engine, OptLevel, Relation, Report};
use smarttrack_trace::binary::{
    from_stb_bytes, to_stb_bytes, StbError, STB_VERSION, STB_VERSION_3,
};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, LockId, Op, ThreadId, Trace, TraceBuilder, VarId};
use smarttrack_vindicate::{
    find_prior_access, validate_witness, vindicate_pair, OracleResult, PredictableRaceOracle,
    VindicationResult,
};

/// The optimization levels available for one relation (Table 1 row).
fn levels(relation: Relation) -> Vec<OptLevel> {
    match relation {
        Relation::Hb => vec![OptLevel::Unopt, OptLevel::Epochs, OptLevel::Fto],
        _ => vec![OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack],
    }
}

/// True if the trace exercises at least one reader-writer op.
fn has_rw_ops(trace: &Trace) -> bool {
    trace
        .events()
        .iter()
        .any(|e| matches!(e.op, Op::AcqRead(_) | Op::AcqWrite(_) | Op::TryAcqFail(_)))
}

fn rw_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (2u32..5, 40usize..220, any::<u64>()).prop_map(|(threads, events, seed)| {
        (
            RandomTraceSpec {
                threads,
                events,
                ..RandomTraceSpec::tiny_rw()
            },
            seed,
        )
    })
}

/// Runs `config` over `trace` through every ingestion path, asserts they all
/// produce bit-identical reports, and returns that report.
fn pinned_report(trace: &Trace, config: AnalysisConfig, label: &str) -> Report {
    let mut det = config.detector().expect("valid Table 1 cell");
    run_detector(det.as_mut(), trace);
    let direct = det.report().clone();

    let legacy = analyze(trace, config);
    assert_eq!(
        legacy.report, direct,
        "{label}: {config} analyze() diverged from run_detector()"
    );

    let engine = Engine::for_config(config).expect("valid Table 1 cell");
    let mut session = engine.open();
    for &event in trace.events() {
        session.feed(event).expect("well-formed event");
    }
    let fed = session.finish_one().report;
    assert_eq!(
        fed, direct,
        "{label}: {config} per-event feed diverged from run_detector()"
    );

    let mut session = engine.open();
    session.feed_batch(trace.events()).expect("well-formed");
    let batched = session.finish_one().report;
    assert_eq!(
        batched, direct,
        "{label}: {config} feed_batch diverged from run_detector()"
    );
    direct
}

/// A compact trace containing every v3-only op tag (read acquire, write
/// acquire, failed trylock) plus representative older tags, with genuinely
/// overlapping read sections.
fn all_rw_tags_trace() -> Trace {
    let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
    let (m, x) = (LockId::new(0), VarId::new(0));
    let mut b = TraceBuilder::new();
    b.push(t0, Op::Fork(t1)).unwrap();
    b.push(t0, Op::AcqWrite(m)).unwrap();
    b.push(t0, Op::Write(x)).unwrap();
    b.push(t1, Op::TryAcqFail(m)).unwrap();
    b.push(t0, Op::Release(m)).unwrap();
    b.push(t0, Op::AcqRead(m)).unwrap();
    b.push(t1, Op::AcqRead(m)).unwrap();
    b.push(t0, Op::Read(x)).unwrap();
    b.push(t1, Op::Read(x)).unwrap();
    b.push(t1, Op::Release(m)).unwrap();
    b.push(t0, Op::Release(m)).unwrap();
    b.push(t1, Op::Acquire(m)).unwrap();
    b.push(t1, Op::Write(x)).unwrap();
    b.push(t1, Op::Release(m)).unwrap();
    b.push(t0, Op::Join(t1)).unwrap();
    b.finish()
}

fn first_race(
    trace: &Trace,
    relation: Relation,
    level: OptLevel,
) -> Option<smarttrack_trace::EventId> {
    analyze(trace, AnalysisConfig::new(relation, level))
        .report
        .first_race_event()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Families 1 and 2: every ingestion path and every optimization level
    /// agree, per relation, on traces full of reader/writer ops.
    #[test]
    fn all_paths_and_levels_agree_on_rwlock_traces((spec, seed) in rw_spec()) {
        let trace = spec.generate(seed);
        if !has_rw_ops(&trace) {
            return Ok(());
        }
        for relation in [Relation::Hb, Relation::Wcp, Relation::Dc, Relation::Wdc] {
            let reports: Vec<(OptLevel, Report)> = levels(relation)
                .into_iter()
                .map(|level| {
                    let config = AnalysisConfig::new(relation, level);
                    (level, pinned_report(&trace, config, "rwlock"))
                })
                .collect();
            let (oracle_level, oracle) = &reports[0];
            prop_assert_eq!(*oracle_level, OptLevel::Unopt, "Unopt is the oracle");
            for (level, report) in &reports[1..] {
                prop_assert_eq!(
                    report.first_race_event(),
                    oracle.first_race_event(),
                    "{} {} first race diverged from Unopt",
                    level,
                    relation
                );
            }
        }
    }

    /// Family 3: the relation hierarchy holds with rwlock ops in play.
    #[test]
    fn relation_inclusion_holds_with_rwlock_ops((spec, seed) in rw_spec()) {
        let trace = spec.generate(seed);
        let hb = first_race(&trace, Relation::Hb, OptLevel::Fto);
        let wcp = first_race(&trace, Relation::Wcp, OptLevel::Unopt);
        let dc = first_race(&trace, Relation::Dc, OptLevel::Unopt);
        let wdc = first_race(&trace, Relation::Wdc, OptLevel::Unopt);
        if let Some(h) = hb {
            let w = wcp.expect("HB-race implies WCP-race");
            prop_assert!(w <= h, "WCP first race after HB's ({w:?} > {h:?})");
        }
        if let Some(w) = wcp {
            let d = dc.expect("WCP-race implies DC-race");
            prop_assert!(d <= w);
        }
        if let Some(d) = dc {
            let wd = wdc.expect("DC-race implies WDC-race");
            prop_assert!(wd <= d);
        }
    }

    /// Family 4: STB v3 round-trips exactly, and the decoded trace reports
    /// identically to the original in every Table 1 cell.
    #[test]
    fn stb_v3_round_trip_preserves_reports((spec, seed) in rw_spec()) {
        let trace = spec.generate(seed);
        let bytes = to_stb_bytes(&trace);
        if has_rw_ops(&trace) {
            prop_assert_eq!(bytes[4], STB_VERSION_3, "rwlock ops require v3");
        }
        let decoded = from_stb_bytes(&bytes).expect("round-trips");
        prop_assert_eq!(&decoded, &trace);
        for config in AnalysisConfig::table1() {
            prop_assert_eq!(
                analyze(&decoded, config).report,
                analyze(&trace, config).report,
                "{} report changed across the STB v3 round trip",
                config
            );
        }
    }

    /// Family 6: WDC race pairs on tiny rwlock traces — every vindicated
    /// pair has a validating witness, and the exhaustive oracle never
    /// refutes it.
    #[test]
    fn vindication_and_oracle_agree_on_rwlock_traces(
        (threads, events, seed) in (2u32..4, 12usize..26, any::<u64>())
    ) {
        let spec = RandomTraceSpec {
            threads,
            events,
            max_nesting: 1,
            ..RandomTraceSpec::tiny_rw()
        };
        let trace = spec.generate(seed);
        let report = analyze(
            &trace,
            AnalysisConfig::new(Relation::Wdc, OptLevel::Unopt),
        )
        .report;
        let pair = report.races().first().and_then(|race| {
            let prior = find_prior_access(
                &trace,
                race.event,
                race.var,
                *race.prior_threads.first()?,
            )?;
            Some((prior, race.event))
        });
        if let Some((e1, e2)) = pair {
            if let VindicationResult::Race(w) = vindicate_pair(&trace, e1, e2) {
                validate_witness(&trace, &w.order, (e1, e2)).expect("witness validates");
                let oracle = PredictableRaceOracle::new(&trace).with_budget(200_000);
                prop_assert!(
                    matches!(
                        oracle.is_predictable_race(e1, e2),
                        OracleResult::Race(..) | OracleResult::Unknown
                    ),
                    "vindicated a pair the oracle refutes"
                );
            }
        }
    }
}

#[test]
fn rwlock_free_traces_still_emit_their_old_version_byte() {
    // The writer pins the lowest expressible version: archived captures of
    // rwlock-free executions keep diffing clean against fresh encodes.
    let v1 = to_stb_bytes(&paper::figure1());
    assert_eq!(v1[4], STB_VERSION);
    let v3 = to_stb_bytes(&all_rw_tags_trace());
    assert_eq!(v3[4], STB_VERSION_3);
}

#[test]
fn truncation_anywhere_in_a_v3_stream_is_a_precise_error() {
    let bytes = to_stb_bytes(&all_rw_tags_trace());
    assert_eq!(bytes[4], STB_VERSION_3);
    for cut in 0..bytes.len() {
        match from_stb_bytes(&bytes[..cut]) {
            Err(StbError::Truncated { offset, .. }) => {
                assert!(offset <= cut as u64, "offset {offset} past cut {cut}")
            }
            Err(other) => panic!("cut at {cut}: unexpected error {other}"),
            Ok(_) => panic!("cut at {cut}: truncated stream decoded"),
        }
    }
}

#[test]
fn truncation_fuzz_over_random_rwlock_traces_and_chunk_sizes() {
    use smarttrack_trace::binary::StbWriter;
    for seed in 0..3u64 {
        let trace = RandomTraceSpec::tiny_rw().generate(seed);
        for chunk in [1, 7, 64] {
            // The hint cannot express v3-need (rwlocks share the lock id
            // space), so live streaming pins v3 up front.
            let mut w = StbWriter::v3(Vec::new()).chunk_events(chunk);
            for e in trace.events() {
                w.write(e).unwrap();
            }
            let bytes = w.finish().unwrap();
            for cut in 0..bytes.len() {
                match from_stb_bytes(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(_) => panic!("seed {seed} chunk {chunk}: cut {cut} decoded"),
                }
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_the_v3_decoder() {
    let bytes = to_stb_bytes(&all_rw_tags_trace());
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            // Any outcome but a panic is acceptable: a precise error, or a
            // decode to some other well-formed trace.
            let _ = from_stb_bytes(&mutated);
        }
    }
}

#[test]
fn overlapping_read_sections_race_in_every_cell() {
    // The canonical shape this extension exists for: a write under one read
    // section against a read under a concurrently-open read section. Every
    // Table 1 cell must report it (read sections never exclude each other).
    let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
    let (m, x) = (LockId::new(0), VarId::new(0));
    let mut b = TraceBuilder::new();
    b.push(t0, Op::Fork(t1)).unwrap();
    b.push(t0, Op::AcqRead(m)).unwrap();
    b.push(t1, Op::AcqRead(m)).unwrap();
    b.push(t0, Op::Write(x)).unwrap();
    b.push(t1, Op::Read(x)).unwrap();
    b.push(t0, Op::Release(m)).unwrap();
    b.push(t1, Op::Release(m)).unwrap();
    let trace = b.finish();
    for config in AnalysisConfig::table1() {
        assert_eq!(
            analyze(&trace, config).report.static_count(),
            1,
            "under {config}"
        );
    }
}
