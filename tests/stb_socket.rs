//! STB over non-seekable transports — the serving layer's substrate.
//!
//! `StbReader` must work over anything `impl Read` with no `Seek` and no
//! rewinding: an OS pipe, a loopback `TcpStream`. A connection dropped
//! mid-chunk must surface as a precise [`StbError::Truncated`] that fails
//! only the session fed from that connection, and the push-style
//! [`StbAssembler`] must decode byte-for-byte the same events as
//! `StbReader` however the stream is split.

use std::io::Write;
use std::net::{TcpListener, TcpStream};

use proptest::prelude::*;
use smarttrack::{AnalysisConfig, Engine};
use smarttrack_trace::binary::{StbAssembler, StbError, StbReader};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, Trace};

fn stb_bytes(trace: &Trace) -> Vec<u8> {
    smarttrack_trace::binary::to_stb_bytes(trace)
}

/// Streams `bytes` through a writer in small dribbles from another thread,
/// closing the write end when done — the shape of a live producer.
fn drip<W: Write + Send + 'static>(
    mut writer: W,
    bytes: Vec<u8>,
    step: usize,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for piece in bytes.chunks(step) {
            writer.write_all(piece).expect("transport accepts writes");
        }
        // Dropping `writer` closes the transport: EOF on the read side.
    })
}

#[test]
fn stb_reader_decodes_over_an_os_pipe() {
    let trace = paper::figure1();
    let bytes = stb_bytes(&trace);
    let (reader_end, writer_end) = std::io::pipe().expect("pipe");
    let producer = drip(writer_end, bytes, 3);

    let reader = StbReader::new(reader_end).expect("header over pipe");
    let events: Result<Vec<_>, _> = reader.collect();
    assert_eq!(events.expect("pipe stream decodes"), trace.events());
    producer.join().unwrap();
}

#[test]
fn stb_reader_decodes_over_a_tcp_stream() {
    let trace = paper::figure2();
    let bytes = stb_bytes(&trace);
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().unwrap();
    let producer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        drip(stream, bytes, 5).join().unwrap();
    });

    let (conn, _) = listener.accept().expect("accept");
    let reader = StbReader::new(conn).expect("header over tcp");
    let events: Result<Vec<_>, _> = reader.collect();
    assert_eq!(events.expect("tcp stream decodes"), trace.events());
    producer.join().unwrap();
}

/// A connection dropped mid-chunk is a precise `Truncated` error — with the
/// offset where bytes ran out — and poisons only the session it fed.
#[test]
fn mid_chunk_disconnect_is_a_precise_truncation_failing_one_session() {
    let trace = paper::figure1();
    let bytes = stb_bytes(&trace);
    // Cut inside the chunk payload: past the header, before the
    // terminator.
    let cut = bytes.len() - 4;

    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().unwrap();
    let cut_bytes = bytes[..cut].to_vec();
    let producer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("loopback connect");
        stream.write_all(&cut_bytes).expect("write prefix");
        // Drop: TCP FIN mid-chunk.
    });

    let engine = Engine::for_config("st-wdc".parse::<AnalysisConfig>().unwrap()).unwrap();
    let mut wounded = engine.open();
    let mut healthy = engine.open();

    let (conn, _) = listener.accept().expect("accept");
    let mut reader = StbReader::new(conn).expect("header arrives intact");
    let error = loop {
        match reader.next() {
            Some(Ok(event)) => {
                wounded.feed(event).expect("decoded events are well-formed");
            }
            Some(Err(e)) => break e,
            None => panic!("a cut stream must not end cleanly"),
        }
    };
    producer.join().unwrap();

    match &error {
        StbError::Truncated { offset, context } => {
            assert_eq!(*offset, cut as u64, "offset names where bytes ran out");
            assert!(!context.is_empty());
        }
        other => panic!("expected Truncated, got {other}"),
    }

    // Only the wounded session is affected — and even it finishes cleanly
    // on the prefix it saw; the healthy session analyzes the full trace
    // unperturbed.
    let _ = wounded.finish();
    healthy.feed_trace(&trace).expect("full trace");
    let outcome = healthy.finish_one();
    assert_eq!(
        outcome.report,
        smarttrack::analyze(&trace, "st-wdc".parse::<AnalysisConfig>().unwrap()).report,
        "an unrelated session must not observe the disconnect"
    );
}

/// The reader buffers one chunk at a time: a stream much larger than any
/// reasonable buffer decodes over a pipe without materializing the whole
/// input (regression guard against accidental `read_to_end`).
#[test]
fn stb_reader_streams_chunk_by_chunk_over_a_pipe() {
    let trace = RandomTraceSpec {
        threads: 4,
        events: 20_000,
        vars: 64,
        locks: 4,
        ..RandomTraceSpec::default()
    }
    .generate(11);
    let bytes = stb_bytes(&trace);
    let (reader_end, writer_end) = std::io::pipe().expect("pipe");
    // An OS pipe holds ~64 KiB; a reader that tried to slurp the input
    // before yielding events would deadlock against this blocking
    // producer, because we only consume as we go.
    let producer = drip(writer_end, bytes, 4096);
    let mut count = 0usize;
    for event in StbReader::new(reader_end).expect("header") {
        event.expect("well-formed stream");
        count += 1;
    }
    assert_eq!(count, trace.len());
    producer.join().unwrap();
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (2u32..5, 40usize..160, any::<u64>()).prop_map(|(threads, events, seed)| {
        RandomTraceSpec {
            threads,
            events,
            vars: 4,
            locks: 2,
            acquire_prob: 0.15,
            release_prob: 0.2,
            ..RandomTraceSpec::default()
        }
        .generate(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pushing the same bytes into `StbAssembler` at arbitrary split
    /// granularity yields exactly `StbReader`'s events.
    #[test]
    fn assembler_equals_reader_on_random_traces(trace in arb_trace(), step in 1usize..97) {
        let bytes = stb_bytes(&trace);
        let reader_events: Vec<_> = StbReader::new(&bytes[..])
            .expect("header")
            .collect::<Result<_, _>>()
            .expect("reader decodes");

        let mut asm = StbAssembler::new();
        let mut asm_events = Vec::new();
        for piece in bytes.chunks(step) {
            asm.push(piece).expect("assembler accepts the stream");
            while let Some(event) = asm.next_event() {
                asm_events.push(event);
            }
        }
        let total = asm.close().expect("well-terminated stream");
        prop_assert_eq!(total, reader_events.len() as u64);
        prop_assert_eq!(asm_events, reader_events);
    }

    /// A random cut point never panics either decoder and always produces
    /// an error (no silent truncation) whose offset is within the stream.
    #[test]
    fn random_cuts_fail_precisely_not_loudly(trace in arb_trace(), cut_seed in any::<u64>()) {
        let bytes = stb_bytes(&trace);
        let cut = (cut_seed % bytes.len() as u64) as usize;

        let reader_result: Result<Vec<_>, _> = match StbReader::new(&bytes[..cut]) {
            Ok(reader) => reader.collect(),
            Err(e) => Err(e),
        };
        prop_assert!(reader_result.is_err(), "cut at {} must fail", cut);

        let mut asm = StbAssembler::new();
        let asm_result = asm.push(&bytes[..cut]).and_then(|()| asm.close().map(|_| ()));
        let error = asm_result.expect_err("assembler must fail on a cut stream");
        if let StbError::Truncated { offset, .. } = error {
            prop_assert!(offset <= cut as u64, "offset {} past the cut {}", offset, cut);
        }
    }
}
