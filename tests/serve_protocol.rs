//! Serve protocol fuzz battery.
//!
//! A public-facing framed protocol must treat the wire as hostile: every
//! truncation, bit flip, oversized length prefix, garbage hello, and
//! out-of-place frame has to produce a clean protocol error on that one
//! connection — never a panic, a hang, or a poisoned worker. Each case
//! here throws malformed bytes at a live server and then proves the
//! server still analyzes correctly for a well-behaved client
//! (mirroring the corruption battery in `stb_compat.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use smarttrack::AnalysisConfig;
use smarttrack_serve::{
    protocol::{encode_frame, Frame, QueryKind, MAX_FRAME_BYTES, PROTOCOL_VERSION},
    ServeClient, Server, ServerConfig,
};
use smarttrack_trace::paper;

fn test_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            analyses: vec!["st-wdc".parse::<AnalysisConfig>().unwrap()],
            workers: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind test server")
}

/// Proves the server is alive and sane: a fresh well-behaved client
/// streams figure1 and gets the full report back.
fn assert_server_live(server: &Server, tag: &str) {
    let trace = paper::figure1();
    let mut client = ServeClient::connect(
        server.local_addr(),
        "fuzz-liveness",
        &format!("ok-{tag}"),
        false,
    )
    .unwrap_or_else(|e| panic!("server dead after {tag}: {e}"));
    client.stream_trace(&trace, 7).expect("stream");
    let report = client.finish().expect("finish");
    assert_eq!(report.events, trace.len() as u64, "after {tag}");
    assert_eq!(report.lanes.len(), 1, "after {tag}");
}

/// Writes raw bytes at the server and drains whatever comes back until
/// the server closes or goes quiet. Returns the reply bytes.
fn poke(server: &Server, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(150)))
        .unwrap();
    // The server may close mid-write on garbage; that's fine.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let mut reply = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    reply
}

/// A valid one-session conversation: hello, the trace in small data
/// frames, a query, finish.
fn good_conversation(session: &str) -> Vec<u8> {
    conversation_for(session, &paper::figure1())
}

fn conversation_for(session: &str, trace: &smarttrack_trace::Trace) -> Vec<u8> {
    let mut bytes = encode_frame(&Frame::Hello {
        version: PROTOCOL_VERSION,
        resume: false,
        tenant: "fuzz".to_string(),
        session: session.to_string(),
    });
    let stb = smarttrack_trace::binary::to_stb_bytes(trace);
    for piece in stb.chunks(5) {
        bytes.extend_from_slice(&encode_frame(&Frame::Data(piece.to_vec())));
    }
    bytes.extend_from_slice(&encode_frame(&Frame::Query(QueryKind::Races)));
    bytes.extend_from_slice(&encode_frame(&Frame::Finish));
    bytes
}

/// A deterministic trace carrying every v3 STB tag — read-mode and
/// write-mode rwlock acquires plus failed trylocks, including a
/// self-held upgrade probe — so its binary stream pins the v3 wire
/// format end to end.
fn v3_trace() -> smarttrack_trace::Trace {
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
    let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
    let (r, x) = (LockId::new(0), VarId::new(0));
    let mut b = TraceBuilder::new();
    b.push(t0, Op::AcqRead(r)).unwrap();
    b.push(t0, Op::Read(x)).unwrap();
    b.push(t0, Op::TryAcqFail(r)).unwrap(); // self-held upgrade probe
    b.push(t1, Op::AcqRead(r)).unwrap();
    b.push(t1, Op::Read(x)).unwrap();
    b.push(t1, Op::Release(r)).unwrap();
    b.push(t0, Op::Release(r)).unwrap();
    b.push(t1, Op::AcqWrite(r)).unwrap();
    b.push(t1, Op::Write(x)).unwrap();
    b.push(t1, Op::Release(r)).unwrap();
    b.push(t0, Op::TryAcqFail(r)).unwrap();
    b.finish()
}

#[test]
fn garbage_hellos_get_a_clean_error_and_leave_the_server_up() {
    let server = test_server();
    let cases: &[&[u8]] = &[
        b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
        b"\x00\x00\x00\x00\x00",
        b"\x89STB\x01\x01",                 // an STB header is not a frame
        &[0x01, 0xff, 0xff, 0xff],          // hello type, truncated length
        &[0x42, 0x04, 0, 0, 0, 1, 2, 3, 4], // unknown frame type
        &[0x81, 0x00, 0, 0, 0],             // server-originated type from client
    ];
    for (i, case) in cases.iter().enumerate() {
        poke(&server, case);
        assert_server_live(&server, &format!("garbage-{i}"));
    }
}

#[test]
fn wrong_protocol_version_is_refused_politely() {
    let server = test_server();
    let hello = encode_frame(&Frame::Hello {
        version: PROTOCOL_VERSION + 9,
        resume: false,
        tenant: "fuzz".to_string(),
        session: "v9".to_string(),
    });
    let reply = poke(&server, &hello);
    // The reply must itself be a well-formed Error frame.
    let (frame, _) = smarttrack_serve::protocol::decode_frame(&reply)
        .expect("reply decodes")
        .expect("reply is complete");
    match frame {
        Frame::Error { message, .. } => assert!(message.contains("version")),
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert_server_live(&server, "bad-version");
}

#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    let server = test_server();
    // Frame header claiming a payload just over the cap, and one claiming
    // u32::MAX; a naive server would try to allocate 4 GiB.
    for huge in [MAX_FRAME_BYTES + 1, u32::MAX] {
        let mut bytes = vec![0x02]; // data frame type
        bytes.extend_from_slice(&huge.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        poke(&server, &bytes);
        assert_server_live(&server, &format!("oversized-{huge}"));
    }
}

#[test]
fn every_truncation_of_a_valid_conversation_is_survivable() {
    let server = test_server();
    let conversation = good_conversation("trunc");
    // Every cut that lands inside the first few frames, then a coarser
    // stride across the rest — each truncated prefix is one connection
    // that drops mid-protocol.
    let mut cuts: Vec<usize> = (0..conversation.len().min(40)).collect();
    cuts.extend((40..conversation.len()).step_by(17));
    for cut in cuts {
        poke(&server, &conversation[..cut]);
    }
    assert_server_live(&server, "truncations");
}

#[test]
fn every_truncation_of_a_v3_conversation_is_survivable() {
    // Same sweep as above, but the payload carries every v3 STB tag
    // (acqr/acqw/tryf), so cuts land inside v3-encoded events too.
    let server = test_server();
    let conversation = conversation_for("trunc-v3", &v3_trace());
    let mut cuts: Vec<usize> = (0..conversation.len().min(40)).collect();
    cuts.extend((40..conversation.len()).step_by(13));
    for cut in cuts {
        poke(&server, &conversation[..cut]);
    }
    assert_server_live(&server, "truncations-v3");
}

#[test]
fn detach_and_resume_across_a_pinned_v3_stream_keeps_decoding() {
    // A session whose already-ingested Data frames carry v3 tags must
    // keep decoding after a detach/resume: the decoder state pinned to
    // the v3 stream (including a chunk cut in half across the detach)
    // survives the reattach. The server also runs the syncp extension
    // lane, so `--analysis syncp` serving is exercised end to end.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            analyses: vec![
                "st-wdc".parse::<AnalysisConfig>().unwrap(),
                "syncp".parse::<AnalysisConfig>().unwrap(),
            ],
            workers: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind test server");
    let addr = server.local_addr();
    let trace = v3_trace();
    let stb = smarttrack_trace::binary::to_stb_bytes(&trace);
    let half = stb.len() / 2;

    let mut first = ServeClient::connect(addr, "fuzz", "v3-resume", false).expect("connect");
    first.stream_bytes(&stb[..half], 16).expect("first half");
    first.detach().expect("detach");
    drop(first);

    // The server processes the detach asynchronously; retry briefly if
    // the reconnect races ahead of it.
    let mut second = {
        let mut attempt = 0;
        loop {
            match ServeClient::connect(addr, "fuzz", "v3-resume", true) {
                Ok(client) => break client,
                Err(smarttrack_serve::ClientError::Server {
                    code: smarttrack_serve::ErrorCode::SessionAttached,
                    ..
                }) if attempt < 200 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("reconnect: {e}"),
            }
        }
    };
    assert!(second.resumed(), "hello with resume reattaches");
    second.stream_bytes(&stb[half..], 16).expect("second half");
    let report = second.finish().expect("finish");
    assert_eq!(report.events, trace.len() as u64);
    assert_eq!(report.lanes.len(), 2);
    for lane in &report.lanes {
        let config: AnalysisConfig = lane.config.parse().expect("lane config");
        let offline = smarttrack::analyze(&trace, config);
        assert_eq!(
            lane.static_count as usize,
            offline.report.static_count(),
            "lane {} must match offline across the resume",
            lane.name
        );
    }
    server.shutdown();
}

#[test]
fn queries_mid_chunk_answer_from_live_session_state() {
    let server = test_server();
    let trace = paper::figure2();
    let stb = smarttrack_trace::binary::to_stb_bytes(&trace);
    let mut client =
        ServeClient::connect(server.local_addr(), "fuzz", "mid-chunk", false).expect("connect");

    // Send roughly half the stream — deliberately cutting inside an STB
    // chunk — then query while the session is mid-decode.
    let half = stb.len() / 2;
    client.send_chunk(&stb[..half]).expect("first half");
    let snapshot = client.query_snapshot().expect("snapshot mid-chunk");
    assert_eq!(snapshot.lanes.len(), 1);
    let races_so_far = client.query_races().expect("races mid-chunk");
    assert!(races_so_far.events <= trace.len() as u64);

    client.send_chunk(&stb[half..]).expect("second half");
    let report = client.finish().expect("finish");
    assert_eq!(report.events, trace.len() as u64);

    let offline = smarttrack::analyze(&trace, "st-wdc".parse::<AnalysisConfig>().unwrap());
    assert_eq!(
        report.lanes[0].races.len(),
        offline.report.races().len(),
        "split-mid-chunk stream must analyze identically to offline"
    );
}

/// LEB128, as the STB chunk framing encodes its length and count fields.
fn varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A valid STB header (v1, no hint) to hang hostile chunk framing off.
fn stb_header() -> Vec<u8> {
    vec![0x89, b'S', b'T', b'B', 0x01, 0x00]
}

#[test]
fn absurd_stb_event_counts_fail_the_session_not_the_server() {
    // A ~20-byte data frame whose STB chunk declares 2^40 events. Before
    // the decoder validated the count, this made `Vec::with_capacity`
    // request terabytes — an allocator *abort* (SIGABRT) that no
    // catch_unwind contains, killing the daemon and every tenant on it.
    let server = test_server();
    let mut stb = stb_header();
    varint(8, &mut stb); // chunk payload length: 8 bytes
    varint(1 << 40, &mut stb); // declared event count: ~10^12
    stb.extend_from_slice(&[0u8; 8]); // the 8 payload bytes

    let mut client =
        ServeClient::connect(server.local_addr(), "fuzz", "count-bomb", false).expect("connect");
    let failed = client.send_chunk(&stb).is_err() || client.finish().is_err();
    assert!(failed, "an absurd event count must fail its session");
    assert_server_live(&server, "count-bomb");
}

#[test]
fn chunks_beyond_the_server_chunk_cap_fail_the_session_not_the_server() {
    // The STB format allows 64 MiB chunks, all of which must buffer
    // contiguously before decoding; a serving daemon caps the declared
    // size (`max_chunk_bytes`) so one stream cannot pin a reassembly
    // buffer far beyond its ingest budget. The rejection happens when
    // the length prefix parses — no payload is ever buffered.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            analyses: vec!["st-wdc".parse::<AnalysisConfig>().unwrap()],
            workers: Some(2),
            max_chunk_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind test server");
    let mut stb = stb_header();
    varint(60 << 20, &mut stb); // declared chunk: 60 MiB, legal STB

    let mut client =
        ServeClient::connect(server.local_addr(), "fuzz", "fat-chunk", false).expect("connect");
    let failed = client.send_chunk(&stb).is_err() || client.finish().is_err();
    assert!(
        failed,
        "a chunk beyond the server cap must fail its session"
    );
    assert_server_live(&server, "fat-chunk");
}

#[test]
fn corrupt_stb_payload_fails_the_session_not_the_server() {
    let server = test_server();
    let mut stb = smarttrack_trace::binary::to_stb_bytes(&paper::figure1());
    // Trash the magic so the assembler rejects the stream immediately.
    stb[0] ^= 0xff;
    let mut client =
        ServeClient::connect(server.local_addr(), "fuzz", "corrupt", false).expect("connect");
    // The data frame itself is well-formed protocol; the error surfaces
    // on a later exchange once the worker has seen the bytes.
    let failed = client.send_chunk(&stb).is_err()
        || client.query_snapshot().is_err()
        || client.finish().is_err();
    assert!(failed, "a corrupt STB stream must fail its session");
    assert_server_live(&server, "corrupt-stb");
}

#[test]
fn corrupt_stb_on_an_osr_lane_fails_the_session_not_the_server() {
    // The OSR row buffers the whole stream (O(events)) behind the same
    // session ingest path as every other lane, so hostile bytes must die
    // at the decoder *before* the reversal machinery sees them — one
    // failed session, never a poisoned worker. Afterwards a well-behaved
    // client on the same server must still get the reversal race back.
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            analyses: vec!["osr".parse::<AnalysisConfig>().unwrap()],
            workers: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind osr server");

    let (m, x, y) = (LockId::new(0), VarId::new(0), VarId::new(1));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Acquire(m)).unwrap();
    b.push(t(0), Op::Write(y)).unwrap();
    b.push(t(0), Op::Write(x)).unwrap();
    b.push(t(0), Op::Release(m)).unwrap();
    b.push(t(1), Op::Acquire(m)).unwrap();
    b.push(t(1), Op::Write(y)).unwrap();
    b.push(t(1), Op::Release(m)).unwrap();
    b.push(t(1), Op::Write(x)).unwrap();
    let reversal = b.finish();

    let mut stb = smarttrack_trace::binary::to_stb_bytes(&reversal);
    // Trash a payload byte mid-stream so decoding fails after ingest began.
    let idx = stb.len() / 2;
    stb[idx] ^= 0xff;
    let mut client =
        ServeClient::connect(server.local_addr(), "fuzz", "osr-corrupt", false).expect("connect");
    let failed = client.send_chunk(&stb).is_err()
        || client.query_snapshot().is_err()
        || client.finish().is_err();
    assert!(failed, "a corrupt STB stream must fail its osr session");

    let mut clean =
        ServeClient::connect(server.local_addr(), "fuzz", "osr-clean", false).expect("reconnect");
    clean.stream_trace(&reversal, 7).expect("stream");
    let report = clean.finish().expect("finish");
    assert_eq!(report.events, reversal.len() as u64, "after osr-corrupt");
    assert_eq!(report.lanes.len(), 1, "after osr-corrupt");
    assert_eq!(
        report.lanes[0].races.len(),
        1,
        "the osr lane must still see the reversal race after a failed session"
    );
    assert_eq!(report.lanes[0].races[0].event, 7);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random bit flips anywhere in a valid conversation: the connection
    /// may fail any way it likes, the server may not. Odd cases flip a
    /// conversation whose payload carries every v3 STB tag.
    #[test]
    fn bit_flips_never_kill_the_server(byte_idx in 0usize..400, bit in 0u8..8, case in 0u32..1000) {
        let server = test_server();
        let mut conversation = if case % 2 == 0 {
            good_conversation(&format!("flip-{case}"))
        } else {
            conversation_for(&format!("flip-{case}"), &v3_trace())
        };
        let idx = byte_idx % conversation.len();
        conversation[idx] ^= 1 << bit;
        poke(&server, &conversation);
        assert_server_live(&server, &format!("flip-{idx}-{bit}"));
    }

    /// Pure random byte blobs as the opening bytes of a connection.
    #[test]
    fn random_blobs_never_kill_the_server(blob in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 1..300)) {
        let server = test_server();
        poke(&server, &blob);
        assert_server_live(&server, "blob");
    }
}
