//! Determinism and equivalence battery for the batch-analysis subsystem:
//! an `EnginePool` run over a corpus must be *exactly* the sequential
//! analysis of the same jobs, whatever the worker count, however the
//! scheduler interleaved, and however often the run is repeated.
//!
//! * per-job outcomes ≡ feeding the same trace through a plain
//!   `Engine`/`Session` (full equality: reports, summaries, counters);
//! * the corpus-deduplicated statically-distinct sets ≡ the union of the
//!   sequential per-job reports' sites;
//! * the whole `CorpusReport` — including its JSON rendering — is
//!   bit-identical at 1, 2, and 8 workers and across repeated runs.

use proptest::prelude::*;
use smarttrack::{AnalysisConfig, AnalysisOutcome, BatchJob, Engine, EnginePool};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{Loc, Trace};
use std::collections::BTreeSet;

#[path = "support/json.rs"]
mod json;

/// The CLI's default selection: the HB baseline plus the three
/// SmartTrack-optimized predictive analyses.
fn headline_engine() -> Engine {
    let configs: Vec<AnalysisConfig> = ["fto-hb", "st-wcp", "st-dc", "st-wdc"]
        .into_iter()
        .map(|name| name.parse().expect("known analysis"))
        .collect();
    Engine::builder().fanout(configs).build().expect("valid")
}

/// The sequential reference: every job fed through its own plain session,
/// in submission order — what the pool must be indistinguishable from.
fn sequential_outcomes(engine: &Engine, corpus: &[(String, Trace)]) -> Vec<Vec<AnalysisOutcome>> {
    corpus
        .iter()
        .map(|(_, trace)| {
            let mut session = engine.open();
            session.feed_trace(trace).expect("validated trace");
            session.finish()
        })
        .collect()
}

/// Statically-distinct sites per lane, deduplicated across the corpus —
/// computed from the sequential reference.
fn sequential_distinct_sites(reference: &[Vec<AnalysisOutcome>], lanes: usize) -> Vec<Vec<Loc>> {
    (0..lanes)
        .map(|lane| {
            let sites: BTreeSet<Loc> = reference
                .iter()
                .flat_map(|outcomes| outcomes[lane].report.races().iter().map(|r| r.loc))
                .collect();
            sites.into_iter().collect()
        })
        .collect()
}

fn jobs_of(corpus: &[(String, Trace)]) -> Vec<BatchJob> {
    corpus
        .iter()
        .map(|(label, trace)| BatchJob::from_trace(label.clone(), trace.clone()))
        .collect()
}

/// Runs the full battery over one corpus: pool at 1/2/8 workers vs the
/// sequential reference, plus repeated-run determinism.
fn assert_pool_matches_sequential(engine: &Engine, corpus: &[(String, Trace)], label: &str) {
    let reference = sequential_outcomes(engine, corpus);
    let expected_sites = sequential_distinct_sites(&reference, engine.configs().len());

    let mut renderings: Vec<String> = Vec::new();
    for workers in [1usize, 2, 8] {
        let pool = EnginePool::new(engine.clone()).with_workers(workers);
        let (report, stats) = pool.run_with_stats(jobs_of(corpus));
        assert!(
            stats.peak_resident_sessions <= stats.workers,
            "{label}: {} resident sessions with {} workers",
            stats.peak_resident_sessions,
            stats.workers
        );
        assert_eq!(report.failed(), 0, "{label}: in-memory jobs cannot fail");

        // Per-job table: same order, labels, and full per-lane outcomes.
        assert_eq!(report.jobs().len(), corpus.len(), "{label}");
        for ((job, (job_label, trace)), expected) in
            report.jobs().iter().zip(corpus).zip(&reference)
        {
            assert_eq!(&job.label, job_label, "{label}: job order preserved");
            let success = job.result.as_ref().expect("checked failed() == 0");
            assert_eq!(success.events, trace.len(), "{label}: {job_label}");
            assert_eq!(
                &success.outcomes, expected,
                "{label}: {job_label} diverged from the sequential session at {workers} workers"
            );
        }

        // Corpus dedup: sites per lane match the sequential union.
        for (total, expected) in report.totals().iter().zip(&expected_sites) {
            assert_eq!(
                &total.sites, expected,
                "{label}: {} distinct sites diverged",
                total.name
            );
        }

        renderings.push(report.to_json());

        // Repeated run at the same worker count: bit-identical.
        let again = EnginePool::new(engine.clone())
            .with_workers(workers)
            .run(jobs_of(corpus));
        assert_eq!(
            again.to_json(),
            renderings[renderings.len() - 1],
            "{label}: repeated run at {workers} workers diverged"
        );
    }

    // Bit-identical aggregated output across worker counts, and valid JSON.
    json::assert_valid_json(&renderings[0]);
    assert_eq!(renderings[0], renderings[1], "{label}: 1 vs 2 workers");
    assert_eq!(renderings[0], renderings[2], "{label}: 1 vs 8 workers");
}

fn arb_corpus() -> impl Strategy<Value = Vec<(RandomTraceSpec, u64)>> {
    proptest::collection::vec(
        (
            2u32..5,       // threads
            40usize..220,  // events
            2u32..6,       // vars
            1u32..4,       // locks
            any::<u64>(),  // seed
            any::<bool>(), // fork_join
        )
            .prop_map(|(threads, events, vars, locks, seed, fork_join)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        acquire_prob: 0.18,
                        release_prob: 0.22,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            }),
        2..7,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn randomized_corpora_match_sequential_at_1_2_8_workers(specs in arb_corpus()) {
        let corpus: Vec<(String, Trace)> = specs
            .iter()
            .enumerate()
            .map(|(i, (spec, seed))| (format!("random-{i}"), spec.generate(*seed)))
            .collect();
        assert_pool_matches_sequential(&headline_engine(), &corpus, "random");
    }
}

#[test]
fn calibrated_mixed_corpus_matches_sequential() {
    let corpus = smarttrack_workloads::corpus(2e-6, &[5, 6]);
    assert_pool_matches_sequential(&headline_engine(), &corpus, "calibrated");
}

#[test]
fn full_table1_matrix_matches_sequential_on_paper_figures() {
    let corpus: Vec<(String, Trace)> = smarttrack_trace::paper::all_figures()
        .into_iter()
        .map(|(name, trace)| (name.to_string(), trace))
        .collect();
    let engine = Engine::builder().table1().build().unwrap();
    assert_pool_matches_sequential(&engine, &corpus, "table1");
}

#[test]
fn file_backed_jobs_match_in_memory_jobs() {
    // The same corpus as STB files on disk (streamed, header-hinted) and
    // as in-memory traces: identical per-job reports and identical
    // corpus-deduplicated sites.
    let corpus = smarttrack_workloads::corpus(1e-6, &[9]);
    let dir = std::env::temp_dir().join(format!("st-batch-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let engine = headline_engine();

    let mut path_jobs = Vec::new();
    for (label, trace) in &corpus {
        let path = dir.join(format!("{label}.stb"));
        smarttrack_trace::binary::write_stb_file(trace, &path).unwrap();
        path_jobs.push(BatchJob::from_path(path));
    }
    let from_files = EnginePool::new(engine.clone())
        .with_workers(2)
        .run(path_jobs);
    let in_memory = EnginePool::new(engine)
        .with_workers(2)
        .run(jobs_of(&corpus));

    for (file_job, mem_job) in from_files.jobs().iter().zip(in_memory.jobs()) {
        let (file, mem) = (
            file_job.result.as_ref().unwrap(),
            mem_job.result.as_ref().unwrap(),
        );
        assert_eq!(file.events, mem.events);
        for (a, b) in file.outcomes.iter().zip(&mem.outcomes) {
            assert_eq!(a.report, b.report, "{}", file_job.label);
        }
    }
    for (a, b) in from_files.totals().iter().zip(in_memory.totals()) {
        assert_eq!(a.sites, b.sites, "{}", a.name);
        assert_eq!(a.dynamic, b.dynamic, "{}", a.name);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observed_races_account_for_every_dynamic_race() {
    let corpus = smarttrack_workloads::corpus(1e-6, &[3]);
    let engine = headline_engine();
    let mut observed = 0usize;
    let (report, _) = EnginePool::new(engine)
        .with_workers(2)
        .run_observed(jobs_of(&corpus), |_race| observed += 1);
    let total_dynamic: usize = report.totals().iter().map(|t| t.dynamic).sum();
    assert_eq!(observed, total_dynamic, "one notice per dynamic race");
    assert!(total_dynamic > 0, "the calibrated corpus injects races");
}
