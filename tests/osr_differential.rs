//! Differential battery for the `OSR` optimistic sync-reversal analysis
//! row (Shi, Mathur & Pavlogiannis, arXiv 2401.05642).
//!
//! Four property families:
//!
//! 1. **Path equivalence.** `run_detector`, per-event `feed`, whole-stream
//!    `feed_batch`, and the legacy `analyze` wrapper produce bit-identical
//!    reports for the `osr` config, including through an STB round trip
//!    and the `EnginePool` corpus scheduler.
//! 2. **SyncP ⊆ OSR.** OSR's first closure attempt (R = ∅) *is* the
//!    SyncP closure, so every SyncP-reported race must survive under OSR
//!    at the same event, variable, and prior thread — checked over a
//!    10 000-seed deterministic sweep of the three tiny spec families,
//!    on proptest traces mixing every op, and on the calibrated profiles.
//! 3. **Known answers.** The paper figures (Figures 1 and 2 race, with
//!    OSR agreeing with SyncP on the racing events; Figures 3 and
//!    4(a–d) have no predictable race, so OSR — sound by construction —
//!    stays silent) plus the canonical reversal trace where OSR strictly
//!    beats SyncP: 0 races under every sync-preserving relation, exactly
//!    1 under OSR, with the section-reversing witness pinned.
//! 4. **Soundness (the headline).** Every OSR-reported race on
//!    oracle-sized traces is vindicated end to end: the schedule from
//!    `osr_pair_witness` passes the reversal-tolerant replay validator,
//!    and the exhaustive reordering oracle confirms the pair is a
//!    predictable race — sync reversal included, because predictability
//!    never required preserving lock order in the first place.

use proptest::prelude::*;
use smarttrack::{
    analyze, osr_pair_witness, run_detector, AnalysisConfig, BatchJob, Detector, Engine,
    EnginePool, OptLevel, Osr, Relation, Report, SyncP,
};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, Event, EventId, LockId, Op, ThreadId, Trace, TraceBuilder, VarId};
use smarttrack_vindicate::{
    validate_reversal_witness, validate_sync_preserving_witness, OracleResult,
    PredictableRaceOracle,
};

fn osr() -> AnalysisConfig {
    "osr".parse().expect("osr parses")
}

fn syncp() -> AnalysisConfig {
    "syncp".parse().expect("syncp parses")
}

/// The canonical reversal trace — the one race in this battery only OSR
/// sees. t1's critical section writes y then x; t2's section writes y,
/// releases, then writes x outside. Scheduling t2's whole section *before*
/// t1's (a sync reversal) makes the two x-writes adjacent.
fn reversal_trace() -> Trace {
    let (m, x, y) = (LockId::new(0), VarId::new(0), VarId::new(1));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Acquire(m)).unwrap(); // 0
    b.push(t(0), Op::Write(y)).unwrap(); // 1
    b.push(t(0), Op::Write(x)).unwrap(); // 2: e1
    b.push(t(0), Op::Release(m)).unwrap(); // 3
    b.push(t(1), Op::Acquire(m)).unwrap(); // 4
    b.push(t(1), Op::Write(y)).unwrap(); // 5
    b.push(t(1), Op::Release(m)).unwrap(); // 6
    b.push(t(1), Op::Write(x)).unwrap(); // 7: e2
    b.finish()
}

/// Family 1: runs `osr` through every ingestion path and asserts the
/// reports are bit-identical.
fn pinned_osr_report(trace: &Trace, label: &str) -> Report {
    let config = osr();
    let mut det = config.detector().expect("osr is available");
    run_detector(det.as_mut(), trace);
    let direct = det.report().clone();

    let legacy = analyze(trace, config);
    assert_eq!(
        legacy.report, direct,
        "{label}: analyze() diverged from run_detector()"
    );

    let engine = Engine::for_config(config).expect("osr engine");
    let mut session = engine.open();
    for &event in trace.events() {
        session.feed(event).expect("well-formed event");
    }
    let fed = session.finish_one().report;
    assert_eq!(fed, direct, "{label}: per-event feed diverged");

    let mut session = engine.open();
    session.feed_batch(trace.events()).expect("well-formed");
    let batched = session.finish_one().report;
    assert_eq!(batched, direct, "{label}: feed_batch diverged");
    direct
}

/// Family 2: every SyncP race survives under OSR at the same event,
/// variable, and prior thread — the R = ∅ attempt is the SyncP closure,
/// so losing one would mean the reversal machinery broke the base row.
fn assert_syncp_races_survive(syncp: &Report, osr: &Report, label: &str) {
    for race in syncp.races() {
        let kept = osr
            .races()
            .iter()
            .find(|r| r.event == race.event && r.var == race.var)
            .unwrap_or_else(|| {
                panic!(
                    "{label}: SyncP race at {:?} on {:?} vanished under OSR",
                    race.event, race.var
                )
            });
        for prior in &race.prior_threads {
            assert!(
                kept.prior_threads.contains(prior),
                "{label}: SyncP race at {:?} lost prior thread {prior:?} under OSR",
                race.event
            );
        }
    }
    if let Some(s) = syncp.first_race_event() {
        let o = osr
            .first_race_event()
            .expect("a SyncP race implies an OSR race");
        assert!(o <= s, "{label}: OSR first race after SyncP's ({o:?} > {s:?})");
    }
}

/// Families 1 + 2 combined: pin the OSR report across paths, then check
/// the SyncP report embeds in it.
fn assert_syncp_subset_osr(trace: &Trace, label: &str) -> Report {
    let report = pinned_osr_report(trace, label);
    let base = analyze(trace, syncp()).report;
    assert_syncp_races_survive(&base, &report, label);
    report
}

/// Recovers the racing pairs behind one reported race, mirroring the
/// detector's per-thread latest-write/latest-read candidate scheme and
/// keeping whichever pair the offline witness search confirms.
fn racing_pairs(trace: &Trace, report: &Report) -> Vec<(EventId, EventId)> {
    let mut pairs = Vec::new();
    for race in report.races() {
        let e2 = race.event;
        let later: &Event = trace.event(e2);
        for &prior in &race.prior_threads {
            let (mut latest_write, mut latest_read) = (None, None);
            for (id, e) in trace.iter() {
                if id.index() < e2.index() && e.tid == prior && e.conflicts_with(later) {
                    match e.op {
                        Op::Write(_) | Op::VolatileWrite(_) => latest_write = Some(id),
                        _ => latest_read = Some(id),
                    }
                }
            }
            let e1 = [latest_write, latest_read]
                .into_iter()
                .flatten()
                .find(|&e1| osr_pair_witness(trace, e1, e2).is_some())
                .unwrap_or_else(|| {
                    panic!("no candidate pair by {prior:?} at {e2:?} reproduces offline")
                });
            pairs.push((e1, e2));
        }
    }
    pairs
}

/// Family 4: every reported race carries a schedule accepted by the
/// reversal-tolerant validator and is confirmed by the exhaustive oracle
/// (on oracle-sized traces).
fn assert_vindicated(trace: &Trace, report: &Report, label: &str) {
    let oracle = PredictableRaceOracle::new(trace).with_budget(400_000);
    for (e1, e2) in racing_pairs(trace, report) {
        let order = osr_pair_witness(trace, e1, e2).unwrap_or_else(|| {
            panic!("{label}: reported race ({e1:?},{e2:?}) not reproduced offline")
        });
        validate_reversal_witness(trace, &order, (e1, e2))
            .unwrap_or_else(|err| panic!("{label}: witness for ({e1:?},{e2:?}) rejected: {err}"));
        match oracle.is_predictable_race(e1, e2) {
            OracleResult::Race(..) => {}
            OracleResult::NoRace => {
                panic!("{label}: oracle refutes OSR race ({e1:?},{e2:?}) — unsound!")
            }
            // Budget exhaustion is acceptable: the validated witness above
            // is itself a constructive proof of the race.
            OracleResult::Unknown => {}
        }
    }
}

/// Randomized traces mixing every op the event model has (the same
/// strategy the SyncP battery uses).
fn arb_full_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        (2u32..5, 40usize..220, 2u32..6, 1u32..4), // threads, events, vars, locks
        (0u32..2, 0u32..2, 0u32..2),               // condvars, barriers, rwlocks
        any::<u64>(),                              // seed
        any::<bool>(),                             // fork_join
    )
        .prop_map(
            |((threads, events, vars, locks), (condvars, barriers, rwlocks), seed, fork_join)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        condvars,
                        condvar_prob: if condvars > 0 { 0.08 } else { 0.0 },
                        barriers,
                        barrier_prob: if barriers > 0 { 0.04 } else { 0.0 },
                        rwlocks,
                        rw_read_prob: if rwlocks > 0 { 0.1 } else { 0.0 },
                        rw_write_prob: if rwlocks > 0 { 0.04 } else { 0.0 },
                        rw_release_prob: 0.2,
                        try_fail_prob: if rwlocks > 0 { 0.02 } else { 0.0 },
                        acquire_prob: 0.15,
                        release_prob: 0.2,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Families 1 + 2 on randomized full-op traces.
    #[test]
    fn syncp_subset_osr_on_random_traces((spec, seed) in arb_full_spec()) {
        let trace = spec.generate(seed);
        assert_syncp_subset_osr(&trace, "random-full");
    }

    /// Family 1 through the STB codec: a binary round trip must not change
    /// the osr report.
    #[test]
    fn stb_round_trip_preserves_osr_report((spec, seed) in arb_full_spec()) {
        let trace = spec.generate(seed);
        let bytes = smarttrack_trace::binary::to_stb_bytes(&trace);
        let decoded = smarttrack_trace::binary::from_stb_bytes(&bytes).expect("round trip");
        let a = analyze(&trace, osr()).report;
        let b = analyze(&decoded, osr()).report;
        prop_assert_eq!(a, b, "osr diverged across the STB round trip");
    }
}

/// Family 2 at scale: the deterministic 10 000-seed inclusion sweep over
/// the three tiny spec families. Raw detectors, no engine plumbing — this
/// is purely about the closure: SyncP's races must all survive attempt
/// R = ∅, and OSR must find strictly more somewhere in the sweep.
#[test]
fn syncp_subset_osr_sweep_over_10k_seeds() {
    let specs = [
        RandomTraceSpec::tiny(),
        RandomTraceSpec::tiny_sync(),
        RandomTraceSpec::tiny_rw(),
    ];
    let mut osr_extra = 0usize;
    for seed in 0..10_000u64 {
        let trace = specs[(seed % 3) as usize].generate(seed);
        let mut base = SyncP::new();
        run_detector(&mut base, &trace);
        let mut reversal = Osr::new();
        run_detector(&mut reversal, &trace);
        let label = format!("sweep/{seed}");
        assert_syncp_races_survive(base.report(), reversal.report(), &label);
        osr_extra += reversal.report().dynamic_count() - base.report().dynamic_count();
    }
    assert!(
        osr_extra > 0,
        "10k-seed sweep never produced an OSR-only race — the reversal \
         machinery is inert on random traces"
    );
}

/// Family 4 on oracle-sized traces, across the three tiny spec families —
/// the headline soundness check: reversal-tolerant replay plus oracle
/// cross-check on every reported race.
#[test]
fn every_osr_race_on_tiny_traces_is_vindicated() {
    let mut vindicated = 0usize;
    for (name, spec) in [
        ("tiny", RandomTraceSpec::tiny()),
        ("tiny_sync", RandomTraceSpec::tiny_sync()),
        ("tiny_rw", RandomTraceSpec::tiny_rw()),
    ] {
        for seed in 0..60u64 {
            let trace = spec.generate(seed);
            let label = format!("{name}/{seed}");
            let report = assert_syncp_subset_osr(&trace, &label);
            vindicated += report.dynamic_count();
            assert_vindicated(&trace, &report, &label);
        }
    }
    assert!(
        vindicated > 20,
        "battery too weak: only {vindicated} races vindicated"
    );
}

/// Family 3: the paper figures. OSR agrees with SyncP on every figure —
/// Figures 1 and 2 race (the predictable race needs only section
/// *dropping*), Figure 3's WDC race is not predictable, Figure 4(a–d)
/// are race-free — so the reversal machinery must not invent anything.
#[test]
fn paper_figures_known_answers() {
    let fig1 = assert_syncp_subset_osr(&paper::figure1(), "figure1");
    assert_eq!(fig1.dynamic_count(), 1, "figure 1 races under OSR");
    assert_eq!(fig1.first_race_event(), Some(EventId::new(7)));
    assert_vindicated(&paper::figure1(), &fig1, "figure1");

    let fig2 = assert_syncp_subset_osr(&paper::figure2(), "figure2");
    assert_eq!(fig2.dynamic_count(), 1, "figure 2 races under OSR");
    assert_eq!(fig2.first_race_event(), Some(EventId::new(11)));
    assert_vindicated(&paper::figure2(), &fig2, "figure2");

    for (name, trace) in [
        ("figure3", paper::figure3()),
        ("figure4a", paper::figure4a()),
        ("figure4b", paper::figure4b()),
        ("figure4c", paper::figure4c()),
        ("figure4d", paper::figure4d()),
    ] {
        let report = assert_syncp_subset_osr(&trace, name);
        assert!(
            report.is_empty(),
            "{name} has no predictable race, but OSR reported: {report}"
        );
    }
}

/// Family 3, the strict half: the canonical trace where OSR beats SyncP.
/// Every sync-preserving relation stays silent; OSR reports exactly the
/// x-write pair; the witness schedules t2's whole section before t1's;
/// the relaxed validator accepts it; the strict sync-preserving validator
/// rejects it — the strictness ordering this row exists to exercise.
#[test]
fn reversal_trace_is_the_pinned_osr_only_race() {
    let trace = reversal_trace();
    for config in AnalysisConfig::table1() {
        assert!(
            analyze(&trace, config).report.is_empty(),
            "{config} must not see the reversal race"
        );
    }
    assert!(
        analyze(&trace, syncp()).report.is_empty(),
        "SyncP is forced by the lock rule"
    );

    let report = pinned_osr_report(&trace, "reversal");
    assert_eq!(report.dynamic_count(), 1, "exactly the x-write pair");
    assert_eq!(report.first_race_event(), Some(EventId::new(7)));

    let pair = (EventId::new(2), EventId::new(7));
    let order = osr_pair_witness(&trace, pair.0, pair.1).expect("the pair races");
    let ids: Vec<usize> = order.iter().map(|e| e.index()).collect();
    assert_eq!(ids, vec![4, 5, 6, 0, 1, 2, 7], "t2's section runs first");
    validate_reversal_witness(&trace, &order, pair).expect("relaxed validator accepts");
    validate_sync_preserving_witness(&trace, &order, pair)
        .expect_err("strict validator rejects the reversed sections");

    // The oracle — which never cared about lock order, only mutual
    // exclusion — confirms the pair is a genuine predictable race.
    let oracle = PredictableRaceOracle::new(&trace);
    assert!(
        matches!(oracle.is_predictable_race(pair.0, pair.1), OracleResult::Race(..)),
        "exhaustive oracle confirms the reversal race"
    );
    assert_vindicated(&trace, &report, "reversal");
}

/// Family 1 at the corpus layer: an `EnginePool` running the osr lane
/// over a small corpus agrees with per-trace offline analysis.
#[test]
fn engine_pool_osr_lane_matches_offline() {
    let corpus: Vec<(String, Trace)> = (0..6u64)
        .map(|seed| {
            (
                format!("job{seed}"),
                RandomTraceSpec::tiny_sync().generate(seed),
            )
        })
        .collect();
    let engine = Engine::builder()
        .config(osr())
        .config(syncp())
        .build()
        .expect("osr + syncp fan-out");
    let pool = EnginePool::new(engine).with_workers(3);
    let jobs = corpus
        .iter()
        .map(|(label, trace)| BatchJob::from_trace(label.clone(), trace.clone()))
        .collect();
    let corpus_report = pool.run(jobs);
    assert_eq!(corpus_report.failed(), 0);
    for outcome in corpus_report.jobs() {
        let success = outcome
            .result
            .as_ref()
            .unwrap_or_else(|err| panic!("{} failed: {err}", outcome.label));
        let trace = &corpus
            .iter()
            .find(|(label, _)| *label == outcome.label)
            .expect("job label")
            .1;
        assert_eq!(
            success.outcomes[0].report,
            analyze(trace, osr()).report,
            "{}: pool osr lane diverged from offline",
            outcome.label
        );
        assert_syncp_races_survive(
            &success.outcomes[1].report,
            &success.outcomes[0].report,
            &outcome.label,
        );
    }
}

/// The CLI-facing config plumbing: parse, display, availability, listing,
/// and the targeted `osr+g` rejection.
#[test]
fn osr_config_round_trips() {
    let config = osr();
    assert_eq!(config, AnalysisConfig::new(Relation::Osr, OptLevel::Unopt));
    assert_eq!(config.to_string(), "OSR");
    assert_eq!("OSR".parse::<AnalysisConfig>().unwrap(), config);
    assert_eq!("sync-reversal".parse::<AnalysisConfig>().unwrap(), config);
    assert!(config.is_available());
    assert!(
        !AnalysisConfig::table1().contains(&config),
        "OSR is not a Table 1 cell"
    );
    assert!(
        AnalysisConfig::extended().contains(&config),
        "extended listing carries the OSR row"
    );
    let err = "osr+g".parse::<AnalysisConfig>().expect_err("no graph variant");
    assert!(
        err.to_string().contains("no graph-recording"),
        "rejection must explain itself: {err}"
    );
}
