//! Differential battery for the `SyncP` sync-preserving analysis row
//! (Mathur, Pavlogiannis & Viswanathan, arXiv 2010.16385).
//!
//! Four property families:
//!
//! 1. **Path equivalence.** `run_detector`, per-event `feed`, whole-stream
//!    `feed_batch`, and the legacy `analyze` wrapper produce bit-identical
//!    reports for the `syncp` config — the same contract every Table 1
//!    cell honors — including through an STB round trip, the `EnginePool`
//!    corpus scheduler, and a fan-out session with an `OnlineLane`.
//! 2. **HB ⊆ SyncP.** Sync-preserving races strictly include HB races, so
//!    on every trace an HB first race implies a SyncP race at the same
//!    event or earlier — checked on proptest traces mixing every op
//!    (locks, rwlocks, failed trylocks, condvars, barriers, fork/join) and
//!    on the calibrated workload profiles, incl. `rwmix` and `condsync`.
//! 3. **Known answers.** The paper figures (Figure 1 and Figure 2 *are*
//!    sync-preserving races; Figure 3 and Figure 4(a–d) are not
//!    predictable, so SyncP — sound by construction — must stay silent)
//!    and the workload race-mix patterns, whose SyncP static counts equal
//!    the predictable (DC-column) expectation on every calibrated profile.
//! 4. **Soundness (the headline).** Every SyncP-reported race on
//!    oracle-sized traces is vindicated end to end: the closure ideal from
//!    `syncp_pair_ideal` passes the §2.2 witness validator as-is, and the
//!    exhaustive reordering oracle confirms the pair is a predictable race.

use proptest::prelude::*;
use smarttrack::{
    analyze, run_detector, syncp_pair_ideal, AnalysisConfig, BatchJob, Engine, EnginePool,
    OptLevel, Relation, Report,
};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, Event, EventId, Trace};
use smarttrack_vindicate::{validate_witness, OracleResult, PredictableRaceOracle};

fn syncp() -> AnalysisConfig {
    "syncp".parse().expect("syncp parses")
}

/// Family 1: runs `syncp` through every ingestion path and asserts the
/// reports are bit-identical.
fn pinned_syncp_report(trace: &Trace, label: &str) -> Report {
    let config = syncp();
    let mut det = config.detector().expect("syncp is available");
    run_detector(det.as_mut(), trace);
    let direct = det.report().clone();

    let legacy = analyze(trace, config);
    assert_eq!(
        legacy.report, direct,
        "{label}: analyze() diverged from run_detector()"
    );

    let engine = Engine::for_config(config).expect("syncp engine");
    let mut session = engine.open();
    for &event in trace.events() {
        session.feed(event).expect("well-formed event");
    }
    let fed = session.finish_one().report;
    assert_eq!(fed, direct, "{label}: per-event feed diverged");

    let mut session = engine.open();
    session.feed_batch(trace.events()).expect("well-formed");
    let batched = session.finish_one().report;
    assert_eq!(batched, direct, "{label}: feed_batch diverged");
    direct
}

/// Family 2: an HB race implies a SyncP race at the same event or earlier.
fn assert_hb_subset_syncp(trace: &Trace, label: &str) -> Report {
    let report = pinned_syncp_report(trace, label);
    let hb = analyze(trace, AnalysisConfig::new(Relation::Hb, OptLevel::Unopt)).report;
    if let Some(h) = hb.first_race_event() {
        let s = report
            .first_race_event()
            .unwrap_or_else(|| panic!("{label}: HB-race at {h:?} without a SyncP-race"));
        assert!(
            s <= h,
            "{label}: SyncP first race after HB's ({s:?} > {h:?})"
        );
    }
    report
}

/// Recovers the racing pairs behind one reported race. The detector
/// checks, per prior thread, that thread's latest *write* and latest
/// *read* candidates — and the latest conflicting access alone can be
/// synchronization-ordered while the older opposite-kind candidate races
/// (e.g. a lock-protected latest write over an unprotected earlier read),
/// so the recovery mirrors the candidate scheme and keeps whichever pair
/// the offline closure confirms.
fn racing_pairs(trace: &Trace, report: &Report) -> Vec<(EventId, EventId)> {
    use smarttrack_trace::Op;
    let mut pairs = Vec::new();
    for race in report.races() {
        let e2 = race.event;
        let later: &Event = trace.event(e2);
        for &prior in &race.prior_threads {
            let (mut latest_write, mut latest_read) = (None, None);
            for (id, e) in trace.iter() {
                if id.index() < e2.index() && e.tid == prior && e.conflicts_with(later) {
                    match e.op {
                        Op::Write(_) | Op::VolatileWrite(_) => latest_write = Some(id),
                        _ => latest_read = Some(id),
                    }
                }
            }
            let e1 = [latest_write, latest_read]
                .into_iter()
                .flatten()
                .find(|&e1| syncp_pair_ideal(trace, e1, e2).is_some())
                .unwrap_or_else(|| {
                    panic!("no candidate pair by {prior:?} at {e2:?} reproduces offline")
                });
            pairs.push((e1, e2));
        }
    }
    pairs
}

/// Family 4: every reported race carries a valid witness and is confirmed
/// by the exhaustive oracle (on oracle-sized traces).
fn assert_vindicated(trace: &Trace, report: &Report, label: &str) {
    let oracle = PredictableRaceOracle::new(trace).with_budget(400_000);
    for (e1, e2) in racing_pairs(trace, report) {
        let order = syncp_pair_ideal(trace, e1, e2).unwrap_or_else(|| {
            panic!("{label}: reported race ({e1:?},{e2:?}) not reproduced offline")
        });
        validate_witness(trace, &order, (e1, e2))
            .unwrap_or_else(|err| panic!("{label}: witness for ({e1:?},{e2:?}) rejected: {err}"));
        match oracle.is_predictable_race(e1, e2) {
            OracleResult::Race(..) => {}
            OracleResult::NoRace => {
                panic!("{label}: oracle refutes SyncP race ({e1:?},{e2:?}) — unsound!")
            }
            // Budget exhaustion is acceptable: the validated witness above
            // is itself a constructive proof of the race.
            OracleResult::Unknown => {}
        }
    }
}

/// Randomized traces mixing every op the event model has.
fn arb_full_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        (2u32..5, 40usize..220, 2u32..6, 1u32..4), // threads, events, vars, locks
        (0u32..2, 0u32..2, 0u32..2),               // condvars, barriers, rwlocks
        any::<u64>(),                              // seed
        any::<bool>(),                             // fork_join
    )
        .prop_map(
            |((threads, events, vars, locks), (condvars, barriers, rwlocks), seed, fork_join)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        condvars,
                        condvar_prob: if condvars > 0 { 0.08 } else { 0.0 },
                        barriers,
                        barrier_prob: if barriers > 0 { 0.04 } else { 0.0 },
                        rwlocks,
                        rw_read_prob: if rwlocks > 0 { 0.1 } else { 0.0 },
                        rw_write_prob: if rwlocks > 0 { 0.04 } else { 0.0 },
                        rw_release_prob: 0.2,
                        try_fail_prob: if rwlocks > 0 { 0.02 } else { 0.0 },
                        acquire_prob: 0.15,
                        release_prob: 0.2,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Families 1 + 2 on randomized full-op traces.
    #[test]
    fn hb_subset_syncp_on_random_traces((spec, seed) in arb_full_spec()) {
        let trace = spec.generate(seed);
        assert_hb_subset_syncp(&trace, "random-full");
    }

    /// Family 1 through the STB codec: a binary round trip must not change
    /// the syncp report.
    #[test]
    fn stb_round_trip_preserves_syncp_report((spec, seed) in arb_full_spec()) {
        let trace = spec.generate(seed);
        let bytes = smarttrack_trace::binary::to_stb_bytes(&trace);
        let decoded = smarttrack_trace::binary::from_stb_bytes(&bytes).expect("round trip");
        let a = analyze(&trace, syncp()).report;
        let b = analyze(&decoded, syncp()).report;
        prop_assert_eq!(a, b, "syncp diverged across the STB round trip");
    }
}

/// Family 4 on oracle-sized traces, across the three tiny spec families
/// (plain, condvar/barrier, rwlock/trylock) — the headline soundness check.
#[test]
fn every_syncp_race_on_tiny_traces_is_vindicated() {
    let mut vindicated = 0usize;
    for (name, spec) in [
        ("tiny", RandomTraceSpec::tiny()),
        ("tiny_sync", RandomTraceSpec::tiny_sync()),
        ("tiny_rw", RandomTraceSpec::tiny_rw()),
    ] {
        for seed in 0..60u64 {
            let trace = spec.generate(seed);
            let label = format!("{name}/{seed}");
            let report = assert_hb_subset_syncp(&trace, &label);
            vindicated += report.dynamic_count();
            assert_vindicated(&trace, &report, &label);
        }
    }
    assert!(
        vindicated > 20,
        "battery too weak: only {vindicated} races vindicated"
    );
}

/// Family 3: the paper figures. SyncP is exactly the set of
/// sync-preserving races: Figures 1 and 2 have one (their predictable race
/// needs only critical-section *dropping*, never acquisition reordering),
/// Figure 3's WDC race is not predictable, and Figure 4(a–d) are race-free.
#[test]
fn paper_figures_known_answers() {
    let fig1 = pinned_syncp_report(&paper::figure1(), "figure1");
    assert_eq!(fig1.dynamic_count(), 1, "figure 1 races under SyncP");
    assert_eq!(fig1.first_race_event(), Some(EventId::new(7)));
    assert_vindicated(&paper::figure1(), &fig1, "figure1");

    let fig2 = pinned_syncp_report(&paper::figure2(), "figure2");
    assert_eq!(fig2.dynamic_count(), 1, "figure 2 races under SyncP");
    assert_eq!(fig2.first_race_event(), Some(EventId::new(11)));
    assert_vindicated(&paper::figure2(), &fig2, "figure2");

    for (name, trace) in [
        ("figure3", paper::figure3()),
        ("figure4a", paper::figure4a()),
        ("figure4b", paper::figure4b()),
        ("figure4c", paper::figure4c()),
        ("figure4d", paper::figure4d()),
    ] {
        let report = pinned_syncp_report(&trace, name);
        assert!(
            report.is_empty(),
            "{name} has no predictable race, but SyncP reported: {report}"
        );
    }
}

/// Figure 1's witness must be the paper's Figure 1(b) reordering: T2's
/// whole critical section, then the racing pair with T1's section dropped.
#[test]
fn figure1_witness_is_the_paper_reordering() {
    let trace = paper::figure1();
    let order = syncp_pair_ideal(&trace, EventId::new(0), EventId::new(7)).expect("races");
    let ids: Vec<usize> = order.iter().map(|e| e.index()).collect();
    assert_eq!(ids, vec![4, 5, 6, 0, 7]);
    validate_witness(&trace, &order, (EventId::new(0), EventId::new(7))).expect("valid");
}

/// Family 2 + 4 on the thread-disjoint consecutive-barrier-round shape: an
/// unconditional enter → previous-round-exits closure edge would order
/// rounds that share no threads, silently dropping the HB race here (the
/// shape the proptest generator emits only occasionally — pinned so the
/// battery catches a regression deterministically).
#[test]
fn disjoint_barrier_rounds_keep_the_hb_race() {
    use smarttrack_trace::{BarrierId, Op, ThreadId, TraceBuilder, VarId};
    let (bar, x) = (BarrierId::new(0), VarId::new(0));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Write(x)).unwrap();
    b.push(t(0), Op::BarrierEnter(bar)).unwrap();
    b.push(t(1), Op::BarrierEnter(bar)).unwrap();
    b.push(t(0), Op::BarrierExit(bar)).unwrap();
    b.push(t(1), Op::BarrierExit(bar)).unwrap();
    b.push(t(2), Op::BarrierEnter(bar)).unwrap();
    b.push(t(3), Op::BarrierEnter(bar)).unwrap();
    b.push(t(2), Op::BarrierExit(bar)).unwrap();
    b.push(t(3), Op::BarrierExit(bar)).unwrap();
    b.push(t(2), Op::Read(x)).unwrap();
    let trace = b.finish();
    let report = assert_hb_subset_syncp(&trace, "disjoint-rounds");
    assert_eq!(report.first_race_event(), Some(EventId::new(9)));
    assert_vindicated(&trace, &report, "disjoint-rounds");
}

/// The conditional half of the barrier rule: round 0 rendezvouses t0/t1,
/// round 1 rendezvouses t1/t2, and t0's post-round-0 write races t2's
/// post-round-1 write (t0 sits out round 1, so no HB path). Round 0 is
/// partially in the ideal through t1, so its exits must finish draining
/// before round 1's enter — a witness missing t0's exit is rejected by
/// the replay validator (no gathering while a round drains).
#[test]
fn partially_kept_barrier_round_yields_a_valid_witness() {
    use smarttrack_trace::{BarrierId, Op, ThreadId, TraceBuilder, VarId};
    let (bar, x) = (BarrierId::new(0), VarId::new(0));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::BarrierEnter(bar)).unwrap();
    b.push(t(1), Op::BarrierEnter(bar)).unwrap();
    b.push(t(1), Op::BarrierExit(bar)).unwrap();
    b.push(t(0), Op::BarrierExit(bar)).unwrap();
    b.push(t(0), Op::Write(x)).unwrap();
    b.push(t(1), Op::BarrierEnter(bar)).unwrap();
    b.push(t(2), Op::BarrierEnter(bar)).unwrap();
    b.push(t(1), Op::BarrierExit(bar)).unwrap();
    b.push(t(2), Op::BarrierExit(bar)).unwrap();
    b.push(t(2), Op::Write(x)).unwrap();
    let trace = b.finish();
    let report = assert_hb_subset_syncp(&trace, "partial-round");
    assert_eq!(report.first_race_event(), Some(EventId::new(9)));
    assert_vindicated(&trace, &report, "partial-round");
}

/// Family 2 + 4 on the epoch-fast-path shape: t0's second wr(x) repeats
/// under an unchanged sync context (fast path), while the wr(y) in between
/// publishes a reads-from edge t1 later absorbs. A fast path that does not
/// advance the per-variable candidate leaves t1's wr(x) checked against
/// t0's *first* write — strong-ordered via the rf edge — and silently
/// drops the race on the latest one.
#[test]
fn fast_path_candidate_shape_keeps_the_hb_race() {
    use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId};
    let (x, y) = (VarId::new(0), VarId::new(1));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Write(x)).unwrap();
    b.push(t(0), Op::Write(y)).unwrap();
    b.push(t(0), Op::Write(x)).unwrap(); // epoch fast path
    b.push(t(1), Op::Read(y)).unwrap(); // rf: covers t0 through wr(y)
    b.push(t(1), Op::Write(x)).unwrap(); // races with t0's second wr(x)
    let trace = b.finish();
    let report = assert_hb_subset_syncp(&trace, "fast-path-candidate");
    assert!(
        report
            .races()
            .iter()
            .any(|r| r.event == EventId::new(4) && r.var == x),
        "t1's wr(x) must race with t0's latest wr(x): {report}"
    );
    assert_vindicated(&trace, &report, "fast-path-candidate");
}

/// Family 2 + 3 on the calibrated profiles: HB ⊆ SyncP everywhere, and the
/// statically distinct SyncP count equals the predictable (DC-column)
/// expectation — every injected predictable race site is sync-preserving,
/// and the WDC-only false-race sites stay silent.
#[test]
fn calibrated_profiles_match_the_predictable_race_mix() {
    for w in smarttrack_workloads::profiles::extended() {
        let trace = w.trace(2e-6, 7);
        let label = format!("profile/{}", w.name);
        let report = assert_hb_subset_syncp(&trace, &label);
        let (_, _, expected_dc, _) = w.races.expected_static();
        assert_eq!(
            report.static_count(),
            expected_dc as usize,
            "{label}: SyncP static count != predictable expectation"
        );
    }
}

/// The condvar/barrier-heavy and rwlock-heavy profiles at a larger scale,
/// with every reported race vindicated (these traces are oracle-checkable
/// only pair-by-pair via the witness validator; the oracle gets a budget).
#[test]
fn sync_heavy_profiles_are_sound_end_to_end() {
    for w in [
        smarttrack_workloads::profiles::condsync(),
        smarttrack_workloads::profiles::rwmix(),
    ] {
        let trace = w.trace(1e-5, 13);
        let label = format!("sound/{}", w.name);
        let report = assert_hb_subset_syncp(&trace, &label);
        assert!(!report.is_empty(), "{label}: expected injected races");
        for (e1, e2) in racing_pairs(&trace, &report) {
            let order = syncp_pair_ideal(&trace, e1, e2)
                .unwrap_or_else(|| panic!("{label}: ({e1:?},{e2:?}) not reproduced"));
            validate_witness(&trace, &order, (e1, e2))
                .unwrap_or_else(|err| panic!("{label}: witness rejected: {err}"));
        }
    }
}

/// Family 1 at the corpus layer: an `EnginePool` running the syncp lane
/// over a small corpus agrees with per-trace offline analysis.
#[test]
fn engine_pool_syncp_lane_matches_offline() {
    let corpus: Vec<(String, Trace)> = (0..6u64)
        .map(|seed| {
            (
                format!("job{seed}"),
                RandomTraceSpec::tiny_sync().generate(seed),
            )
        })
        .collect();
    let engine = Engine::builder()
        .config(syncp())
        .config(AnalysisConfig::new(Relation::Hb, OptLevel::Fto))
        .build()
        .expect("syncp + fto-hb fan-out");
    let pool = EnginePool::new(engine).with_workers(3);
    let jobs = corpus
        .iter()
        .map(|(label, trace)| BatchJob::from_trace(label.clone(), trace.clone()))
        .collect();
    let corpus_report = pool.run(jobs);
    assert_eq!(corpus_report.failed(), 0);
    for outcome in corpus_report.jobs() {
        let success = outcome
            .result
            .as_ref()
            .unwrap_or_else(|err| panic!("{} failed: {err}", outcome.label));
        let trace = &corpus
            .iter()
            .find(|(label, _)| *label == outcome.label)
            .expect("job label")
            .1;
        let offline = analyze(trace, syncp()).report;
        assert_eq!(
            success.outcomes[0].report, offline,
            "{}: pool syncp lane diverged from offline",
            outcome.label
        );
    }
}

/// A SyncP lane rides a fan-out session next to an `OnlineLane`-bridged
/// concurrent analysis without disturbing either (the mixed
/// sequential/concurrent session the parallel pipeline uses).
#[test]
fn syncp_beside_an_online_lane_in_one_session() {
    use smarttrack::{Detector, Session, SyncP};
    use smarttrack_parallel::{ConcurrentFtoHb, OnlineAnalysis, OnlineLane, WorldSpec};

    let trace = RandomTraceSpec::tiny_sync().generate(42);
    let analysis = ConcurrentFtoHb::new(WorldSpec::of_trace(&trace));
    let lane = OnlineLane::new(&analysis);
    let mut session = Session::from_detectors(vec![
        Box::new(SyncP::new()) as Box<dyn Detector>,
        Box::new(lane),
    ]);
    session.feed_trace(&trace).expect("well-formed");
    // Detector-borrowed sessions carry no engine config rows, so read the
    // lane reports from the snapshot rather than finish()'s outcomes.
    let snapshot = session.snapshot();
    assert_eq!(snapshot.lanes.len(), 2);
    assert_eq!(snapshot.lanes[0].name, "SyncP");
    assert_eq!(
        snapshot.lanes[0].report,
        analyze(&trace, syncp()).report,
        "fan-out SyncP lane diverged from offline"
    );
    session.finish();
    assert_eq!(
        analysis.report(),
        analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Fto)).report,
        "OnlineLane HB lane diverged from sequential FTO-HB"
    );
}

/// The CLI-facing config plumbing: parse, display, availability, listing.
#[test]
fn syncp_config_round_trips() {
    let config = syncp();
    assert_eq!(
        config,
        AnalysisConfig::new(Relation::SyncP, OptLevel::Unopt)
    );
    assert_eq!(config.to_string(), "SyncP");
    assert_eq!("SyncP".parse::<AnalysisConfig>().unwrap(), config);
    assert_eq!("sync-preserving".parse::<AnalysisConfig>().unwrap(), config);
    assert!(config.is_available());
    assert!(
        !AnalysisConfig::table1().contains(&config),
        "SyncP is not a Table 1 cell"
    );
    assert!(
        AnalysisConfig::extended().contains(&config),
        "extended listing carries the SyncP row"
    );
    assert!(
        "syncp+g".parse::<AnalysisConfig>().is_err(),
        "no graph variant"
    );
}
