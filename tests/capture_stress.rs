//! Capture robustness battery (ISSUE 7): release-mode soak across many
//! threads × many objects × forced mid-run epoch flushes, plus
//! panic-mid-pattern recovery. The soak is `#[ignore]`d in debug builds
//! (like the batch soak) — unoptimized schedules interleave unrealistically
//! slowly; CI runs it under `--release`.

use std::sync::Arc;

use smarttrack::{analyze, AnalysisConfig};
use smarttrack_capture::twins::{run_twin, TwinKind};
use smarttrack_capture::{
    AtomicU32, Barrier, CaptureConfig, CaptureSession, CaptureSink, Mutex, Nudge, Shared,
};
use smarttrack_trace::binary::from_stb_bytes;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only soak (run with --release)")]
fn soak_many_threads_many_objects_forced_flushes() {
    const THREADS: usize = 8;
    const OBJECTS: usize = 6;
    const ITERS: usize = 300;

    let (sink, bytes) = CaptureSink::memory();
    // One-event buffers force an epoch flush on every record; tiny STB
    // chunks force constant chunk turnover under that load.
    let config = CaptureConfig {
        buffer_events: 1,
        chunk_events: 16,
        nudge: Some(Nudge {
            period: 7,
            phase: 3,
        }),
    };
    let session = CaptureSession::new(sink, config);

    let mutexes: Vec<_> = (0..OBJECTS)
        .map(|_| Arc::new(Mutex::new(&session, 0u64)))
        .collect();
    let shareds: Vec<_> = (0..OBJECTS)
        .map(|_| Arc::new(Shared::new(&session, 0u32)))
        .collect();
    let volatiles: Vec<_> = (0..OBJECTS)
        .map(|_| Arc::new(AtomicU32::new(&session, 0)))
        .collect();
    let rendezvous = Arc::new(Barrier::new(&session, THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let session = session.clone();
            let mutexes = mutexes.clone();
            let shareds = shareds.clone();
            let volatiles = volatiles.clone();
            let rendezvous = rendezvous.clone();
            session.clone().spawn(move || {
                for i in 0..ITERS {
                    let k = (i * 31 + t * 7) % OBJECTS;
                    match i % 4 {
                        0 | 1 => {
                            // Guarded read-modify-write: every shared[k]
                            // access happens under mutexes[k].
                            let mut g = mutexes[k].lock();
                            *g += 1;
                            let v = shareds[k].get();
                            shareds[k].set(v.wrapping_add(1));
                            drop(g);
                        }
                        2 => {
                            volatiles[k].fetch_add(1);
                            let _ = volatiles[k].load();
                        }
                        _ => {
                            if i % 60 == 3 {
                                // All threads reach the same wait count:
                                // i cycles identically in every worker.
                                rendezvous.wait();
                            }
                            if i % 37 == 7 {
                                session.flush_thread();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("soak worker");
    }

    let report = session.finish().expect("finish soak");
    assert_eq!(report.threads as usize, THREADS + 1);
    let stb = bytes.lock().expect("memory sink").clone();
    let trace = from_stb_bytes(&stb).expect("soak capture is validator-clean");
    assert_eq!(trace.len() as u64, report.events);
    // Everything is guarded (mutexes), synchronization-only (volatiles,
    // barrier), or fork/join ordered: no analysis may report a race.
    for config in AnalysisConfig::table1() {
        let outcome = analyze(&trace, config);
        assert_eq!(outcome.report.static_count(), 0, "under {config}");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only soak (run with --release)")]
fn soak_every_twin_under_heavy_flush_pressure() {
    for kind in TwinKind::ALL {
        for round in 0..10u32 {
            let (sink, bytes) = CaptureSink::memory();
            let config = CaptureConfig {
                buffer_events: 1,
                chunk_events: 4,
                nudge: Some(Nudge {
                    period: (round % 4) + 1,
                    phase: round,
                }),
            };
            run_twin(kind, sink, config).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            let trace = from_stb_bytes(&bytes.lock().unwrap())
                .unwrap_or_else(|e| panic!("{} round {round}: {e}", kind.name()));
            for config in AnalysisConfig::table1() {
                assert_eq!(
                    analyze(&trace, config).report.static_count(),
                    kind.expected_static(),
                    "{} round {round} under {config}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn panic_mid_pattern_yields_validator_clean_prefix() {
    let (sink, bytes) = CaptureSink::memory();
    let session = CaptureSession::new(sink, CaptureConfig::default());
    let m = Arc::new(Mutex::new(&session, 0u32));
    let x = Arc::new(Shared::new(&session, 0u32));

    let crasher = {
        let (m, x) = (m.clone(), x.clone());
        session.spawn(move || {
            let _g = m.lock();
            x.set(1);
            panic!("mid-pattern crash");
        })
    };
    let survivor = {
        let (m, x) = (m.clone(), x.clone());
        session.spawn(move || {
            let _g = m.lock();
            let v = x.get();
            x.set(v + 1);
        })
    };
    assert!(crasher.join().is_err(), "crasher must panic");
    survivor.join().expect("survivor");

    let report = session.finish().expect("finish after panic");
    let stb = bytes.lock().expect("memory sink").clone();
    let trace = from_stb_bytes(&stb).expect("panic capture is a validator-clean prefix");
    assert_eq!(trace.len() as u64, report.events);
    // The crasher's release was recorded during unwinding (guard drop),
    // so the lock discipline is intact and all x accesses stay guarded.
    for config in AnalysisConfig::table1() {
        assert_eq!(
            analyze(&trace, config).report.static_count(),
            0,
            "under {config}"
        );
    }
}

#[test]
fn mid_run_flush_interleavings_stay_decodable() {
    // Threads flushing at unsynchronized moments produce out-of-order
    // cross-thread handoffs to the emitter; the watermark protocol must
    // still emit a globally ordered, decodable stream.
    let (sink, bytes) = CaptureSink::memory();
    let config = CaptureConfig {
        buffer_events: 3,
        chunk_events: 5,
        nudge: Some(Nudge {
            period: 2,
            phase: 0,
        }),
    };
    let session = CaptureSession::new(sink, config);
    let m = Arc::new(Mutex::new(&session, 0u64));
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let session = session.clone();
            let m = m.clone();
            session.clone().spawn(move || {
                for i in 0..50 {
                    *m.lock() += 1;
                    if i % (t + 2) == 0 {
                        session.flush_thread();
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    assert_eq!(*m.lock(), 200);
    let report = session.finish().expect("finish");
    let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("decodable");
    // 4 threads × 50 × (acq+rel) + 4 forks + 4 joins + the final checking
    // lock on the main thread.
    assert_eq!(trace.len(), 4 * 50 * 2 + 8 + 2);
    assert_eq!(report.events, trace.len() as u64);
}
