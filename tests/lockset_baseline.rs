//! Checks the paper's §6 claim about lockset analysis: it "detects races
//! that violate a lock set discipline, but inherently reports false races".
//! On the paper's own example executions, Eraser both finds the true races
//! and reports a race the exhaustive oracle proves cannot happen — which no
//! analysis in the paper's Table 1 matrix reports.

use smarttrack_detect::{make_detector, run_detector, EraserLockset, OptLevel, Relation};
use smarttrack_trace::paper;
use smarttrack_vindicate::{OracleResult, PredictableRaceOracle};

fn eraser_count(trace: &smarttrack_trace::Trace) -> usize {
    let mut eraser = EraserLockset::new();
    eraser.run(trace);
    eraser.report().dynamic_count()
}

#[test]
fn eraser_finds_the_true_races_of_figures_1_and_2() {
    for (name, trace) in [("figure1", paper::figure1()), ("figure2", paper::figure2())] {
        assert_eq!(eraser_count(&trace), 1, "{name}");
        let oracle = PredictableRaceOracle::new(&trace);
        assert!(
            matches!(oracle.any_predictable_race(), OracleResult::Race(..)),
            "{name}: the reported race is real"
        );
    }
}

#[test]
fn eraser_reports_a_race_on_figure3_that_provably_cannot_happen() {
    let trace = paper::figure3();
    assert_eq!(eraser_count(&trace), 1, "Eraser reports a violation");

    let oracle = PredictableRaceOracle::new(&trace);
    assert_eq!(
        oracle.any_predictable_race(),
        OracleResult::NoRace,
        "ground truth: no predictable race exists"
    );

    // The sound end of the paper's matrix agrees with the oracle.
    for relation in [Relation::Hb, Relation::Wcp, Relation::Dc] {
        for level in [OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack] {
            let Some(mut det) = make_detector(relation, level, false) else {
                continue;
            };
            run_detector(det.as_mut(), &trace);
            assert_eq!(
                det.report().dynamic_count(),
                0,
                "{relation}/{level} on figure3"
            );
        }
    }
}

#[test]
fn eraser_false_positives_on_every_race_free_figure4_execution() {
    // The figure 4 executions synchronize through *different* locks per
    // access (that is what exercises SmartTrack's CCS machinery), so the
    // candidate lockset empties even though the oracle proves every one of
    // them race free. Lockset analysis reports all four; every Table 1
    // analysis correctly reports none (asserted by the paper-figure tests).
    for (name, trace) in [
        ("figure4a", paper::figure4a()),
        ("figure4b", paper::figure4b()),
        ("figure4c", paper::figure4c()),
        ("figure4d", paper::figure4d()),
    ] {
        let oracle = PredictableRaceOracle::new(&trace);
        assert_eq!(
            oracle.any_predictable_race(),
            OracleResult::NoRace,
            "{name}"
        );
        assert_eq!(
            eraser_count(&trace),
            1,
            "{name}: lockset discipline violated"
        );
    }
}
