//! Differential battery pinning the analyses across optimization levels and
//! ingestion paths — the guard rail for the hot-path metadata overhaul.
//!
//! Two families of properties, checked on the paper figures, proptest-random
//! traces, and the calibrated workloads:
//!
//! 1. **Path equivalence (the refactor pin).** For every available Table 1
//!    cell, the direct [`run_detector`] driver (no session, no interner),
//!    per-event `feed`, whole-stream `feed_batch`, and the legacy
//!    [`analyze`] wrapper produce *bit-identical* [`Report`]s and the same
//!    statically-distinct race count. Any divergence introduced by the dense
//!    state tables, the session interner, or the small-size clock shows up
//!    here first.
//!
//! 2. **Cross-level agreement.** All optimization levels of one relation
//!    (Unopt / FT2 / FTO / SmartTrack) detect the *same first race* — and on
//!    the trace truncated just after that first race, their full reports are
//!    bit-identical (same event, location, threads, kind, and prior-thread
//!    set). Full-trace reports intentionally diverge *after* the first race:
//!    epoch/ownership metadata degrades differently from vector clocks once
//!    racing accesses have been absorbed (the paper's §5.4 analyses keep
//!    running after a race, but their subsequent counts are
//!    representation-dependent), so demanding whole-trace equality across
//!    levels would over-specify. Race-free traces must agree exactly at
//!    every level.

use proptest::prelude::*;
use smarttrack::{analyze, run_detector, AnalysisConfig, Engine, OptLevel, Relation, Report};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, Trace, TraceBuilder};

/// The optimization levels available for one relation (Table 1 row).
fn levels(relation: Relation) -> Vec<OptLevel> {
    match relation {
        Relation::Hb => vec![OptLevel::Unopt, OptLevel::Epochs, OptLevel::Fto],
        _ => vec![OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack],
    }
}

/// Runs `config` over `trace` through every ingestion path, asserts they all
/// produce bit-identical reports, and returns that report.
fn pinned_report(trace: &Trace, config: AnalysisConfig, label: &str) -> Report {
    // Direct whole-trace driver: no session wrapper, raw (un-interned) ids.
    let mut det = config.detector().expect("valid Table 1 cell");
    run_detector(det.as_mut(), trace);
    let direct = det.report().clone();

    // Legacy one-shot wrapper (session-backed since PR 1).
    let legacy = analyze(trace, config);
    assert_eq!(
        legacy.report, direct,
        "{label}: {config} analyze() diverged from run_detector()"
    );

    // Streaming session, one event at a time.
    let engine = Engine::for_config(config).expect("valid Table 1 cell");
    let mut session = engine.open();
    for &event in trace.events() {
        session.feed(event).expect("well-formed event");
    }
    let fed = session.finish_one().report;
    assert_eq!(
        fed, direct,
        "{label}: {config} per-event feed diverged from run_detector()"
    );

    // Streaming session, whole batch.
    let mut session = engine.open();
    session.feed_batch(trace.events()).expect("well-formed");
    let batched = session.finish_one().report;
    assert_eq!(
        batched, direct,
        "{label}: {config} feed_batch diverged from run_detector()"
    );

    assert_eq!(
        legacy.report.static_count(),
        direct.static_count(),
        "{label}: {config} statically-distinct counts diverged"
    );
    direct
}

/// The trace prefix holding the first `events` events.
fn truncated(trace: &Trace, events: usize) -> Trace {
    let mut b = TraceBuilder::new();
    for ev in &trace.events()[..events] {
        b.push_event(*ev).expect("prefix of a valid trace is valid");
    }
    b.finish()
}

/// Checks both property families for every cell of one relation.
fn assert_levels_agree(trace: &Trace, relation: Relation, label: &str) {
    let reports: Vec<(OptLevel, Report)> = levels(relation)
        .into_iter()
        .map(|level| {
            let config = AnalysisConfig::new(relation, level);
            (level, pinned_report(trace, config, label))
        })
        .collect();

    let (base_level, base) = &reports[0];
    for (level, report) in &reports[1..] {
        assert_eq!(
            report.first_race_event(),
            base.first_race_event(),
            "{label}: {relation} first race differs between {base_level} and {level}"
        );
        if base.is_empty() {
            assert_eq!(
                report, base,
                "{label}: {relation} race-free verdict differs at {level}"
            );
        }
    }

    // Prefix property: truncated just after the first race, every level
    // reports the identical single race.
    if let Some(first) = base.first_race_event() {
        let cut = truncated(trace, first.index() + 1);
        let mut cut_reports = levels(relation).into_iter().map(|level| {
            let config = AnalysisConfig::new(relation, level);
            (level, pinned_report(&cut, config, label))
        });
        let (_, cut_base) = cut_reports.next().expect("at least one level");
        assert_eq!(cut_base.dynamic_count(), 1, "{label}: prefix has one race");
        for (level, report) in cut_reports {
            assert_eq!(
                report, cut_base,
                "{label}: {relation} prefix report differs at {level}"
            );
        }
    }
}

fn assert_all_relations_agree(trace: &Trace, label: &str) {
    for relation in Relation::ALL {
        assert_levels_agree(trace, relation, label);
    }
}

#[test]
fn paper_figures_agree_across_levels_and_paths() {
    for (name, trace) in paper::all_figures() {
        assert_all_relations_agree(&trace, name);
    }
}

#[test]
fn calibrated_workloads_agree_across_levels_and_paths() {
    for (i, workload) in [
        smarttrack_workloads::profiles::xalan(),
        smarttrack_workloads::profiles::avrora(),
    ]
    .into_iter()
    .enumerate()
    {
        let trace = workload.trace(1e-6, 21 + i as u64);
        assert_all_relations_agree(&trace, workload.name);
    }
}

/// Graph-recording Unopt variants ride the same ingestion paths; pin them
/// too (they share the dense tables with their plain siblings).
#[test]
fn graph_variants_match_plain_unopt_reports() {
    for (name, trace) in paper::all_figures() {
        for relation in [Relation::Dc, Relation::Wdc] {
            let plain = AnalysisConfig::new(relation, OptLevel::Unopt);
            let graph = plain.with_graph();
            let plain_report = pinned_report(&trace, plain, name);
            let graph_report = pinned_report(&trace, graph, name);
            assert_eq!(
                plain_report, graph_report,
                "{name}: {relation} graph recording changed the report"
            );
        }
    }
}

fn arb_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        2u32..5,       // threads
        80usize..320,  // events
        2u32..6,       // vars
        1u32..4,       // locks
        any::<u64>(),  // seed
        any::<bool>(), // fork_join
    )
        .prop_map(|(threads, events, vars, locks, seed, fork_join)| {
            (
                RandomTraceSpec {
                    threads,
                    events,
                    vars,
                    locks,
                    acquire_prob: 0.18,
                    release_prob: 0.22,
                    fork_join,
                    ..RandomTraceSpec::default()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn randomized_traces_agree_across_levels_and_paths((spec, seed) in arb_spec()) {
        let trace = spec.generate(seed);
        assert_all_relations_agree(&trace, "random");
    }
}
