//! A minimal JSON syntax checker shared by the batch-analysis tests (via
//! `#[path]` imports — files under `tests/support/` are not test crates).
//!
//! The workspace has no serde; this validates well-formedness only (full
//! value grammar: objects, arrays, strings with escapes, numbers,
//! booleans, null), which is what the tests need to guarantee any real
//! JSON consumer can read `CorpusReport::to_json` / `BENCH_BATCH.json`.

/// Panics with a position-annotated message if `text` is not one
/// well-formed JSON value (plus trailing whitespace).
pub fn assert_valid_json(text: &str) {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    assert!(
        pos == bytes.len(),
        "trailing garbage at byte {pos}: {:?}",
        &text[pos..text.len().min(pos + 20)]
    );
}

fn fail(bytes: &[u8], pos: usize, expected: &str) -> ! {
    let context = String::from_utf8_lossy(&bytes[pos..bytes.len().min(pos + 20)]);
    panic!("invalid JSON at byte {pos}: expected {expected}, found {context:?}");
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => fail(bytes, *pos, "a value"),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return;
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            fail(bytes, *pos, "an object key");
        }
        parse_string(bytes, pos);
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            fail(bytes, *pos, "':'");
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return;
            }
            _ => fail(bytes, *pos, "',' or '}'"),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return;
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return;
            }
            _ => fail(bytes, *pos, "',' or ']'"),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) {
    *pos += 1; // opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return;
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes.get(*pos + 2..*pos + 6);
                    if !hex.is_some_and(|h| h.iter().all(u8::is_ascii_hexdigit)) {
                        fail(bytes, *pos, "four hex digits after \\u");
                    }
                    *pos += 6;
                }
                _ => fail(bytes, *pos, "a valid escape"),
            },
            0x00..=0x1f => fail(bytes, *pos, "no raw control characters in strings"),
            _ => *pos += 1,
        }
    }
    fail(bytes, *pos, "a closing quote");
}

fn parse_number(bytes: &[u8], pos: &mut usize) {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        fail(bytes, start, "digits");
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            fail(bytes, start, "fraction digits");
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            fail(bytes, start, "exponent digits");
        }
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str) {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
    } else {
        fail(bytes, *pos, literal);
    }
}
