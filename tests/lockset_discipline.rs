//! Property test for the Eraser baseline: on executions that follow a
//! consistent lock discipline (every access to a variable holds that
//! variable's guard lock), lockset analysis is silent — and so is every
//! analysis in the paper's Table 1 matrix, because guarded accesses cannot
//! race under any of the four relations.

use proptest::prelude::*;
use smarttrack_detect::{make_detector, run_detector, table1_configs, EraserLockset};
use smarttrack_trace::{LockId, Op, ThreadId, Trace, TraceBuilder, VarId};

/// One guarded access: thread, variable (its guard lock is `lock(var)`),
/// write?, and whether an extra outer lock wraps the critical section.
type GuardedAccess = (u32, u32, bool, bool);

fn disciplined_trace(accesses: &[GuardedAccess]) -> Trace {
    let outer = LockId::new(100);
    let mut b = TraceBuilder::new();
    for &(thread, var, is_write, nested) in accesses {
        let t = ThreadId::new(thread);
        let guard = LockId::new(var);
        let x = VarId::new(var);
        // Each critical section is contiguous in the linearization, so the
        // builder's well-formedness (no acquiring a held lock) holds by
        // construction.
        if nested {
            b.push(t, Op::Acquire(outer)).unwrap();
        }
        b.push(t, Op::Acquire(guard)).unwrap();
        b.push(t, if is_write { Op::Write(x) } else { Op::Read(x) })
            .unwrap();
        b.push(t, Op::Release(guard)).unwrap();
        if nested {
            b.push(t, Op::Release(outer)).unwrap();
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disciplined_traces_are_silent_everywhere(
        accesses in proptest::collection::vec(
            (0u32..4, 0u32..3, any::<bool>(), any::<bool>()),
            1..50,
        )
    ) {
        let trace = disciplined_trace(&accesses);

        let mut eraser = EraserLockset::new();
        eraser.run(&trace);
        prop_assert_eq!(eraser.report().dynamic_count(), 0, "lockset discipline holds");

        for (relation, level, with_graph) in table1_configs() {
            let mut det = make_detector(relation, level, with_graph).expect("valid config");
            run_detector(det.as_mut(), &trace);
            prop_assert_eq!(
                det.report().dynamic_count(),
                0,
                "{} must not race on a guarded trace",
                det.name()
            );
        }
    }
}
