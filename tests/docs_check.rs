//! Documentation cross-checks: every `smarttrack <subcommand>` invocation
//! inside a code fence of `docs/*.md` must name a real CLI subcommand, so
//! the prose cannot drift from the binary. CI runs this explicitly next to
//! `cargo doc` (see `.github/workflows/ci.yml`).

use std::path::{Path, PathBuf};

/// The subcommands the real CLI advertises, parsed from its own help text
/// (the COMMANDS section lists one per entry at four-space indent).
fn cli_subcommands() -> Vec<String> {
    let mut out = Vec::new();
    smarttrack_cli::run(&["help".to_string()], &mut out).expect("help prints");
    let help = String::from_utf8(out).expect("utf-8 help");

    let mut commands = Vec::new();
    let mut in_commands = false;
    for line in help.lines() {
        if line.starts_with("COMMANDS:") {
            in_commands = true;
            continue;
        }
        if in_commands {
            if !line.starts_with(' ') && !line.is_empty() {
                break; // next section (ANALYSES:, …)
            }
            // Command entries sit at exactly four spaces; continuation/help
            // lines are indented deeper.
            if let Some(rest) = line.strip_prefix("    ") {
                if !rest.starts_with(' ') {
                    if let Some(name) = rest.split_whitespace().next() {
                        commands.push(name.to_string());
                    }
                }
            }
        }
    }
    assert!(
        commands.contains(&"analyze".to_string()) && commands.contains(&"convert".to_string()),
        "help parsing broke: {commands:?}"
    );
    commands
}

/// `smarttrack <word>` tokens found inside ``` fences of one markdown file.
fn fenced_cli_invocations(path: &Path) -> Vec<(usize, String)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut found = Vec::new();
    let mut in_fence = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence {
            continue;
        }
        let mut tokens = line.split_whitespace().peekable();
        while let Some(token) = tokens.next() {
            if token == "smarttrack" {
                if let Some(&next) = tokens.peek() {
                    // Flags (`--format`), placeholders (`<COMMAND>`), and
                    // parenthetical annotations (the crate map's
                    // `smarttrack (core)`) are not subcommand references.
                    if !next.starts_with('-') && !next.starts_with('<') && !next.starts_with('(') {
                        found.push((i + 1, next.to_string()));
                    }
                }
            }
        }
    }
    found
}

fn doc_files() -> Vec<PathBuf> {
    let docs = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().and_then(|e| e.to_str()) == Some("md")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn docs_code_fences_name_real_cli_subcommands() {
    let commands = cli_subcommands();
    let files = doc_files();
    assert!(
        files.len() >= 2,
        "expected at least TRACE_FORMATS.md and ARCHITECTURE.md, found {files:?}"
    );
    let mut checked = 0;
    for file in &files {
        for (line, sub) in fenced_cli_invocations(file) {
            assert!(
                commands.contains(&sub),
                "{}:{line}: `smarttrack {sub}` is not a real subcommand (known: {commands:?})",
                file.display()
            );
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "no `smarttrack <subcommand>` fences found — the check is vacuous"
    );
}

#[test]
fn docs_exist_and_cover_every_format() {
    let formats_doc = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/TRACE_FORMATS.md");
    let text = std::fs::read_to_string(formats_doc).expect("docs/TRACE_FORMATS.md exists");
    for needle in [
        "STB",
        "native",
        "CSV",
        "STD",
        "89 53 54 42",
        "varint",
        "acqr",
        "acqw",
        "tryf",
        "0x03",
    ] {
        assert!(text.contains(needle), "TRACE_FORMATS.md lost `{needle}`");
    }
    let arch_doc = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/ARCHITECTURE.md");
    let text = std::fs::read_to_string(arch_doc).expect("docs/ARCHITECTURE.md exists");
    for needle in [
        "smarttrack-trace",
        "smarttrack-detect",
        "Engine",
        "Session",
        "StbReader",
        "acqr",
        "read section",
        "rwlock_differential",
        "rwmix",
        "SyncP",
        "sync-preserving",
        "syncp_differential",
        "OSR",
        "abort-and-commit",
        "validate_reversal_witness",
        "LockOrderReversed",
        "osr_differential",
    ] {
        assert!(text.contains(needle), "ARCHITECTURE.md lost `{needle}`");
    }
    let serve_doc = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/SERVE_PROTOCOL.md");
    let text = std::fs::read_to_string(serve_doc).expect("docs/SERVE_PROTOCOL.md exists");
    for needle in [
        "Hello",
        "Welcome",
        "Busy",
        "Report",
        "MAX_FRAME_BYTES",
        "u32 LE",
        "StbAssembler",
    ] {
        assert!(text.contains(needle), "SERVE_PROTOCOL.md lost `{needle}`");
    }
    let capture_doc = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/CAPTURE.md");
    let text = std::fs::read_to_string(capture_doc).expect("docs/CAPTURE.md exists");
    for needle in [
        "CaptureSession",
        "CaptureSink",
        "watermark",
        "#[track_caller]",
        "--captured",
        "--nudge",
        "twins",
        "AcqRead",
        "AcqWrite",
        "TryAcqFail",
        "reader-overlap",
    ] {
        assert!(text.contains(needle), "CAPTURE.md lost `{needle}`");
    }
}

/// The serve/load help text must document the wire-facing knobs the
/// protocol spec references, so `smarttrack serve --help` cannot drift
/// from `docs/SERVE_PROTOCOL.md`.
#[test]
fn serve_and_load_help_cover_their_knobs() {
    for (cmd, needles) in [
        (
            "serve",
            &["--listen", "--workers", "--idle-timeout", "--analysis"][..],
        ),
        (
            "load",
            &[
                "--clients",
                "--scale",
                "--chunk-bytes",
                "--captured",
                "--nudge",
            ][..],
        ),
    ] {
        let mut out = Vec::new();
        smarttrack_cli::run(&["help".to_string(), cmd.to_string()], &mut out)
            .unwrap_or_else(|e| panic!("help {cmd}: {e:?}"));
        let help = String::from_utf8(out).expect("utf-8 help");
        for needle in needles {
            assert!(
                help.contains(needle),
                "`smarttrack {cmd}` help lost `{needle}`"
            );
        }
    }
}
