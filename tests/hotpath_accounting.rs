//! Hot-path accounting battery: the epoch fast paths must actually be
//! taken, the dense metadata layout must actually be smaller than the
//! HashMap layout it replaced, the new `RunSummary` accounting must be
//! consistent across ingestion paths, and session interning must be
//! invisible in every output — including mid-stream snapshots.

use smarttrack::{
    analyze, run_detector, AnalysisConfig, Engine, FtoCase, LockVarTable, OptLevel, Relation,
};
use smarttrack_trace::{Event, LockId, Op, ThreadId, Trace, TraceBuilder, VarId};

fn access_count(trace: &Trace) -> u64 {
    trace
        .events()
        .iter()
        .filter(|e| e.op.is_read() || e.op.is_write())
        .count() as u64
}

fn read_count(trace: &Trace) -> u64 {
    trace.events().iter().filter(|e| e.op.is_read()).count() as u64
}

/// The paper's fast-path story (§4.1, Table 12): on epoch-friendly
/// workloads like avrora, the overwhelming majority of reads are same-epoch
/// and never touch a clock. The counters must show that regime.
#[test]
fn avrora_reads_hit_the_epoch_fast_path() {
    let trace = smarttrack_workloads::profiles::avrora().trace(1e-5, 11);
    let reads = read_count(&trace);
    for name in ["fto-hb", "st-wcp", "st-dc", "st-wdc"] {
        let config: AnalysisConfig = name.parse().unwrap();
        let outcome = analyze(&trace, config);
        let cases = outcome.cases.as_ref().expect("FTO/ST detectors count");
        let fast_reads =
            cases.count(FtoCase::ReadSameEpoch) + cases.count(FtoCase::SharedSameEpoch);
        let pct = 100.0 * fast_reads as f64 / reads as f64;
        assert!(
            pct > 80.0,
            "{name}: only {pct:.1}% of avrora reads took a same-epoch fast path"
        );
    }
}

/// Every access is accounted exactly once: fast + slow = reads + writes,
/// for every Table 1 cell (detectors without FTO cases included).
#[test]
fn fast_plus_slow_covers_every_access() {
    for (label, trace) in [
        (
            "xalan",
            smarttrack_workloads::profiles::xalan().trace(2e-6, 5),
        ),
        (
            "avrora",
            smarttrack_workloads::profiles::avrora().trace(2e-6, 5),
        ),
    ] {
        let accesses = access_count(&trace);
        for config in AnalysisConfig::table1() {
            let outcome = analyze(&trace, config);
            assert_eq!(
                outcome.summary.fast_path_hits + outcome.summary.slow_path_hits,
                accesses,
                "{label}: {config} mis-accounts accesses"
            );
        }
    }
}

/// The dense per-(lock, variable) tables must undercut what the same
/// occupancy would cost in the pre-overhaul per-lock `HashMap<VarId, _>`
/// layout — replayed over the real xalan access pattern.
#[test]
fn dense_lockvar_layout_beats_hashmap_equivalent_on_xalan() {
    let trace = smarttrack_workloads::profiles::xalan().trace(1e-5, 11);
    let mut table = LockVarTable::new(false);
    let mut clock = smarttrack_clock::VectorClock::new();
    let mut held: Vec<Vec<LockId>> = Vec::new();
    for (id, event) in trace.iter() {
        let t = event.tid.index();
        if held.len() <= t {
            held.resize_with(t + 1, Vec::new);
        }
        match event.op {
            Op::Acquire(m) => held[t].push(m),
            Op::Release(m) => {
                held[t].retain(|&l| l != m);
                clock.increment(event.tid);
                let snap = clock.clone();
                table.on_release(event.tid, m, &snap, id);
            }
            Op::Read(x) => {
                for &m in &held[t] {
                    table.mark_read(m, x);
                }
            }
            Op::Write(x) => {
                for &m in &held[t] {
                    table.mark_read(m, x);
                    table.mark_write(m, x);
                }
            }
            _ => {}
        }
    }
    let dense = table.footprint_bytes();
    let hashmap = table.hashmap_equivalent_bytes();
    assert!(dense > 0 && hashmap > 0, "both layouts hold state");
    assert!(
        dense < hashmap,
        "dense layout ({dense} B) must undercut the HashMap layout ({hashmap} B)"
    );
}

/// `RunSummary` hit accounting is identical whichever ingestion path ran
/// the analysis; byte accounting is internally consistent, and the
/// interned session path never holds *more* state than the raw-id driver
/// (the calibrated workloads use sparse first-use ids, which the interner
/// compacts — that difference is the feature, so bytes are compared by
/// inequality, not equality).
#[test]
fn run_summary_accounting_is_path_independent() {
    let trace = smarttrack_workloads::profiles::xalan().trace(2e-6, 9);
    for config in AnalysisConfig::table1() {
        let via_analyze = analyze(&trace, config).summary;
        let mut det = config.detector().unwrap();
        let via_driver = run_detector(det.as_mut(), &trace);
        assert_eq!(via_analyze.events, via_driver.events, "{config}");
        assert_eq!(
            (via_analyze.fast_path_hits, via_analyze.slow_path_hits),
            (via_driver.fast_path_hits, via_driver.slow_path_hits),
            "{config}: hit accounting diverges across paths"
        );
        assert!(via_analyze.final_state_bytes > 0, "{config}");
        assert!(
            via_analyze.peak_footprint_bytes >= via_analyze.final_state_bytes,
            "{config}: peak folds in the final exact walk"
        );
        assert!(
            via_analyze.final_state_bytes <= via_driver.final_state_bytes,
            "{config}: interned session state ({}) must not exceed raw-id driver state ({})",
            via_analyze.final_state_bytes,
            via_driver.final_state_bytes
        );
        assert_eq!(
            via_analyze.events,
            trace.len(),
            "{config}: every event counted"
        );
    }
}

/// A trace whose ids are sparse: session interning must be invisible —
/// reports carry the *original* ids and match the un-interned
/// `run_detector` path bit-for-bit.
fn sparse_trace() -> Trace {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let (x, y) = (VarId::new(70_000), VarId::new(13));
    let m = LockId::new(9_999);
    let v = VarId::new(55_555);
    let mut b = TraceBuilder::new();
    b.push(t0, Op::Acquire(m)).unwrap();
    b.push(t0, Op::Write(x)).unwrap();
    b.push(t0, Op::Release(m)).unwrap();
    b.push(t0, Op::VolatileWrite(v)).unwrap();
    b.push(t1, Op::VolatileRead(v)).unwrap();
    b.push(t1, Op::Read(x)).unwrap(); // ordered via the volatile
    b.push(t1, Op::Write(y)).unwrap();
    b.push(t0, Op::Write(y)).unwrap(); // races with T1's write
    b.push(t1, Op::Read(x)).unwrap();
    b.finish()
}

#[test]
fn interned_sessions_report_original_sparse_ids() {
    let trace = sparse_trace();
    for config in AnalysisConfig::table1() {
        let mut det = config.detector().unwrap();
        run_detector(det.as_mut(), &trace);
        let direct = det.report().clone();

        let engine = Engine::for_config(config).unwrap();
        let mut session = engine.open();
        for &event in trace.events() {
            session.feed(event).unwrap();
        }
        // Mid-ingest, races() must already restore original ids.
        for notice in session.races() {
            assert_eq!(notice.race.var, VarId::new(13), "{config}: y restored");
        }
        let outcome = session.finish_one();
        assert_eq!(
            outcome.report, direct,
            "{config}: interned session diverged from direct driver"
        );
    }
    // The race is on y = x13 with its original id.
    let report = analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Fto)).report;
    assert_eq!(report.dynamic_count(), 1);
    assert_eq!(report.races()[0].var, VarId::new(13));
}

/// A *recorded trace* holding a huge sparse id announces a huge
/// cardinality hint (`num_vars` is max index + 1) — pre-sizing must clamp
/// it (`StreamHint::MAX_PRESIZE`) instead of aborting on a multi-gigabyte
/// `Vec::reserve` before the first event.
#[test]
fn huge_hinted_cardinalities_are_clamped() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let huge = VarId::new(u32::MAX - 7);
    let mut b = TraceBuilder::new();
    b.push(t0, Op::Write(huge)).unwrap();
    b.push(t1, Op::Write(huge)).unwrap();
    let trace = b.finish();
    assert!(trace.num_vars() > smarttrack::StreamHint::MAX_PRESIZE);
    // analyze() routes through a session: full-knowledge hint, interned ids.
    let outcome = analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Fto));
    assert_eq!(outcome.report.dynamic_count(), 1);
    assert_eq!(outcome.report.races()[0].var, huge);
    assert!(
        outcome.summary.final_state_bytes < 16 << 20,
        "hinted pre-sizing stayed clamped: {} bytes",
        outcome.summary.final_state_bytes
    );
}

/// A hostile id near `u32::MAX` must not blow up session memory (the
/// direct-map interner spills to a hash map; detectors only ever see the
/// compact slot).
#[test]
fn huge_ids_do_not_explode_session_tables() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let huge = VarId::new(u32::MAX - 7);
    let engine = Engine::builder().relation(Relation::Hb).build().unwrap();
    let mut session = engine.open();
    session.feed(Event::new(t0, Op::Write(huge))).unwrap();
    session.feed(Event::new(t1, Op::Write(huge))).unwrap();
    let snap = session.snapshot();
    assert!(
        snap.lanes[0].footprint_bytes < 1 << 20,
        "detector tables stay compact: {} bytes",
        snap.lanes[0].footprint_bytes
    );
    let outcome = session.finish_one();
    assert_eq!(outcome.report.dynamic_count(), 1);
    assert_eq!(outcome.report.races()[0].var, huge, "original id restored");
}

/// Mid-stream snapshots are prefix-exact: after k events, each lane's
/// snapshot report equals analyzing the k-event prefix as its own trace —
/// generation-stamped tables and interned ids included.
#[test]
fn snapshots_are_prefix_exact() {
    let traces = [
        ("sparse", sparse_trace()),
        (
            "xalan",
            smarttrack_workloads::profiles::xalan().trace(2e-6, 3),
        ),
    ];
    for (label, trace) in traces {
        let engine = Engine::builder().table1().build().unwrap();
        let mut session = engine.open();
        let cut = trace.len() / 2;
        session.feed_batch(&trace.events()[..cut]).unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.events, cut);

        let mut prefix = TraceBuilder::new();
        for &event in &trace.events()[..cut] {
            prefix.push_event(event).unwrap();
        }
        let prefix = prefix.finish();
        for (lane, config) in snap.lanes.iter().zip(AnalysisConfig::table1()) {
            let expected = analyze(&prefix, config).report;
            assert_eq!(
                lane.report, expected,
                "{label}: {config} snapshot is not prefix-exact"
            );
            assert_eq!(
                lane.hot_path.fast_hits + lane.hot_path.slow_hits,
                access_count(&prefix),
                "{label}: {config} snapshot accounting"
            );
            assert!(lane.hot_path.state_bytes > 0, "{label}: {config}");
        }
        // Feeding the rest still works and the final report matches the
        // whole trace (snapshots do not disturb generation-stamped state).
        session.feed_batch(&trace.events()[cut..]).unwrap();
        for (outcome, config) in session.finish().iter().zip(AnalysisConfig::table1()) {
            let expected = analyze(&trace, config).report;
            assert_eq!(outcome.report, expected, "{label}: {config} after resume");
        }
    }
}

/// The per-event sampled estimate never exceeds the exact walk (the
/// estimate is table capacities only; the exact walk adds per-clock heap
/// spill and Rc-shared CCS structures on top of the same capacities).
#[test]
fn state_estimate_never_exceeds_exact_walk() {
    for (label, trace) in [
        (
            "xalan",
            smarttrack_workloads::profiles::xalan().trace(2e-6, 4),
        ),
        (
            "avrora",
            smarttrack_workloads::profiles::avrora().trace(2e-6, 4),
        ),
    ] {
        for config in AnalysisConfig::table1() {
            let mut det = config.detector().unwrap();
            run_detector(det.as_mut(), &trace);
            assert!(
                det.state_bytes() <= det.footprint_bytes(),
                "{label}: {config} estimate exceeds the exact walk"
            );
        }
    }
}
