//! End-to-end CLI pipeline: the workflow a downstream user runs —
//! generate a workload, inspect it, analyze it, and check the reported
//! races — chained through real files exactly as the shell would.

use std::path::PathBuf;

use smarttrack_cli::run;

#[path = "support/json.rs"]
mod json;

struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        TempFile(
            std::env::temp_dir().join(format!("smarttrack-e2e-{}-{tag}.trace", std::process::id())),
        )
    }

    fn as_str(&self) -> String {
        self.0.display().to_string()
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("`smarttrack {}` failed: {e}", args.join(" ")));
    String::from_utf8(out).expect("utf-8 output")
}

#[test]
fn generate_stats_analyze_vindicate_pipeline() {
    let file = TempFile::new("xalan");
    let path = file.as_str();

    // generate: xalan is the paper's most lock-bound program.
    let text = cli(&[
        "generate", "xalan", "--scale", "4e-6", "--seed", "11", "--out", &path,
    ]);
    assert!(text.contains("wrote xalan"));

    // stats: the Table 2 shape survives the file round trip.
    let text = cli(&["stats", &path]);
    assert!(text.contains("locks held at NSEAs"), "{text}");

    // analyze: predictive analyses find the injected predictive-only races
    // that HB misses.
    let text = cli(&[
        "analyze",
        &path,
        "--analysis",
        "fto-hb",
        "--analysis",
        "st-wdc",
    ]);
    let count = |name: &str| -> usize {
        let line = text.lines().find(|l| l.contains(name)).unwrap();
        let words: Vec<&str> = line.split_whitespace().collect();
        words[1].parse().unwrap()
    };
    assert!(
        count("SmartTrack-WDC") > count("FTO-HB"),
        "predictive must dominate HB on xalan: {text}"
    );

    // vindicate: every checked WDC race resolves to VERIFIED or unknown
    // without error, and the summary line is present.
    let text = cli(&["vindicate", &path]);
    assert!(text.contains("verified"), "{text}");
}

#[test]
fn figure_to_two_phase_and_windowed_pipeline() {
    let file = TempFile::new("fig1");
    let path = file.as_str();

    cli(&["figure", "figure1", "--out", &path]);

    // two-phase (§4.3): phase 1 detects, phase 2 replays and verifies.
    let text = cli(&["two-phase", &path, "--relation", "dc"]);
    assert!(text.contains("1 verified, 0 unverified"), "{text}");

    // windowed (§6): a whole-trace window finds the same race.
    let text = cli(&["windowed", &path, "--window", "8"]);
    assert!(text.contains("race: rd(x0)"), "{text}");

    // deadlock: the figure has a race but no predictable deadlock.
    let text = cli(&["deadlock", &path]);
    assert!(text.contains("no predictable deadlock"), "{text}");
}

#[test]
fn render_output_is_stable_for_documentation() {
    let file = TempFile::new("fig3");
    let path = file.as_str();
    cli(&["figure", "figure3", "--out", &path]);
    let text = cli(&["render", &path]);
    assert!(text.contains("Thread 1"));
    assert!(text.contains("Thread 3"));
}

#[test]
fn stb_binary_pipeline() {
    // The production recording workflow: generate straight to STB, stream
    // it through the analyses, convert it for a text-only consumer, and
    // check every path agrees.
    let stb = TempFile(
        std::env::temp_dir().join(format!("smarttrack-e2e-{}-xalan.stb", std::process::id())),
    );
    let stb_path = stb.as_str();
    let text = cli(&[
        "generate", "xalan", "--scale", "4e-6", "--seed", "11", "--out", &stb_path,
    ]);
    assert!(text.contains("(stb)"), "{text}");

    // The STB file is dramatically smaller than the same trace as text.
    let native = TempFile::new("xalan-native");
    let native_path = native.as_str();
    cli(&[
        "convert",
        &stb_path,
        "--to",
        "native",
        "--out",
        &native_path,
    ]);
    let stb_size = std::fs::metadata(&stb.0).unwrap().len();
    let text_size = std::fs::metadata(&native.0).unwrap().len();
    assert!(
        stb_size * 3 < text_size,
        "STB ({stb_size} B) should be far smaller than text ({text_size} B)"
    );

    // analyze streams the binary input and matches the text-file verdicts.
    let from_stb = cli(&[
        "analyze",
        &stb_path,
        "--analysis",
        "fto-hb",
        "--analysis",
        "st-wdc",
    ]);
    assert!(from_stb.contains("streamed STB"), "{from_stb}");
    let from_text = cli(&[
        "analyze",
        &native_path,
        "--analysis",
        "fto-hb",
        "--analysis",
        "st-wdc",
    ]);
    let verdicts = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("static /"))
            .map(|l| l.split_whitespace().take(4).collect::<Vec<_>>().join(" "))
            .collect()
    };
    assert_eq!(
        verdicts(&from_stb),
        verdicts(&from_text),
        "{from_stb}\n{from_text}"
    );

    // stats and two-phase accept the binary input directly.
    let text = cli(&["stats", &stb_path]);
    assert!(text.contains("locks held at NSEAs"), "{text}");
    let text = cli(&["two-phase", &stb_path, "--relation", "dc"]);
    assert!(text.contains("phase 1"), "{text}");

    // A truncated STB file fails with a precise error, not a panic.
    let bytes = std::fs::read(&stb.0).unwrap();
    let cut = TempFile::new("xalan-cut");
    std::fs::write(&cut.0, &bytes[..bytes.len() / 2]).unwrap();
    let mut out = Vec::new();
    let args: Vec<String> = ["analyze", &cut.as_str()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let err = run(&args, &mut out).unwrap_err();
    assert!(err.to_string().contains("truncated"), "{err}");
}

#[test]
fn batch_corpus_pipeline() {
    // The corpus workflow: generate a mixed-format corpus directory with
    // the CLI itself, batch-analyze it in parallel, and consume the JSON
    // report — exactly what a recording fleet's ingestion service does.
    let dir = std::env::temp_dir().join(format!("smarttrack-e2e-{}-corpus", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str = dir.display().to_string();
    for (profile, seed, ext) in [
        ("xalan", "21", "stb"),
        ("xalan", "22", "trace"),
        ("avrora", "21", "stb"),
        ("avrora", "22", "trace"),
    ] {
        let out = format!("{dir_str}/{profile}-{seed}.{ext}");
        cli(&[
            "generate", profile, "--scale", "2e-6", "--seed", seed, "--out", &out,
        ]);
    }

    // batch over the directory, JSON report to a file.
    let report_path = format!("{dir_str}/report.json");
    let text = cli(&[
        "batch",
        &dir_str,
        "--analysis",
        "fto-hb",
        "--analysis",
        "st-wdc",
        "--jobs",
        "2",
        "--out",
        &report_path,
    ]);
    assert!(text.contains("4 jobs"), "{text}");
    assert!(text.contains("wrote JSON report"), "{text}");
    let report = std::fs::read_to_string(&report_path).unwrap();
    json::assert_valid_json(&report);
    assert!(report.contains("\"schema\": \"smarttrack-corpus-report/v1\""));
    assert!(report.contains("\"succeeded\": 4"), "{report}");
    assert!(report.contains("xalan-21.stb"), "{report}");

    // --jobs 1 and --jobs 4 produce the identical report.
    let solo = cli(&["batch", &dir_str, "--jobs", "1", "--json"]);
    let four = cli(&["batch", &dir_str, "--jobs", "4", "--json"]);
    // The on-disk report.json from the earlier run is inside the corpus
    // directory but is not a trace file, so it is skipped — both runs see
    // the same 4 jobs.
    assert_eq!(solo, four, "worker count must not change the report");
    json::assert_valid_json(&solo);

    // Exit codes: a corrupt member is tolerated by default (exit 0,
    // failure row in the report) and fatal under --strict (exit 1).
    let stb = std::fs::read(dir.join("xalan-21.stb")).unwrap();
    std::fs::write(dir.join("cut.stb"), &stb[..stb.len() / 2]).unwrap();
    let tolerant = cli(&["batch", &dir_str]);
    assert!(tolerant.contains("1 failed"), "{tolerant}");
    let args: Vec<String> = ["batch", &dir_str, "--strict"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let err = run(&args, &mut out).unwrap_err();
    assert_eq!(err.exit_code(), 1);
    assert!(err.to_string().contains("cut.stb"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn osr_analyze_and_batch_pipeline() {
    // The extension-row workflow: a recorded trace whose only race needs a
    // critical-section reversal flows through `analyze` and `batch` with
    // the osr lane beside syncp — osr sees the race, syncp must not, and
    // the batch report is invariant under the job count.
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
    let (m, x, y) = (LockId::new(0), VarId::new(0), VarId::new(1));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Acquire(m)).unwrap();
    b.push(t(0), Op::Write(y)).unwrap();
    b.push(t(0), Op::Write(x)).unwrap();
    b.push(t(0), Op::Release(m)).unwrap();
    b.push(t(1), Op::Acquire(m)).unwrap();
    b.push(t(1), Op::Write(y)).unwrap();
    b.push(t(1), Op::Release(m)).unwrap();
    b.push(t(1), Op::Write(x)).unwrap();
    let reversal = b.finish();

    let dir = std::env::temp_dir().join(format!("smarttrack-e2e-{}-osr", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str = dir.display().to_string();
    let trace_path = format!("{dir_str}/reversal.stb");
    std::fs::write(
        &trace_path,
        smarttrack_trace::binary::to_stb_bytes(&reversal),
    )
    .unwrap();
    cli(&["figure", "figure1", "--out", &format!("{dir_str}/fig1.trace")]);

    // analyze: the syncp/osr split on one file.
    let text = cli(&[
        "analyze",
        &trace_path,
        "--analysis",
        "syncp",
        "--analysis",
        "osr",
    ]);
    let count = |name: &str| -> usize {
        let line = text
            .lines()
            .find(|l| l.split_whitespace().next() == Some(name))
            .unwrap_or_else(|| panic!("no {name} row in: {text}"));
        line.split_whitespace().nth(1).unwrap().parse().unwrap()
    };
    assert_eq!(count("SyncP"), 0, "{text}");
    assert_eq!(count("OSR"), 1, "{text}");

    // batch: both extension lanes over the corpus, job-count invariant.
    let solo = cli(&[
        "batch", &dir_str, "--analysis", "syncp", "--analysis", "osr", "--jobs", "1", "--json",
    ]);
    let two = cli(&[
        "batch", &dir_str, "--analysis", "syncp", "--analysis", "osr", "--jobs", "2", "--json",
    ]);
    assert_eq!(solo, two, "job count must not change the osr batch report");
    json::assert_valid_json(&solo);
    assert!(solo.contains("\"succeeded\": 2"), "{solo}");
    assert!(solo.contains("reversal.stb"), "{solo}");

    // osr+g is a usage error with the targeted explanation, exit code 2.
    let args: Vec<String> = ["analyze", &trace_path, "--analysis", "osr+g"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let err = run(&args, &mut out).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    assert!(err.to_string().contains("no graph-recording"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interchange_format_round_trip_pipeline() {
    // A trace leaves this toolchain as STD, is "edited by another tool"
    // (we re-read it), comes back, and analyzes identically — the
    // interoperability workflow for RAPID-format corpora.
    let native = TempFile::new("fig2-native");
    let native_path = native.as_str();
    cli(&["figure", "figure2", "--out", &native_path]);

    // Export to STD (extension-inferred target format).
    let std_file = TempFile(
        std::env::temp_dir().join(format!("smarttrack-e2e-{}-fig2.std", std::process::id())),
    );
    let std_path = std_file.as_str();
    let text = cli(&["convert", &native_path, "--out", &std_path]);
    assert!(text.contains("(std)"), "{text}");

    // The .std file analyzes directly (format detected by extension), and
    // the DC verdicts match the paper: a DC-race but no WCP-race.
    let text = cli(&[
        "analyze",
        &std_path,
        "--analysis",
        "st-dc",
        "--analysis",
        "fto-wcp",
    ]);
    let count = |name: &str| -> usize {
        let line = text.lines().find(|l| l.contains(name)).unwrap();
        line.split_whitespace().nth(1).unwrap().parse().unwrap()
    };
    assert_eq!(count("SmartTrack-DC"), 1, "{text}");
    assert_eq!(count("FTO-WCP"), 0, "{text}");

    // Round-trip back to native; verdicts are unchanged.
    let back = TempFile::new("fig2-back");
    let back_path = back.as_str();
    cli(&["convert", &std_path, "--to", "native", "--out", &back_path]);
    let text = cli(&["analyze", &back_path, "--analysis", "st-dc"]);
    assert!(text.contains("SmartTrack-DC"), "{text}");

    // And to CSV, whose header row survives parsing.
    let csv = cli(&["convert", &native_path, "--to", "csv"]);
    assert!(csv.starts_with("tid,op,target,loc\n"), "{csv}");
}
