//! STB streaming equivalence: a session fed event-by-event from an
//! `StbReader` must report exactly what the same session fed the decoded
//! whole `Trace` reports — for every Table 1 cell, on the paper figures,
//! randomized traces, and the calibrated workloads. This is the guarantee
//! that lets the CLI stream `.stb` input in bounded memory without
//! changing any verdict.

use proptest::prelude::*;
use smarttrack::{AnalysisConfig, Engine, StreamHint};
use smarttrack_trace::binary::{self, StbHint, StbReader, StbWriter};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, Trace};

/// Runs the full Table 1 fan-out over `trace` twice — whole-trace fed and
/// STB-stream fed — and asserts identical reports lane by lane.
fn assert_stream_matches_whole(trace: &Trace, chunk_events: usize, context: &str) {
    let table1 = Engine::builder().table1().build().expect("valid matrix");

    let mut whole = table1.open();
    whole.feed_trace(trace).expect("validated trace");
    let whole_outcomes = whole.finish();

    // Encode with the given chunking, then stream through a reader.
    let mut writer =
        StbWriter::with_hint(Vec::new(), StbHint::of_trace(trace)).chunk_events(chunk_events);
    for event in trace.events() {
        writer.write(event).expect("Vec sink");
    }
    let bytes = writer.finish().expect("Vec sink");
    let reader = StbReader::new(&bytes[..]).expect("header decodes");

    let streamed_engine = Engine::builder()
        .table1()
        .hint(StreamHint::of_stb_header(reader.header()))
        .build()
        .expect("valid matrix");
    let mut streamed = streamed_engine.open();
    for event in reader {
        streamed
            .feed(event.expect("stream decodes"))
            .expect("well-formed stream");
    }
    let streamed_outcomes = streamed.finish();

    assert_eq!(whole_outcomes.len(), streamed_outcomes.len(), "{context}");
    for (w, s) in whole_outcomes.iter().zip(&streamed_outcomes) {
        assert_eq!(w.name, s.name, "{context}");
        assert_eq!(w.report, s.report, "{context}: lane {}", w.name);
        assert_eq!(
            w.report.static_count(),
            s.report.static_count(),
            "{context}: lane {}",
            w.name
        );
        assert_eq!(
            w.summary.events, s.summary.events,
            "{context}: lane {}",
            w.name
        );
    }
}

#[test]
fn paper_figures_report_identically_streamed_and_whole() {
    for (name, trace) in paper::all_figures() {
        for chunk in [1, 4, 4096] {
            assert_stream_matches_whole(&trace, chunk, name);
        }
    }
}

#[test]
fn calibrated_workloads_report_identically_streamed_and_whole() {
    for workload in [
        smarttrack_workloads::profiles::xalan(),
        smarttrack_workloads::profiles::avrora(),
    ] {
        let trace = workload.trace(2e-6, 7);
        assert_stream_matches_whole(&trace, 256, workload.name);
    }
}

#[test]
fn single_analysis_streamed_outcome_matches_legacy_analyze() {
    let trace = paper::figure1();
    let bytes = binary::to_stb_bytes(&trace);
    let config = AnalysisConfig::new(smarttrack::Relation::Dc, smarttrack::OptLevel::SmartTrack);

    let engine = Engine::for_config(config).expect("available");
    let mut session = engine.open();
    for event in StbReader::new(&bytes[..]).expect("valid STB") {
        session.feed(event.expect("decodes")).expect("well-formed");
    }
    let streamed = session.finish_one();

    let direct = smarttrack::analyze(&trace, config);
    assert_eq!(streamed.report, direct.report);
    assert_eq!(streamed.summary.events, direct.summary.events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn randomized_traces_report_identically_streamed_and_whole(
        seed in any::<u64>(),
        events in 50usize..300,
        chunk in 1usize..128,
    ) {
        let trace = RandomTraceSpec {
            events,
            volatiles: 2,
            volatile_prob: 0.05,
            fork_join: true,
            ..RandomTraceSpec::default()
        }
        .generate(seed);
        assert_stream_matches_whole(&trace, chunk, "randomized");
    }
}
