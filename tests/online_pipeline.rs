//! End-to-end pipeline tests: program model → scheduler → online detection →
//! vindication, across scheduling policies.

use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_detect::{Detector, SmartTrackDc, SmartTrackWcp};
use smarttrack_runtime::{monitor, Program, SchedulePolicy, Scheduler, ThreadSpec};
use smarttrack_trace::{LockId, VarId};
use smarttrack_vindicate::{vindicate_first_race, VindicationResult};

fn figure1_program() -> Program {
    let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
    let m = LockId::new(0);
    Program::new(vec![
        ThreadSpec::new().read(x).acquire(m).write(y).release(m),
        ThreadSpec::new().acquire(m).read(z).release(m).write(x),
    ])
}

#[test]
fn predictive_detection_is_schedule_independent() {
    // The defining property of predictive analysis (§1): the Figure 1 race
    // is found from *every* schedule, including ones where HB also sees it.
    let program = figure1_program();
    for seed in 0..20 {
        let mut det = SmartTrackDc::new();
        let trace = monitor::run_with_detector(&program, SchedulePolicy::Random(seed), &mut det)
            .expect("no deadlock");
        assert_eq!(
            det.report().dynamic_count(),
            1,
            "seed {seed}: SmartTrack-DC must find the race in every schedule\n{}",
            smarttrack_trace::fmt::render(&trace)
        );
    }
}

#[test]
fn hb_detection_depends_on_schedule() {
    // Sanity check of the motivation: across random schedules HB sometimes
    // misses the Figure 1 race (program order) and sometimes finds it
    // (when the scheduler interleaves the accesses unordered).
    let program = figure1_program();
    let mut found = 0;
    let mut missed = 0;
    for seed in 0..40 {
        let trace = Scheduler::new(&program, SchedulePolicy::Random(seed))
            .run(|_, _| {})
            .expect("no deadlock");
        let hb = analyze(&trace, AnalysisConfig::new(Relation::Hb, OptLevel::Fto));
        if hb.report.is_empty() {
            missed += 1;
        } else {
            found += 1;
        }
    }
    assert!(found > 0, "some schedule exposes the race to HB");
    assert!(missed > 0, "some schedule hides the race from HB");
}

#[test]
fn online_races_vindicate_end_to_end() {
    let program = figure1_program();
    let mut det = SmartTrackWcp::new();
    let trace = monitor::run_with_detector(&program, SchedulePolicy::ProgramOrder, &mut det)
        .expect("no deadlock");
    let result = vindicate_first_race(&trace, det.report()).expect("race reported");
    assert!(matches!(result, VindicationResult::Race(_)));
}

#[test]
fn wait_based_handoff_is_not_a_race() {
    // wait() = release; acquire (§5.1): the data handoff below is properly
    // synchronized and must stay silent under every analysis.
    let m = LockId::new(0);
    let data = VarId::new(0);
    let program = Program::new(vec![
        ThreadSpec::new()
            .acquire(m)
            .wait(m) // let the producer in
            .read(data)
            .release(m),
        ThreadSpec::new().acquire(m).write(data).release(m),
    ]);
    for policy in [SchedulePolicy::RoundRobin(1), SchedulePolicy::Random(3)] {
        let trace = Scheduler::new(&program, policy)
            .run(|_, _| {})
            .expect("no deadlock");
        for cfg in smarttrack::AnalysisConfig::table1() {
            let outcome = analyze(&trace, cfg);
            assert!(
                outcome.report.is_empty(),
                "{policy:?}/{}: false race on a wait()-protected handoff",
                outcome.name
            );
        }
    }
}

#[test]
fn detectors_as_trait_objects_compose() {
    let program = figure1_program();
    let mut hb: Box<dyn Detector> = Box::new(smarttrack_detect::FtoHb::new());
    let mut wcp: Box<dyn Detector> = Box::new(SmartTrackWcp::new());
    let mut dc: Box<dyn Detector> = Box::new(SmartTrackDc::new());
    monitor::run_with_detectors(
        &program,
        SchedulePolicy::ProgramOrder,
        &mut [hb.as_mut(), wcp.as_mut(), dc.as_mut()],
    )
    .expect("no deadlock");
    assert!(hb.report().is_empty());
    assert_eq!(wcp.report().dynamic_count(), 1);
    assert_eq!(dc.report().dynamic_count(), 1);
}

#[test]
fn every_table1_detector_runs_online() {
    let program = figure1_program();
    let mut racy = 0;
    for cfg in smarttrack::AnalysisConfig::table1() {
        let mut det = cfg.detector().expect("valid");
        monitor::run_with_detector(&program, SchedulePolicy::ProgramOrder, det.as_mut())
            .expect("no deadlock");
        racy += usize::from(!det.report().is_empty());
    }
    // HB variants (3) silent; all predictive variants (11) report.
    assert_eq!(racy, 11);
}
