//! Calibration tests for the DaCapo-style workloads: the synthetic traces
//! must reproduce the paper's Table 2 *ordering* of program characteristics
//! and Table 7 race mixes, at any scale and seed.

use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_trace::stats::TraceStats;
use smarttrack_workloads::profiles;

#[test]
fn every_profile_has_expected_static_race_counts() {
    for w in profiles::all() {
        let trace = w.trace(3e-5, 11);
        let (hb, wcp, dc, wdc) = w.races.expected_static();
        let count = |relation| {
            analyze(&trace, AnalysisConfig::new(relation, OptLevel::Unopt))
                .report
                .static_count() as u32
        };
        assert_eq!(count(Relation::Hb), hb, "{} HB", w.name);
        assert_eq!(count(Relation::Wcp), wcp, "{} WCP", w.name);
        assert_eq!(count(Relation::Dc), dc, "{} DC", w.name);
        assert_eq!(count(Relation::Wdc), wdc, "{} WDC", w.name);
    }
}

#[test]
fn race_counts_are_stable_across_seeds() {
    let w = profiles::sunflow();
    let (_, _, dc, _) = w.races.expected_static();
    for seed in [1, 99, 12345] {
        let trace = w.trace(2e-5, seed);
        let got = analyze(
            &trace,
            AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack),
        )
        .report
        .static_count() as u32;
        assert_eq!(got, dc, "sunflow DC seed {seed}");
    }
}

#[test]
fn lock_intensity_ranking_matches_table2() {
    // Table 2 ordering of "locks held at NSEAs ≥1": xalan > h2 > batik >
    // luindex > tomcat > avrora > pmd.
    let pct = |w: &smarttrack_workloads::Workload| {
        TraceStats::compute(&w.trace(2e-5, 5)).pct_nsea_holding(1)
    };
    let xalan = pct(&profiles::xalan());
    let h2 = pct(&profiles::h2());
    let luindex = pct(&profiles::luindex());
    let avrora = pct(&profiles::avrora());
    let pmd = pct(&profiles::pmd());
    assert!(xalan > h2, "xalan {xalan:.1} > h2 {h2:.1}");
    assert!(h2 > luindex, "h2 {h2:.1} > luindex {luindex:.1}");
    assert!(
        luindex > avrora,
        "luindex {luindex:.1} > avrora {avrora:.1}"
    );
    assert!(avrora > pmd, "avrora {avrora:.1} > pmd {pmd:.1}");
}

#[test]
fn nesting_depth_distribution_follows_profiles() {
    // luindex is the paper's deep-nesting outlier (25% of NSEAs hold ≥3
    // locks); avrora has essentially none.
    let s_luindex = TraceStats::compute(&profiles::luindex().trace(3e-5, 2));
    let s_avrora = TraceStats::compute(&profiles::avrora().trace(3e-5, 2));
    assert!(
        s_luindex.pct_nsea_holding(3) > 5.0,
        "luindex ≥3-lock NSEAs: {:.2}%",
        s_luindex.pct_nsea_holding(3)
    );
    assert!(
        s_avrora.pct_nsea_holding(3) < 1.0,
        "avrora ≥3-lock NSEAs: {:.2}%",
        s_avrora.pct_nsea_holding(3)
    );
}

#[test]
fn same_epoch_ratio_ranking_matches_table2() {
    // sunflow (2771:1) ≫ h2 (12:1) > xalan (2.6:1).
    let frac =
        |w: &smarttrack_workloads::Workload| TraceStats::compute(&w.trace(2e-5, 9)).nsea_fraction();
    let sunflow = frac(&profiles::sunflow());
    let h2 = frac(&profiles::h2());
    let xalan = frac(&profiles::xalan());
    assert!(sunflow < h2, "sunflow {sunflow:.3} < h2 {h2:.3}");
    assert!(h2 < xalan, "h2 {h2:.3} < xalan {xalan:.3}");
}

#[test]
fn scaling_changes_length_not_sites() {
    let w = profiles::pmd();
    let small = w.trace(1e-5, 4);
    let large = w.trace(8e-5, 4);
    assert!(large.len() > 4 * small.len());
    let races = |t: &smarttrack_trace::Trace| {
        analyze(t, AnalysisConfig::new(Relation::Wdc, OptLevel::Fto))
            .report
            .static_count()
    };
    assert_eq!(
        races(&small),
        races(&large),
        "static sites are scale-invariant"
    );
}
