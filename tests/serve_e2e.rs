//! End-to-end serving-layer equivalence.
//!
//! The daemon is only correct if serving is *invisible* to the analysis:
//! a trace streamed over TCP through chunked frames, interleaved with
//! seven other clients, must produce bit-identical races to an offline
//! [`smarttrack::analyze`] of the same trace — whatever the server's
//! worker count, and even across a detach/resume in the middle of the
//! stream. Pushed race notices must be genuine: every one appears in the
//! session's final report.

use std::net::SocketAddr;

use smarttrack::{analyze, AnalysisConfig};
use smarttrack_serve::{ServeClient, Server, ServerConfig, WireRace};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::Trace;

/// The lanes every test server runs: the HB baseline plus the strongest
/// SmartTrack predictive analysis.
const LANES: &[&str] = &["fto-hb", "st-wdc"];

fn test_server(workers: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            analyses: LANES.iter().map(|n| n.parse().unwrap()).collect(),
            workers: Some(workers),
            ..ServerConfig::default()
        },
    )
    .expect("bind test server")
}

fn corpus(n: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| {
            RandomTraceSpec {
                threads: 3 + (i as u32 % 3),
                events: 400 + i * 97,
                vars: 6,
                locks: 2,
                acquire_prob: 0.15,
                release_prob: 0.2,
                ..RandomTraceSpec::default()
            }
            .generate(0xC0FFEE + i as u64)
        })
        .collect()
}

/// Offline ground truth for one trace: per-lane sorted wire races.
fn offline_races(trace: &Trace) -> Vec<Vec<WireRace>> {
    LANES
        .iter()
        .enumerate()
        .map(|(lane, name)| {
            let outcome = analyze(trace, name.parse::<AnalysisConfig>().unwrap());
            let mut races: Vec<WireRace> = outcome
                .report
                .races()
                .iter()
                .map(|r| WireRace {
                    lane: lane as u16,
                    event: r.event.raw(),
                    loc: r.loc.raw(),
                    tid: r.tid.raw(),
                    var: r.var.raw(),
                    write: matches!(r.kind, smarttrack::AccessKind::Write),
                    prior_tids: r.prior_threads.iter().map(|t| t.raw()).collect(),
                })
                .collect();
            races.sort();
            races
        })
        .collect()
}

/// Streams one trace as one session and returns (per-lane sorted races,
/// pushed races, reported event count).
fn serve_one(
    addr: SocketAddr,
    tenant: &str,
    session: &str,
    trace: &Trace,
    chunk: usize,
) -> (Vec<Vec<WireRace>>, Vec<WireRace>, u64) {
    let mut client = ServeClient::connect(addr, tenant, session, false).expect("connect");
    client.stream_trace(trace, chunk).expect("stream");
    let report = client.finish().expect("finish");
    let pushed = client.pushed_races();
    let lanes = report
        .lanes
        .iter()
        .map(|lane| {
            let mut races = lane.races.clone();
            races.sort();
            races
        })
        .collect();
    (lanes, pushed, report.events)
}

fn assert_session_matches_offline(tag: &str, trace: &Trace, addr: SocketAddr, chunk: usize) {
    let (lanes, pushed, events) = serve_one(addr, "e2e", tag, trace, chunk);
    assert_eq!(events, trace.len() as u64, "{tag}: event count");
    let expected = offline_races(trace);
    assert_eq!(lanes.len(), expected.len(), "{tag}: lane count");
    for (lane, (got, want)) in lanes.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "{tag}: lane {lane} diverges from offline");
    }
    // Every pushed notice is a race the final report also contains, and
    // with a dedicated reader per connection none should have dropped:
    // the push stream *is* the dynamic race stream.
    let dynamic_total: usize = expected.iter().map(Vec::len).sum();
    assert_eq!(pushed.len(), dynamic_total, "{tag}: pushed race count");
    for race in &pushed {
        assert!(
            expected[race.lane as usize].binary_search(race).is_ok(),
            "{tag}: pushed race not in the final report"
        );
    }
}

#[test]
fn eight_concurrent_clients_each_match_offline_analysis() {
    let server = test_server(4);
    let addr = server.local_addr();
    let traces = corpus(8);
    std::thread::scope(|scope| {
        for (i, trace) in traces.iter().enumerate() {
            scope.spawn(move || {
                // Mixed chunk sizes so clients interleave at different
                // granularities, including cuts inside STB chunks.
                let chunk = [64, 256, 1024, 0][i % 4];
                assert_session_matches_offline(&format!("client-{i}"), trace, addr, chunk);
            });
        }
    });
    server.shutdown();
}

#[test]
fn reports_are_identical_across_server_worker_counts() {
    let traces = corpus(4);
    let mut by_workers = Vec::new();
    for workers in [1, 4] {
        let server = test_server(workers);
        let addr = server.local_addr();
        let results: Vec<_> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| serve_one(addr, "workers", &format!("w{workers}-{i}"), trace, 512).0)
            .collect();
        by_workers.push(results);
        server.shutdown();
    }
    assert_eq!(
        by_workers[0], by_workers[1],
        "worker count must not change any report"
    );
}

#[test]
fn detach_and_resume_mid_stream_is_invisible_to_the_analysis() {
    let server = test_server(2);
    let addr = server.local_addr();
    let trace = &corpus(1)[0];
    let stb = smarttrack_trace::binary::to_stb_bytes(trace);
    // Cut inside the stream — and (almost surely) inside an STB chunk.
    let half = stb.len() / 2;

    let mut first = ServeClient::connect(addr, "e2e", "resumable", false).expect("connect");
    assert!(!first.resumed());
    first.stream_bytes(&stb[..half], 128).expect("first half");
    first.detach().expect("detach");
    drop(first);

    // The server processes the detach asynchronously; retry briefly if
    // the reconnect races ahead of it.
    let mut second = {
        let mut attempt = 0;
        loop {
            match ServeClient::connect(addr, "e2e", "resumable", true) {
                Ok(client) => break client,
                Err(smarttrack_serve::ClientError::Server {
                    code: smarttrack_serve::ErrorCode::SessionAttached,
                    ..
                }) if attempt < 200 => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(e) => panic!("reconnect: {e}"),
            }
        }
    };
    assert!(second.resumed(), "hello with resume reattaches");
    second.stream_bytes(&stb[half..], 128).expect("second half");
    let report = second.finish().expect("finish");
    assert_eq!(report.events, trace.len() as u64);

    let expected = offline_races(trace);
    for (lane, want) in expected.iter().enumerate() {
        let mut got = report.lanes[lane].races.clone();
        got.sort();
        assert_eq!(&got, want, "lane {lane} after resume");
    }
    server.shutdown();
}

#[test]
fn resume_welcome_reports_the_exact_ingested_event_count() {
    // A quick detach/resume used to read the session's event counter
    // before the worker had drained data admitted pre-detach, so the
    // welcome could under-report. It now answers from a worker
    // round-trip, so it must agree exactly with a query taken before any
    // further data is sent.
    let server = test_server(2);
    let addr = server.local_addr();
    let trace = &corpus(1)[0];
    let stb = smarttrack_trace::binary::to_stb_bytes(trace);
    let half = stb.len() / 2;

    let mut first = ServeClient::connect(addr, "e2e", "exact-count", false).expect("connect");
    first.stream_bytes(&stb[..half], 128).expect("first half");
    first.detach().expect("detach");
    drop(first);

    let mut second = {
        let mut attempt = 0;
        loop {
            match ServeClient::connect(addr, "e2e", "exact-count", true) {
                Ok(client) => break client,
                Err(smarttrack_serve::ClientError::Server {
                    code: smarttrack_serve::ErrorCode::SessionAttached,
                    ..
                }) if attempt < 200 => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(e) => panic!("reconnect: {e}"),
            }
        }
    };
    assert!(second.resumed());
    let snapshot = second.query_snapshot().expect("snapshot");
    assert_eq!(
        second.resumed_events(),
        snapshot.events,
        "the welcome's event count must cover all data admitted before the detach"
    );
    second.stream_bytes(&stb[half..], 128).expect("second half");
    let report = second.finish().expect("finish");
    assert_eq!(report.events, trace.len() as u64);
    server.shutdown();
}

#[test]
fn one_connection_can_stream_many_sessions_back_to_back() {
    let server = test_server(2);
    let addr = server.local_addr();
    let traces = corpus(3);

    let mut client = ServeClient::connect(addr, "e2e", "serial-0", false).expect("connect");
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            client
                .hello_again("e2e", &format!("serial-{i}"), false)
                .expect("hello again");
        }
        client.stream_trace(trace, 300).expect("stream");
        let report = client.finish().expect("finish");
        assert_eq!(report.events, trace.len() as u64, "session {i}");
        let expected = offline_races(trace);
        for (lane, want) in expected.iter().enumerate() {
            let mut got = report.lanes[lane].races.clone();
            got.sort();
            assert_eq!(&got, want, "session {i} lane {lane}");
        }
    }
    drop(client);
    server.shutdown();
}

#[test]
fn captured_execution_streams_live_and_matches_its_file_sink_capture() {
    // A *real* multithreaded execution (the capture crate's pattern twins)
    // streams to the daemon over loopback while the identical byte stream
    // is teed into a file sink. One run, two sinks: the daemon's report
    // must equal, race for race, the offline analysis of the file capture.
    // Nudged-deterministic per twin, but no determinism is assumed across
    // runs — both sinks see the *same* schedule by construction.
    use smarttrack_capture::twins::{run_twin, TwinKind};
    use smarttrack_capture::{CaptureConfig, CaptureSink, Nudge};

    let server = test_server(2);
    let addr = server.local_addr();
    let dir = std::env::temp_dir().join(format!("serve_e2e_capture_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    for kind in TwinKind::ALL {
        let path = dir.join(format!("{}.stb", kind.name()));
        let client = ServeClient::connect(addr, "e2e", kind.name(), false).expect("connect");
        let file = CaptureSink::file(&path).expect("file sink");
        let sink = CaptureSink::tee(file, CaptureSink::serve(client));
        let config = CaptureConfig {
            nudge: Some(Nudge {
                period: 2,
                phase: 1,
            }),
            buffer_events: 4,
            ..CaptureConfig::default()
        };
        let report =
            run_twin(kind, sink, config).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let wire = &report.serve_reports[0];

        let stb = std::fs::read(&path).expect("read file capture");
        let trace = smarttrack_trace::binary::from_stb_bytes(&stb)
            .unwrap_or_else(|e| panic!("{}: file capture invalid: {e}", kind.name()));
        assert_eq!(
            wire.events,
            trace.len() as u64,
            "{}: event count",
            kind.name()
        );

        let expected = offline_races(&trace);
        assert_eq!(
            wire.lanes.len(),
            expected.len(),
            "{}: lane count",
            kind.name()
        );
        for (lane, want) in expected.iter().enumerate() {
            let mut got = wire.lanes[lane].races.clone();
            got.sort();
            assert_eq!(
                &got,
                want,
                "{}: lane {lane} diverges from offline analysis of the file capture",
                kind.name()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    server.shutdown();
}

#[test]
fn osr_lane_matches_offline_across_worker_counts() {
    // A daemon carrying the extension rows: the syncp and osr lanes must
    // agree with offline analysis on every session — including one whose
    // only race is OSR-only (the canonical reversal trace, where the
    // syncp lane must stay empty while the osr lane reports the x-write
    // pair) — and the worker count must not change any report.
    use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
    let (m, x, y) = (LockId::new(0), VarId::new(0), VarId::new(1));
    let t = ThreadId::new;
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Acquire(m)).unwrap();
    b.push(t(0), Op::Write(y)).unwrap();
    b.push(t(0), Op::Write(x)).unwrap();
    b.push(t(0), Op::Release(m)).unwrap();
    b.push(t(1), Op::Acquire(m)).unwrap();
    b.push(t(1), Op::Write(y)).unwrap();
    b.push(t(1), Op::Release(m)).unwrap();
    b.push(t(1), Op::Write(x)).unwrap();
    let reversal = b.finish();

    let lanes = ["syncp", "osr"];
    let mut traces = corpus(3);
    traces.push(reversal);
    let mut by_workers = Vec::new();
    for workers in [1, 4] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                analyses: lanes.iter().map(|n| n.parse().unwrap()).collect(),
                workers: Some(workers),
                ..ServerConfig::default()
            },
        )
        .expect("bind osr server");
        let addr = server.local_addr();
        let results: Vec<_> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| serve_one(addr, "osr", &format!("w{workers}-{i}"), trace, 256).0)
            .collect();
        by_workers.push(results);
        server.shutdown();
    }
    assert_eq!(
        by_workers[0], by_workers[1],
        "worker count must not change an extension-row report"
    );
    for (i, (trace, served)) in traces.iter().zip(&by_workers[0]).enumerate() {
        for (lane, name) in lanes.iter().enumerate() {
            let outcome = analyze(trace, name.parse::<AnalysisConfig>().unwrap());
            assert_eq!(
                served[lane].len(),
                outcome.report.dynamic_count(),
                "session {i}: {name} lane race count diverges from offline"
            );
            for race in &served[lane] {
                assert!(
                    outcome.report.races().iter().any(|r| r.event.raw() == race.event),
                    "session {i}: {name} lane pushed a race offline analysis lacks"
                );
            }
        }
    }
    // The reversal session is the OSR-only split: lane 0 empty, lane 1 one.
    let last = by_workers[0].last().expect("reversal session");
    assert!(last[0].is_empty(), "syncp lane must miss the reversal race");
    assert_eq!(last[1].len(), 1, "osr lane must report the reversal race");
    assert_eq!(last[1][0].event, 7, "the racing endpoint is the final x-write");
}

#[test]
fn second_connection_to_an_attached_session_is_refused() {
    let server = test_server(1);
    let addr = server.local_addr();
    let _first = ServeClient::connect(addr, "e2e", "contested", false).expect("connect");
    let refused = ServeClient::connect(addr, "e2e", "contested", true);
    match refused {
        Err(smarttrack_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, smarttrack_serve::ErrorCode::SessionAttached);
        }
        Err(other) => panic!("expected SessionAttached refusal, got {other}"),
        Ok(_) => panic!("expected SessionAttached refusal, got a welcome"),
    }
    server.shutdown();
}
