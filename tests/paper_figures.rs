//! The ground-truth detection matrix for the paper's example executions:
//! every Table 1 analysis against every figure, matching the paper's claims
//! about which relations detect which races.

use smarttrack::{analyze_all, Relation};
use smarttrack_trace::paper;

/// Expected detection per figure: the set of relations that report a race.
fn expected_racy_relations(figure: &str) -> Vec<Relation> {
    match figure {
        "figure1" => vec![Relation::Wcp, Relation::Dc, Relation::Wdc],
        "figure2" => vec![Relation::Dc, Relation::Wdc],
        "figure3" => vec![Relation::Wdc],
        _ => vec![], // figures 4a–4d are race-free under every relation
    }
}

#[test]
fn detection_matrix_matches_paper() {
    for (name, trace) in paper::all_figures() {
        let expected = expected_racy_relations(name);
        for outcome in analyze_all(&trace) {
            let should_race = expected.contains(&outcome.config.relation);
            assert_eq!(
                !outcome.report.is_empty(),
                should_race,
                "{}: {} expected {}",
                name,
                outcome.name,
                if should_race { "a race" } else { "no race" },
            );
        }
    }
}

#[test]
fn race_location_is_stable_across_optimization_levels() {
    // The paper: "In theory, the analyses handle executions up to the first
    // race" — all levels of one relation must agree on the first race.
    for (name, trace) in paper::all_figures() {
        let outcomes = analyze_all(&trace);
        for relation in Relation::ALL {
            let firsts: Vec<_> = outcomes
                .iter()
                .filter(|o| o.config.relation == relation)
                .map(|o| (o.name.clone(), o.report.first_race_event()))
                .collect();
            for w in firsts.windows(2) {
                assert_eq!(
                    w[0].1, w[1].1,
                    "{name}: {} vs {} disagree on the first {relation} race",
                    w[0].0, w[1].0
                );
            }
        }
    }
}

#[test]
fn dynamic_and_static_counts_are_consistent() {
    for (name, trace) in paper::all_figures() {
        for outcome in analyze_all(&trace) {
            assert!(
                outcome.report.static_count() <= outcome.report.dynamic_count(),
                "{name}/{}: static > dynamic",
                outcome.name
            );
        }
    }
}

#[test]
fn figure1_race_is_on_x_at_the_final_write() {
    let trace = paper::figure1();
    for outcome in analyze_all(&trace) {
        if outcome.config.relation == Relation::Hb {
            continue;
        }
        let races = outcome.report.races();
        assert_eq!(races.len(), 1, "{}", outcome.name);
        assert_eq!(races[0].var, paper::X, "{}", outcome.name);
        assert_eq!(races[0].event.index(), 7, "{}", outcome.name);
    }
}
