//! Cross-crate integration: the §5.1 parallel analyses against the
//! DaCapo-calibrated workloads and the vindication pipeline.
//!
//! The in-crate differential tests cover random traces; these cover the
//! *calibrated* workloads, whose deep lock nesting (h2, luindex, xalan
//! profiles) and injected race mixes exercise SmartTrack's CS lists and
//! extras far harder than uniform random traces do.

use smarttrack_detect::{run_detector, Detector, FtoCase, FtoHb, SmartTrackWdc};
use smarttrack_parallel::{
    feed_trace, ConcurrentFtoHb, ConcurrentSmartTrackWdc, OnlineAnalysis, WorldSpec,
};
use smarttrack_workloads::profiles;

/// Feeding a workload trace through the concurrent SmartTrack-WDC yields
/// exactly the sequential races and case counters, for every profile.
#[test]
fn concurrent_wdc_matches_sequential_on_all_profiles() {
    for workload in profiles::all() {
        let trace = workload.trace(3e-6, 42);
        let mut seq = SmartTrackWdc::new();
        run_detector(&mut seq, &trace);
        let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&trace));
        let report = feed_trace(&par, &trace);
        assert_eq!(
            report.races(),
            seq.report().races(),
            "races diverge on {}",
            workload.name
        );
        let (pc, sc) = (
            par.case_counters(),
            seq.case_counters().expect("ST tracks cases").clone(),
        );
        for case in FtoCase::ALL {
            assert_eq!(
                pc.count(case),
                sc.count(case),
                "{case} diverges on {}",
                workload.name
            );
        }
    }
}

/// Same for the HB baseline (exercises the share/shared read paths of the
/// race-heavy profiles like xalan and tomcat).
#[test]
fn concurrent_hb_matches_sequential_on_all_profiles() {
    for workload in profiles::all() {
        let trace = workload.trace(3e-6, 7);
        let mut seq = FtoHb::new();
        run_detector(&mut seq, &trace);
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&trace));
        let report = feed_trace(&par, &trace);
        assert_eq!(
            report.races(),
            seq.report().races(),
            "races diverge on {}",
            workload.name
        );
    }
}

/// The §4.3 pipeline with a *parallel* first phase: detect online with the
/// graph-free concurrent analysis, then vindicate the races on the trace.
/// Every race the workloads inject is a true predictable race, so every
/// vindication attempt must either produce a validated witness or
/// (conservatively) give up — never refute.
#[test]
fn parallel_detect_then_vindicate() {
    use smarttrack_vindicate::{vindicate_first_race, VindicationResult};

    let workload = profiles::all()
        .into_iter()
        .find(|w| w.name == "pmd")
        .expect("pmd profile exists");
    let trace = workload.trace(3e-6, 42);

    // Phase 1: graph-free detection (the cheap, always-on pass).
    let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&trace));
    let report = feed_trace(&par, &trace);
    assert!(!report.is_empty(), "pmd injects predictive races");

    // Phase 2: vindication of the first race on the recorded trace.
    match vindicate_first_race(&trace, &report) {
        Some(VindicationResult::Race(witness)) => {
            assert!(!witness.to_trace(&trace).is_empty());
        }
        Some(VindicationResult::Unknown) => {
            // Conservative outcome; acceptable. The differential tests
            // guarantee the race itself is the same one the sequential
            // analysis reports, which `vindication_soundness.rs` covers.
        }
        None => panic!("report was non-empty, so there is a first race"),
    }
}
