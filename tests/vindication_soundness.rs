//! Soundness tests for the predictive pipeline, cross-checked against the
//! exhaustive oracle on small traces:
//!
//! * WCP soundness (§2.4): on deadlock-free traces, every WCP-race is a true
//!   predictable race;
//! * vindication soundness: every constructed witness passes the independent
//!   predicted-trace validator (and the oracle agrees a race exists);
//! * the Figure 3 false WDC-race never vindicates.

use proptest::prelude::*;
use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::Trace;
use smarttrack_vindicate::{
    find_prior_access, validate_witness, vindicate_pair, DeadlockResult, OracleResult,
    PredictableRaceOracle, VindicationResult,
};

fn tiny_spec(max_nesting: usize) -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (2u32..4, 12usize..26, any::<u64>()).prop_map(move |(threads, events, seed)| {
        (
            RandomTraceSpec {
                threads,
                events,
                vars: 3,
                locks: 2,
                max_nesting,
                acquire_prob: 0.25,
                release_prob: 0.3,
                write_frac: 0.5,
                ..RandomTraceSpec::default()
            },
            seed,
        )
    })
}

fn race_pair(
    trace: &Trace,
    relation: Relation,
) -> Option<(smarttrack_trace::EventId, smarttrack_trace::EventId)> {
    let report = analyze(trace, AnalysisConfig::new(relation, OptLevel::Unopt)).report;
    let race = report.races().first()?.clone();
    let prior = find_prior_access(trace, race.event, race.var, *race.prior_threads.first()?)?;
    Some((prior, race.event))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// WCP soundness: with nesting depth 1 no predictable deadlock exists, so
    /// a WCP-race must be a predictable race (verified exhaustively).
    #[test]
    fn wcp_races_are_predictable_races((spec, seed) in tiny_spec(1)) {
        let trace = spec.generate(seed);
        if let Some((e1, e2)) = race_pair(&trace, Relation::Wcp) {
            let oracle = PredictableRaceOracle::new(&trace);
            let verdict = oracle.is_predictable_race(e1, e2);
            prop_assert!(
                matches!(verdict, OracleResult::Race(..) | OracleResult::Unknown),
                "WCP reported ({e1}, {e2}) but the oracle exhaustively refutes it"
            );
        }
    }

    /// WCP's full soundness statement (§2.4 footnote 4): with nested
    /// critical sections, a WCP-race implies a predictable race *or a
    /// predictable deadlock* — both checked exhaustively.
    #[test]
    fn wcp_races_imply_race_or_deadlock((spec, seed) in tiny_spec(2)) {
        let trace = spec.generate(seed);
        if let Some((e1, e2)) = race_pair(&trace, Relation::Wcp) {
            let oracle = PredictableRaceOracle::new(&trace);
            let race = oracle.is_predictable_race(e1, e2);
            if race == OracleResult::NoRace {
                prop_assert_ne!(
                    oracle.any_predictable_deadlock(),
                    DeadlockResult::NoDeadlock,
                    "WCP reported ({}, {}): the oracle refutes the race, \
                     so a predictable deadlock must exist",
                    e1,
                    e2
                );
            }
        }
    }

    /// Vindicated witnesses always validate and never contradict the oracle.
    #[test]
    fn witnesses_validate_and_oracle_agrees((spec, seed) in tiny_spec(2)) {
        let trace = spec.generate(seed);
        if let Some((e1, e2)) = race_pair(&trace, Relation::Wdc) {
            if let VindicationResult::Race(w) = vindicate_pair(&trace, e1, e2) {
                validate_witness(&trace, &w.order, (e1, e2)).expect("witness validates");
                let oracle = PredictableRaceOracle::new(&trace);
                prop_assert!(
                    matches!(
                        oracle.is_predictable_race(e1, e2),
                        OracleResult::Race(..) | OracleResult::Unknown
                    ),
                    "vindicated a pair the oracle refutes"
                );
            }
        }
    }

    /// DC-races on these small traces are (almost) always real; verify each
    /// one the oracle can decide.
    #[test]
    fn dc_races_checked_against_oracle((spec, seed) in tiny_spec(2)) {
        let trace = spec.generate(seed);
        if let Some((e1, e2)) = race_pair(&trace, Relation::Dc) {
            let oracle = PredictableRaceOracle::new(&trace).with_budget(200_000);
            match oracle.is_predictable_race(e1, e2) {
                OracleResult::Race(..) | OracleResult::Unknown => {}
                OracleResult::NoRace => {
                    // A false DC-race: theoretically possible (DC is unsound)
                    // but must then fail vindication.
                    prop_assert_eq!(
                        vindicate_pair(&trace, e1, e2),
                        VindicationResult::Unknown,
                        "vindication must not bless a false DC-race"
                    );
                }
            }
        }
    }
}

#[test]
fn figure3_false_race_is_caught_by_both_oracle_and_vindication() {
    let trace = smarttrack_trace::paper::figure3();
    let (e1, e2) = race_pair(&trace, Relation::Wdc).expect("WDC reports it");
    assert_eq!(vindicate_pair(&trace, e1, e2), VindicationResult::Unknown);
    let oracle = PredictableRaceOracle::new(&trace);
    assert_eq!(oracle.any_predictable_race(), OracleResult::NoRace);
}

#[test]
fn paper_figures_1_and_2_vindicate_with_valid_witnesses() {
    for trace in [
        smarttrack_trace::paper::figure1(),
        smarttrack_trace::paper::figure2(),
    ] {
        let (e1, e2) = race_pair(&trace, Relation::Wdc).expect("racy figure");
        match vindicate_pair(&trace, e1, e2) {
            VindicationResult::Race(w) => {
                validate_witness(&trace, &w.order, (e1, e2)).expect("valid witness");
                // The witness trace itself must be importable.
                let _ = w.to_trace(&trace);
            }
            VindicationResult::Unknown => panic!("true race failed to vindicate"),
        }
    }
}
