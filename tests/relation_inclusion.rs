//! Property tests for the relation hierarchy (paper §2.4/§3):
//! HB-races ⊆ WCP-races ⊆ DC-races ⊆ WDC-races, compared up to the first
//! race per trace (where all analyses are exact).

use proptest::prelude::*;
use smarttrack::{analyze, AnalysisConfig, OptLevel, Relation};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{EventId, Trace};

fn arb_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        2u32..5,       // threads
        50usize..400,  // events
        2u32..8,       // vars
        1u32..4,       // locks
        0u32..3,       // volatiles
        any::<u64>(),  // seed
        any::<bool>(), // fork_join
    )
        .prop_map(
            |(threads, events, vars, locks, volatiles, seed, fork_join)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        volatiles,
                        volatile_prob: if volatiles > 0 { 0.05 } else { 0.0 },
                        acquire_prob: 0.15,
                        release_prob: 0.2,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            },
        )
}

fn first_race(trace: &Trace, relation: Relation, level: OptLevel) -> Option<EventId> {
    analyze(trace, AnalysisConfig::new(relation, level))
        .report
        .first_race_event()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A stronger relation's first race implies the weaker relation races at
    /// the same event or earlier.
    #[test]
    fn race_sets_grow_down_the_hierarchy((spec, seed) in arb_spec()) {
        let trace = spec.generate(seed);
        let hb = first_race(&trace, Relation::Hb, OptLevel::Fto);
        let wcp = first_race(&trace, Relation::Wcp, OptLevel::Unopt);
        let dc = first_race(&trace, Relation::Dc, OptLevel::Unopt);
        let wdc = first_race(&trace, Relation::Wdc, OptLevel::Unopt);
        if let Some(h) = hb {
            let w = wcp.expect("HB-race implies WCP-race");
            prop_assert!(w <= h, "WCP first race after HB's ({w:?} > {h:?})");
        }
        if let Some(w) = wcp {
            let d = dc.expect("WCP-race implies DC-race");
            prop_assert!(d <= w);
        }
        if let Some(d) = dc {
            let wd = wdc.expect("DC-race implies WDC-race");
            prop_assert!(wd <= d);
        }
    }

    /// Every optimization level of one relation detects the same first race.
    #[test]
    fn optimization_levels_agree_up_to_first_race((spec, seed) in arb_spec()) {
        let trace = spec.generate(seed);
        for relation in [Relation::Wcp, Relation::Dc, Relation::Wdc] {
            let unopt = first_race(&trace, relation, OptLevel::Unopt);
            let fto = first_race(&trace, relation, OptLevel::Fto);
            let st = first_race(&trace, relation, OptLevel::SmartTrack);
            prop_assert_eq!(unopt, fto, "Unopt vs FTO ({})", relation);
            prop_assert_eq!(fto, st, "FTO vs ST ({})", relation);
        }
        let unopt = first_race(&trace, Relation::Hb, OptLevel::Unopt);
        let ft2 = first_race(&trace, Relation::Hb, OptLevel::Epochs);
        let fto = first_race(&trace, Relation::Hb, OptLevel::Fto);
        prop_assert_eq!(unopt, ft2, "Unopt-HB vs FT2");
        prop_assert_eq!(ft2, fto, "FT2 vs FTO-HB");
    }

    /// Graph recording must not change detection.
    #[test]
    fn graph_recording_is_observationally_pure((spec, seed) in arb_spec()) {
        let trace = spec.generate(seed);
        for relation in [Relation::Dc, Relation::Wdc] {
            let plain = analyze(&trace, AnalysisConfig::new(relation, OptLevel::Unopt));
            let with_g = analyze(
                &trace,
                AnalysisConfig::new(relation, OptLevel::Unopt).with_graph(),
            );
            prop_assert_eq!(plain.report, with_g.report);
        }
    }

    /// On lock-free traces every relation degenerates to the same order
    /// (fork/join + volatiles only): identical first races everywhere.
    #[test]
    fn without_locks_all_relations_agree(
        threads in 2u32..5,
        events in 40usize..200,
        seed in any::<u64>(),
    ) {
        let spec = RandomTraceSpec {
            threads,
            events,
            locks: 1,
            acquire_prob: 0.0,
            release_prob: 0.0,
            fork_join: true,
            ..RandomTraceSpec::default()
        };
        let trace = spec.generate(seed);
        let hb = first_race(&trace, Relation::Hb, OptLevel::Fto);
        for relation in [Relation::Wcp, Relation::Dc, Relation::Wdc] {
            for level in [OptLevel::Unopt, OptLevel::Fto, OptLevel::SmartTrack] {
                prop_assert_eq!(hb, first_race(&trace, relation, level),
                    "{}-{} differs from HB on a lock-free trace", level, relation);
            }
        }
    }
}
