//! The `Engine`/`Session` API computes exactly what the legacy whole-trace
//! entry points compute, however events are ingested.
//!
//! For every available Table 1 cell, on every paper figure and on
//! randomized workload traces:
//!
//! * `feed` one event at a time ≡ `feed_batch` of the whole stream ≡
//!   `feed_trace` ≡ legacy `analyze` — same `Report` (hence the same
//!   dynamic races) and the same statically distinct race count;
//! * one single-pass fan-out session over all cells ≡ one session per cell
//!   (fan-out lanes do not interfere);
//! * race sinks deliver exactly the races of the final report, in order.

use proptest::prelude::*;
use smarttrack::{analyze, AnalysisConfig, Engine, RaceNotice, Report};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{paper, Trace};

/// Runs one config over the trace through a session, with the given
/// ingestion style: 0 = feed one at a time, 1 = one feed_batch, 2 =
/// feed_trace.
fn session_report(trace: &Trace, config: AnalysisConfig, style: usize) -> Report {
    let engine = Engine::for_config(config).expect("valid Table 1 cell");
    let mut session = engine.open();
    match style {
        0 => {
            for &event in trace.events() {
                session.feed(event).expect("well-formed event");
            }
        }
        1 => session
            .feed_batch(trace.events())
            .expect("well-formed batch"),
        _ => session.feed_trace(trace).expect("well-formed trace"),
    }
    session.finish_one().report
}

fn assert_all_styles_match(trace: &Trace, label: &str) {
    let fanout_engine = Engine::builder().table1().build().unwrap();
    let mut fanout = fanout_engine.open();
    fanout.feed_trace(trace).expect("well-formed trace");
    let fanout_outcomes = fanout.finish();
    assert_eq!(fanout_outcomes.len(), AnalysisConfig::table1().len());

    for (config, fanned) in AnalysisConfig::table1().into_iter().zip(fanout_outcomes) {
        let legacy = analyze(trace, config);
        assert_eq!(legacy.config, config);
        assert_eq!(
            fanned.config, config,
            "{label}: fan-out preserves lane order"
        );
        for style in 0..3 {
            let report = session_report(trace, config, style);
            assert_eq!(
                report, legacy.report,
                "{label}: {config} ingestion style {style} diverged from analyze()"
            );
        }
        assert_eq!(
            fanned.report, legacy.report,
            "{label}: {config} fan-out lane diverged from solo analysis"
        );
        assert_eq!(
            fanned.report.static_count(),
            legacy.report.static_count(),
            "{label}: {config} statically distinct races diverged"
        );
    }
}

#[test]
fn all_paper_figures_agree_across_ingestion_styles() {
    for (name, trace) in paper::all_figures() {
        assert_all_styles_match(&trace, name);
    }
}

#[test]
fn sink_delivery_matches_final_report() {
    use std::cell::RefCell;
    use std::rc::Rc;

    for (name, trace) in paper::all_figures() {
        let engine = Engine::builder().table1().build().unwrap();
        let mut session = engine.open();
        let seen: Rc<RefCell<Vec<(String, u32)>>> = Rc::default();
        let seen2 = Rc::clone(&seen);
        session.set_sink(move |notice: &RaceNotice<'_>| {
            seen2
                .borrow_mut()
                .push((notice.analysis.to_string(), notice.race.event.raw()));
        });
        session.feed_trace(&trace).unwrap();
        let outcomes = session.finish();

        let mut expected = Vec::new();
        for outcome in &outcomes {
            for race in outcome.report.races() {
                expected.push((outcome.name.clone(), race.event.raw()));
            }
        }
        let mut delivered = seen.borrow().clone();
        // Sink order is (event, lane), expected order is (lane, event);
        // compare as sets-with-multiplicity.
        delivered.sort();
        expected.sort();
        assert_eq!(delivered, expected, "{name}");
    }
}

fn arb_workload() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        2u32..5,       // threads
        60usize..300,  // events
        2u32..6,       // vars
        1u32..4,       // locks
        any::<u64>(),  // seed
        any::<bool>(), // fork_join
    )
        .prop_map(|(threads, events, vars, locks, seed, fork_join)| {
            (
                RandomTraceSpec {
                    threads,
                    events,
                    vars,
                    locks,
                    acquire_prob: 0.18,
                    release_prob: 0.22,
                    fork_join,
                    ..RandomTraceSpec::default()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn randomized_traces_agree_across_ingestion_styles((spec, seed) in arb_workload()) {
        let trace = spec.generate(seed);
        assert_all_styles_match(&trace, "random");
    }
}

#[test]
fn calibrated_workload_traces_agree_across_ingestion_styles() {
    for (i, workload) in [
        smarttrack_workloads::profiles::xalan(),
        smarttrack_workloads::profiles::avrora(),
    ]
    .into_iter()
    .enumerate()
    {
        let trace = workload.trace(1e-6, 7 + i as u64);
        assert_all_styles_match(&trace, workload.name);
    }
}
