//! The paper's §6 argument, executed: bounded-window approaches (the
//! SMT-based related work) miss races whose accesses are farther apart than
//! the window, while the partial-order analyses this paper optimizes find
//! them in one linear pass at any distance.

use smarttrack_detect::{
    run_detector, Detector, FtoHb, SmartTrackDc, SmartTrackWcp, SmartTrackWdc,
};
use smarttrack_vindicate::{WindowedConfig, WindowedRaceAnalysis};
use smarttrack_workloads::{distant_race_trace, profiles};

#[test]
fn windowed_analysis_misses_the_distant_race_predictive_analyses_find_it() {
    let (trace, _, _) = distant_race_trace(2_000);

    let windowed = WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(256)).analyze();
    assert!(
        windowed.races().is_empty(),
        "a 256-event window cannot see accesses 2000 events apart"
    );

    let mut wcp = SmartTrackWcp::new();
    run_detector(&mut wcp, &trace);
    assert_eq!(wcp.report().dynamic_count(), 1, "SmartTrack-WCP");

    let mut dc = SmartTrackDc::new();
    run_detector(&mut dc, &trace);
    assert_eq!(dc.report().dynamic_count(), 1, "SmartTrack-DC");

    let mut wdc = SmartTrackWdc::new();
    run_detector(&mut wdc, &trace);
    assert_eq!(wdc.report().dynamic_count(), 1, "SmartTrack-WDC");

    // The race is predictive-only (Figure 1): HB analysis misses it even
    // with an unbounded view of the trace.
    let mut hb = FtoHb::new();
    run_detector(&mut hb, &trace);
    assert_eq!(hb.report().dynamic_count(), 0, "FTO-HB");
}

#[test]
fn window_covering_both_accesses_recovers_the_race() {
    let (trace, first, second) = distant_race_trace(2_000);
    let config = WindowedConfig {
        window: trace.len(),
        stride: trace.len(),
        budget_per_query: 1_000_000,
    };
    let report = WindowedRaceAnalysis::new(&trace, config).analyze();
    assert_eq!(report.races(), &[(first, second)]);
}

#[test]
fn miss_boundary_is_exactly_the_window_size() {
    // With stride == window/2 every pair at distance < window/2 is
    // co-visible in some window; at distance > window the pair never is.
    let window = 128;
    for (distance, expect_found) in [(40, true), (4_000, false)] {
        let (trace, _, _) = distant_race_trace(distance);
        let report =
            WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(window)).analyze();
        assert_eq!(
            !report.races().is_empty(),
            expect_found,
            "distance {distance} at window {window}"
        );
    }
}

#[test]
fn windowed_query_cost_grows_with_window_size_on_a_racy_workload() {
    // On a workload with real conflicting pairs (the avrora profile), the
    // exhaustive per-window queries get more expensive as the window grows —
    // the cost pressure that forces SMT approaches to keep windows small.
    let trace = profiles::avrora().trace(0.000_001, 7);
    let cost = |window: usize| {
        let config = WindowedConfig {
            window,
            stride: window, // disjoint windows: isolates pure window-size cost
            budget_per_query: 20_000,
        };
        let report = WindowedRaceAnalysis::new(&trace, config).analyze();
        assert!(
            report.queries() > 0,
            "workload must produce candidate pairs"
        );
        report.states_explored()
    };
    let small = cost(64);
    let large = cost(512);
    assert!(
        large > small,
        "expected cost to grow with window size: {small} -> {large}"
    );
}
