//! Property tests for the bounded-window analysis (the §6 SMT-window
//! stand-in), cross-checked against the exhaustive oracle on small traces:
//!
//! * soundness — a race proved inside a window (with the prefix frozen) is
//!   a race of the unconstrained trace;
//! * monotonicity — doubling the window never loses a race (larger windows
//!   see strictly more reorderings);
//! * the distant-race generator produces exactly the advertised racing
//!   pair, at every distance.

use proptest::prelude::*;
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_vindicate::{
    OracleResult, PredictableRaceOracle, WindowedConfig, WindowedRaceAnalysis,
};
use smarttrack_workloads::distant_race_trace;

fn tiny_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (2u32..4, 10usize..22, any::<u64>()).prop_map(|(threads, events, seed)| {
        (
            RandomTraceSpec {
                threads,
                events,
                vars: 3,
                locks: 2,
                max_nesting: 2,
                acquire_prob: 0.25,
                release_prob: 0.3,
                write_frac: 0.5,
                ..RandomTraceSpec::default()
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Windowed soundness: freezing the prefix only *removes* reorderings,
    /// so every windowed race must also be a race of the full trace.
    #[test]
    fn windowed_races_are_true_predictable_races(
        (spec, seed) in tiny_spec(),
        window in 4usize..12,
    ) {
        let trace = spec.generate(seed);
        let report =
            WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(window)).analyze();
        let oracle = PredictableRaceOracle::new(&trace);
        for &(a, b) in report.races() {
            let verdict = oracle.is_predictable_race(a, b);
            prop_assert!(
                matches!(verdict, OracleResult::Race(..) | OracleResult::Unknown),
                "window {window} reported ({a}, {b}) but the unbounded oracle refutes it"
            );
        }
    }

    /// Doubling the window (same alignment) never loses a race: every pair
    /// co-visible in a small window is co-visible in the enclosing doubled
    /// window, whose frozen prefix is no longer.
    #[test]
    fn doubling_the_window_is_monotone((spec, seed) in tiny_spec(), window in 3usize..8) {
        let trace = spec.generate(seed);
        let run = |w: usize| {
            let config = WindowedConfig { window: w, stride: w, budget_per_query: 500_000 };
            WindowedRaceAnalysis::new(&trace, config).analyze()
        };
        let small = run(window);
        let large = run(window * 2);
        for pair in small.races() {
            prop_assert!(
                large.races().contains(pair),
                "window {window} found {pair:?} but window {} lost it", window * 2
            );
        }
    }

    /// First-window refutation is final (the `WindowedRaceAnalysis::analyze`
    /// optimization): a naive variant that re-queries every pair in every
    /// window finds exactly the same races. This pins the removability
    /// argument — later windows' larger horizon adds no reachable races for
    /// an already-refuted pair.
    #[test]
    fn later_windows_never_revive_a_refuted_pair(
        (spec, seed) in tiny_spec(),
        window in 3usize..9,
    ) {
        let trace = spec.generate(seed);
        let stride = (window / 2).max(1);
        let config = WindowedConfig { window, stride, budget_per_query: 500_000 };
        let fast = WindowedRaceAnalysis::new(&trace, config).analyze();

        // Naive: query every conflicting pair in every window it appears in.
        let oracle = PredictableRaceOracle::new(&trace).with_budget(500_000);
        let mut naive: std::collections::HashSet<_> = Default::default();
        let n = trace.len();
        let mut lo = 0usize;
        loop {
            let hi = (lo + window).min(n);
            for i in lo..hi {
                for j in (i + 1)..hi {
                    let (a, b) = (smarttrack_trace::EventId::new(i as u32),
                                  smarttrack_trace::EventId::new(j as u32));
                    if !trace.event(a).conflicts_with(trace.event(b)) {
                        continue;
                    }
                    if let OracleResult::Race(x, y) = oracle.pair_in_window(a, b, lo, hi).result {
                        naive.insert((x, y));
                    }
                }
            }
            if hi == n {
                break;
            }
            lo += stride;
        }
        let fast_set: std::collections::HashSet<_> = fast.races().iter().copied().collect();
        prop_assert_eq!(fast_set, naive);
    }

    /// The distant-race generator delivers exactly one predictable race —
    /// the advertised pair — verified exhaustively at oracle-sized
    /// distances.
    #[test]
    fn distant_race_generator_races_exactly_as_advertised(distance in 0usize..36) {
        let (trace, first, second) = distant_race_trace(distance);
        let oracle = PredictableRaceOracle::new(&trace).with_budget(2_000_000);
        prop_assert_eq!(
            oracle.any_predictable_race(),
            OracleResult::Race(first, second)
        );
    }
}
