//! Property tests for the bounded-window analysis (the §6 SMT-window
//! stand-in), cross-checked against the exhaustive oracle on small traces:
//!
//! * soundness — a race proved inside a window (with the prefix frozen) is
//!   a race of the unconstrained trace;
//! * monotonicity — doubling the window never loses a race (larger windows
//!   see strictly more reorderings);
//! * the distant-race generator produces exactly the advertised racing
//!   pair, at every distance;
//! * window cuts landing inside a synchronization region — a read-held
//!   rwlock section, before an un-notified wait, inside an open barrier
//!   round — freeze exactly the observed synchronization state, on both
//!   randomized full-op traces and hand-built boundary cases.

use proptest::prelude::*;
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{BarrierId, CondId, EventId, LockId, Op, ThreadId, TraceBuilder, VarId};
use smarttrack_vindicate::{
    OracleResult, PredictableRaceOracle, WindowedConfig, WindowedRaceAnalysis,
};
use smarttrack_workloads::distant_race_trace;

fn tiny_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (2u32..4, 10usize..22, any::<u64>()).prop_map(|(threads, events, seed)| {
        (
            RandomTraceSpec {
                threads,
                events,
                vars: 3,
                locks: 2,
                max_nesting: 2,
                acquire_prob: 0.25,
                release_prob: 0.3,
                write_frac: 0.5,
                ..RandomTraceSpec::default()
            },
            seed,
        )
    })
}

/// Small traces over the full post-v1 op vocabulary: condvars, barriers,
/// reader/writer locks, failed trylocks, fork/join. Event counts stay
/// oracle-sized so the exhaustive queries conclude.
fn tiny_full_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (2u32..4, 12usize..22, any::<u64>(), any::<bool>()).prop_map(
        |(threads, events, seed, fork_join)| {
            (
                RandomTraceSpec {
                    threads,
                    events,
                    vars: 3,
                    locks: 1,
                    acquire_prob: 0.15,
                    release_prob: 0.25,
                    condvars: 1,
                    condvar_prob: 0.1,
                    barriers: 1,
                    barrier_prob: 0.06,
                    rwlocks: 1,
                    rw_read_prob: 0.12,
                    rw_write_prob: 0.05,
                    rw_release_prob: 0.25,
                    try_fail_prob: 0.03,
                    write_frac: 0.5,
                    fork_join,
                    ..RandomTraceSpec::default()
                },
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Windowed soundness: freezing the prefix only *removes* reorderings,
    /// so every windowed race must also be a race of the full trace.
    #[test]
    fn windowed_races_are_true_predictable_races(
        (spec, seed) in tiny_spec(),
        window in 4usize..12,
    ) {
        let trace = spec.generate(seed);
        let report =
            WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(window)).analyze();
        let oracle = PredictableRaceOracle::new(&trace);
        for &(a, b) in report.races() {
            let verdict = oracle.is_predictable_race(a, b);
            prop_assert!(
                matches!(verdict, OracleResult::Race(..) | OracleResult::Unknown),
                "window {window} reported ({a}, {b}) but the unbounded oracle refutes it"
            );
        }
    }

    /// Doubling the window (same alignment) never loses a race: every pair
    /// co-visible in a small window is co-visible in the enclosing doubled
    /// window, whose frozen prefix is no longer.
    #[test]
    fn doubling_the_window_is_monotone((spec, seed) in tiny_spec(), window in 3usize..8) {
        let trace = spec.generate(seed);
        let run = |w: usize| {
            let config = WindowedConfig { window: w, stride: w, budget_per_query: 500_000 };
            WindowedRaceAnalysis::new(&trace, config).analyze()
        };
        let small = run(window);
        let large = run(window * 2);
        for pair in small.races() {
            prop_assert!(
                large.races().contains(pair),
                "window {window} found {pair:?} but window {} lost it", window * 2
            );
        }
    }

    /// First-window refutation is final (the `WindowedRaceAnalysis::analyze`
    /// optimization): a naive variant that re-queries every pair in every
    /// window finds exactly the same races. This pins the removability
    /// argument — later windows' larger horizon adds no reachable races for
    /// an already-refuted pair.
    #[test]
    fn later_windows_never_revive_a_refuted_pair(
        (spec, seed) in tiny_spec(),
        window in 3usize..9,
    ) {
        let trace = spec.generate(seed);
        let stride = (window / 2).max(1);
        let config = WindowedConfig { window, stride, budget_per_query: 500_000 };
        let fast = WindowedRaceAnalysis::new(&trace, config).analyze();

        // Naive: query every conflicting pair in every window it appears in.
        let oracle = PredictableRaceOracle::new(&trace).with_budget(500_000);
        let mut naive: std::collections::HashSet<_> = Default::default();
        let n = trace.len();
        let mut lo = 0usize;
        loop {
            let hi = (lo + window).min(n);
            for i in lo..hi {
                for j in (i + 1)..hi {
                    let (a, b) = (smarttrack_trace::EventId::new(i as u32),
                                  smarttrack_trace::EventId::new(j as u32));
                    if !trace.event(a).conflicts_with(trace.event(b)) {
                        continue;
                    }
                    if let OracleResult::Race(x, y) = oracle.pair_in_window(a, b, lo, hi).result {
                        naive.insert((x, y));
                    }
                }
            }
            if hi == n {
                break;
            }
            lo += stride;
        }
        let fast_set: std::collections::HashSet<_> = fast.races().iter().copied().collect();
        prop_assert_eq!(fast_set, naive);
    }

    /// The distant-race generator delivers exactly one predictable race —
    /// the advertised pair — verified exhaustively at oracle-sized
    /// distances.
    #[test]
    fn distant_race_generator_races_exactly_as_advertised(distance in 0usize..36) {
        let (trace, first, second) = distant_race_trace(distance);
        let oracle = PredictableRaceOracle::new(&trace).with_budget(2_000_000);
        prop_assert_eq!(
            oracle.any_predictable_race(),
            OracleResult::Race(first, second)
        );
    }

    /// Windowed soundness over the full op vocabulary: wherever the window
    /// cut lands — mid read-section, mid barrier round, between a notify
    /// and its wait — a windowed race must be a race of the unconstrained
    /// trace.
    #[test]
    fn windowed_races_on_full_op_traces_are_true_predictable_races(
        (spec, seed) in tiny_full_spec(),
        window in 4usize..12,
    ) {
        let trace = spec.generate(seed);
        let report =
            WindowedRaceAnalysis::new(&trace, WindowedConfig::with_window(window)).analyze();
        let oracle = PredictableRaceOracle::new(&trace);
        for &(a, b) in report.races() {
            let verdict = oracle.is_predictable_race(a, b);
            prop_assert!(
                matches!(verdict, OracleResult::Race(..) | OracleResult::Unknown),
                "window {window} reported ({a}, {b}) but the unbounded oracle refutes it"
            );
        }
    }

    /// First-window refutation finality extends to the post-v1 ops: the
    /// removability argument (every enabling event — wake-up notify, round
    /// enter, mode-respecting release — precedes its dependent in the
    /// observed trace) keeps the dedup optimization exact on traces with
    /// condvars, barriers, rwlocks, and failed trylocks.
    #[test]
    fn refutation_finality_survives_full_op_traces(
        (spec, seed) in tiny_full_spec(),
        window in 4usize..10,
    ) {
        let trace = spec.generate(seed);
        let stride = (window / 2).max(1);
        let config = WindowedConfig { window, stride, budget_per_query: 500_000 };
        let fast = WindowedRaceAnalysis::new(&trace, config).analyze();

        // Naive: query every conflicting pair in every window it appears in.
        let oracle = PredictableRaceOracle::new(&trace).with_budget(500_000);
        let mut naive: std::collections::HashSet<_> = Default::default();
        let n = trace.len();
        let mut lo = 0usize;
        loop {
            let hi = (lo + window).min(n);
            for i in lo..hi {
                for j in (i + 1)..hi {
                    let (a, b) = (EventId::new(i as u32), EventId::new(j as u32));
                    if !trace.event(a).conflicts_with(trace.event(b)) {
                        continue;
                    }
                    if let OracleResult::Race(x, y) = oracle.pair_in_window(a, b, lo, hi).result {
                        naive.insert((x, y));
                    }
                }
            }
            if hi == n {
                break;
            }
            lo += stride;
        }
        let fast_set: std::collections::HashSet<_> = fast.races().iter().copied().collect();
        prop_assert_eq!(fast_set, naive);
    }
}

/// A window cut inside a read-held rwlock section: the frozen read-mode
/// hold must keep blocking write acquires inside the window (else the
/// analysis would invent a race the rwlock prevents) while still admitting
/// other readers (else it would miss the reader-overlap race).
#[test]
fn window_cut_inside_a_read_held_section_keeps_the_frozen_hold() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let x = VarId::new(0);
    let r = LockId::new(0);
    let build = |second_mode: Op| {
        let mut b = TraceBuilder::new();
        b.push(t0, Op::AcqRead(r)).unwrap(); // e0 — frozen before the cut
        b.push(t0, Op::Read(x)).unwrap(); // e1
        b.push(t0, Op::Release(r)).unwrap(); // e2
        b.push(t1, second_mode).unwrap(); // e3
        b.push(t1, Op::Write(x)).unwrap(); // e4
        b.push(t1, Op::Release(r)).unwrap(); // e5
        b.finish()
    };
    let pair = (EventId::new(1), EventId::new(4));

    // Write-mode second section: the rwlock genuinely orders the accesses.
    // The cut at 1 leaves T0's read hold open in the frozen prefix; if the
    // window lost it, T1's acqw would be enabled immediately and the pair
    // would (unsoundly) race.
    let exclusive = build(Op::AcqWrite(r));
    let oracle = PredictableRaceOracle::new(&exclusive);
    assert_eq!(
        oracle.is_predictable_race(pair.0, pair.1),
        OracleResult::NoRace
    );
    assert_eq!(
        oracle.pair_in_window(pair.0, pair.1, 1, 6).result,
        OracleResult::NoRace,
        "the frozen read-mode hold must still block an in-window acqw"
    );

    // Read-mode second section: readers admit readers, so the same cut must
    // still let T1 overlap the frozen section and expose the race.
    let shared = build(Op::AcqRead(r));
    let oracle = PredictableRaceOracle::new(&shared);
    assert!(matches!(
        oracle.pair_in_window(pair.0, pair.1, 1, 6).result,
        OracleResult::Race(..)
    ));
}

/// A window cut between a notify and its wait: the frozen notify still
/// satisfies the in-window wait's wake-up prerequisite.
#[test]
fn wait_inside_the_window_accepts_its_frozen_notify() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let x = VarId::new(0);
    let m = LockId::new(0);
    let c = CondId::new(0);
    let mut b = TraceBuilder::new();
    b.push(t0, Op::Acquire(m)).unwrap(); // e0
    b.push(t0, Op::Notify(c)).unwrap(); // e1 — frozen before the cut
    b.push(t0, Op::Release(m)).unwrap(); // e2
    b.push(t1, Op::Acquire(m)).unwrap(); // e3
    b.push(t1, Op::Wait(c, m)).unwrap(); // e4 — inside the window
    b.push(t1, Op::Release(m)).unwrap(); // e5
    b.push(t1, Op::Write(x)).unwrap(); // e6
    b.push(t0, Op::Write(x)).unwrap(); // e7
    let trace = b.finish();

    let oracle = PredictableRaceOracle::new(&trace);
    let (a, z) = (EventId::new(6), EventId::new(7));
    assert!(matches!(
        oracle.is_predictable_race(a, z),
        OracleResult::Race(..)
    ));
    assert!(
        matches!(
            oracle.pair_in_window(a, z, 3, 8).result,
            OracleResult::Race(..)
        ),
        "the wait's wake-up cause is frozen in the prefix and must count as executed"
    );
}

/// An un-notified wait (spurious wakeup: no notify anywhere in the trace)
/// has no wake-up prerequisite, so a cut right before it leaves it
/// executable.
#[test]
fn un_notified_wait_inside_the_window_never_blocks() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let x = VarId::new(0);
    let m = LockId::new(0);
    let c = CondId::new(0);
    let mut b = TraceBuilder::new();
    b.push(t1, Op::Acquire(m)).unwrap(); // e0 — frozen before the cut
    b.push(t1, Op::Wait(c, m)).unwrap(); // e1 — inside the window, un-notified
    b.push(t1, Op::Release(m)).unwrap(); // e2
    b.push(t1, Op::Write(x)).unwrap(); // e3
    b.push(t0, Op::Write(x)).unwrap(); // e4
    let trace = b.finish();

    let oracle = PredictableRaceOracle::new(&trace);
    let (a, z) = (EventId::new(3), EventId::new(4));
    assert!(matches!(
        oracle.is_predictable_race(a, z),
        OracleResult::Race(..)
    ));
    assert!(matches!(
        oracle.pair_in_window(a, z, 1, 5).result,
        OracleResult::Race(..)
    ));
}

/// Window cuts landing inside an open barrier round: frozen enters count
/// toward in-window exits, and an in-window exit still demands the enters
/// that are themselves in the window.
#[test]
fn window_cut_inside_an_open_barrier_round() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let x = VarId::new(0);
    let bar = BarrierId::new(0);

    // Both threads race after the rendezvous; the race must survive a cut
    // after one enter (half-open round) and after both (fully open round).
    let mut b = TraceBuilder::new();
    b.push(t0, Op::BarrierEnter(bar)).unwrap(); // e0
    b.push(t1, Op::BarrierEnter(bar)).unwrap(); // e1
    b.push(t0, Op::BarrierExit(bar)).unwrap(); // e2
    b.push(t1, Op::BarrierExit(bar)).unwrap(); // e3
    b.push(t1, Op::Write(x)).unwrap(); // e4
    b.push(t0, Op::Write(x)).unwrap(); // e5
    let trace = b.finish();
    let oracle = PredictableRaceOracle::new(&trace);
    let (a, z) = (EventId::new(4), EventId::new(5));
    for lo in [1, 2] {
        assert!(
            matches!(
                oracle.pair_in_window(a, z, lo, 6).result,
                OracleResult::Race(..)
            ),
            "cut at {lo} inside the round must keep the frozen enters"
        );
    }

    // The rendezvous as the only ordering: T1 cannot pass the barrier until
    // T0 enters, and T0 enters only after its write — so the accesses never
    // meet, including when the cut leaves T1's enter frozen.
    let mut b = TraceBuilder::new();
    b.push(t1, Op::BarrierEnter(bar)).unwrap(); // e0 — frozen at cut 1
    b.push(t0, Op::Write(x)).unwrap(); // e1
    b.push(t0, Op::BarrierEnter(bar)).unwrap(); // e2
    b.push(t1, Op::BarrierExit(bar)).unwrap(); // e3
    b.push(t0, Op::BarrierExit(bar)).unwrap(); // e4
    b.push(t1, Op::Write(x)).unwrap(); // e5
    let trace = b.finish();
    let oracle = PredictableRaceOracle::new(&trace);
    let (a, z) = (EventId::new(1), EventId::new(5));
    assert_eq!(oracle.is_predictable_race(a, z), OracleResult::NoRace);
    assert_eq!(
        oracle.pair_in_window(a, z, 1, 6).result,
        OracleResult::NoRace,
        "an in-window exit still demands the in-window enter of its round"
    );
}
