//! Differential capture-vs-expectation battery (ISSUE 7's headline).
//!
//! Every executable pattern twin from `smarttrack-capture` runs as a real
//! threaded program — repeatedly, under several schedule-nudging settings —
//! and each captured STB stream is decoded (which validates it) and
//! analyzed through every Table-1 cell. The twins are chosen so their
//! statically-distinct race count is the same under every relation *and*
//! every schedule, which is what makes exact assertions on live captures
//! sound: racy twins must be found by every cell, race-free twins by none,
//! on every run. A second battery streams the same executions over a
//! loopback socket to a live serve daemon and requires the daemon's lanes
//! to agree with offline analysis of a teed in-memory copy.

use std::sync::Arc;

use smarttrack::{analyze, AnalysisConfig, Relation};
use smarttrack_capture::twins::{run_twin, TwinKind};
use smarttrack_capture::{
    CaptureConfig, CaptureError, CaptureSession, CaptureSink, Mutex, Nudge, Shared,
};
use smarttrack_serve::{Server, ServerConfig};
use smarttrack_trace::binary::from_stb_bytes;
use smarttrack_trace::Trace;
use smarttrack_workloads::PatternKind;

/// Nudge settings per twin run: no nudging, yield before every op, and a
/// sparser desynchronized pattern. Distinct settings reach distinct
/// interleavings without any sleeps.
const NUDGES: [Option<Nudge>; 3] = [
    None,
    Some(Nudge {
        period: 1,
        phase: 0,
    }),
    Some(Nudge {
        period: 3,
        phase: 1,
    }),
];

/// Repetitions per (twin, nudge) pair.
const ROUNDS: usize = 3;

fn capture_to_memory(kind: TwinKind, nudge: Option<Nudge>) -> Trace {
    let (sink, bytes) = CaptureSink::memory();
    let config = CaptureConfig {
        nudge,
        ..CaptureConfig::default()
    };
    run_twin(kind, sink, config).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    let stb = bytes.lock().expect("memory sink").clone();
    // Decoding re-validates every event against the stream validator.
    from_stb_bytes(&stb).unwrap_or_else(|e| panic!("{}: invalid capture: {e}", kind.name()))
}

#[test]
fn every_twin_matches_expectation_under_every_cell_and_nudge() {
    for kind in TwinKind::ALL {
        for nudge in NUDGES {
            for round in 0..ROUNDS {
                let trace = capture_to_memory(kind, nudge);
                for config in AnalysisConfig::table1() {
                    let got = analyze(&trace, config).report.static_count();
                    assert_eq!(
                        got,
                        kind.expected_static(),
                        "{} round {round} nudge {nudge:?} under {config}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn twin_expectations_agree_with_generator_metadata() {
    // Twins that mirror a synthetic generator pattern must promise exactly
    // what the generator's metadata promises. The generator's expectations
    // are per-relation tuples; the twins are deliberately restricted to
    // patterns whose tuple is uniform, so the scalar must match every
    // component.
    let mirrors = [
        (TwinKind::UnsyncRace, PatternKind::HbRace),
        (TwinKind::CondvarHandoff, PatternKind::CondvarHandoff),
        (TwinKind::CondvarRace, PatternKind::CondvarRace),
        (TwinKind::BarrierPhase, PatternKind::BarrierPhase),
        (TwinKind::BarrierRace, PatternKind::BarrierRace),
        (TwinKind::ReaderOverlap, PatternKind::ReaderOverlap),
        (TwinKind::Reversal, PatternKind::Reversal),
    ];
    for (twin, pattern) in mirrors {
        let (hb, wcp, dc, wdc) = pattern.expected_static_races();
        for (relation, expected) in [
            (Relation::Hb, hb),
            (Relation::Wcp, wcp),
            (Relation::Dc, dc),
            (Relation::Wdc, wdc),
        ] {
            assert_eq!(
                twin.expected_static(),
                expected as usize,
                "{} vs {pattern:?} under {relation:?}",
                twin.name()
            );
        }
    }
}

#[test]
fn reversal_twin_is_osr_only_on_every_schedule() {
    // The reversal twin's raw (unrecorded) barrier pins thread A's critical
    // section before thread B's on every schedule, so the captured trace is
    // always the canonical reversal shape: 0 statically-distinct races
    // under every Table 1 relation and under SyncP, exactly 1 under OSR —
    // the one race in this repo only the reversal-permitting closure sees.
    let syncp = AnalysisConfig::new(Relation::SyncP, smarttrack::OptLevel::Unopt);
    let osr = AnalysisConfig::new(Relation::Osr, smarttrack::OptLevel::Unopt);
    for nudge in NUDGES {
        for round in 0..ROUNDS {
            let trace = capture_to_memory(TwinKind::Reversal, nudge);
            for config in AnalysisConfig::table1() {
                assert_eq!(
                    analyze(&trace, config).report.static_count(),
                    0,
                    "round {round} nudge {nudge:?} under {config}"
                );
            }
            assert_eq!(
                analyze(&trace, syncp).report.static_count(),
                0,
                "round {round} nudge {nudge:?}: SyncP cannot reverse the sections"
            );
            assert_eq!(
                analyze(&trace, osr).report.static_count(),
                1,
                "round {round} nudge {nudge:?}: OSR must expose the reversal race"
            );
        }
    }
}

#[test]
fn mutex_lowering_hid_the_reader_overlap_race() {
    // Regression pin for the bug this twin exists to catch: the old wrapper
    // lowered `read()` to a plain mutex acquire, which *serialized* the two
    // read sections and made every cell report 0 races for this shape. The
    // real read-mode events leave the sections unordered: every cell must
    // report exactly 1. (Built at the trace level — the exclusive lowering
    // of genuinely overlapping sections could not even execute live.)
    use smarttrack_clock::ThreadId;
    use smarttrack_trace::{Loc, LockId, Op, TraceBuilder, VarId};

    let shape = |acq: fn(LockId) -> Op| {
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (m, x) = (LockId::new(0), VarId::new(0));
        let mut b = TraceBuilder::new();
        b.push_at(t0, Op::Fork(t1), Loc::new(0)).unwrap();
        b.push_at(t0, acq(m), Loc::new(1)).unwrap();
        b.push_at(t0, Op::Write(x), Loc::new(2)).unwrap();
        b.push_at(t0, Op::Release(m), Loc::new(3)).unwrap();
        b.push_at(t1, acq(m), Loc::new(4)).unwrap();
        b.push_at(t1, Op::Read(x), Loc::new(5)).unwrap();
        b.push_at(t1, Op::Release(m), Loc::new(6)).unwrap();
        b.finish()
    };
    let rwlock = shape(Op::AcqRead);
    let lowered = shape(Op::Acquire);
    for config in AnalysisConfig::table1() {
        assert_eq!(
            analyze(&rwlock, config).report.static_count(),
            1,
            "read sections never exclude each other under {config}"
        );
        assert_eq!(
            analyze(&lowered, config).report.static_count(),
            0,
            "the old mutex lowering serialized the sections under {config}"
        );
    }
}

#[test]
fn file_sink_round_trips_like_memory() {
    let dir = std::env::temp_dir().join(format!("capture_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for kind in [TwinKind::UnsyncRace, TwinKind::CondvarHandoff] {
        let path = dir.join(format!("{}.stb", kind.name()));
        let sink = CaptureSink::file(&path).expect("file sink");
        run_twin(kind, sink, CaptureConfig::default()).expect("twin");
        let stb = std::fs::read(&path).expect("read capture");
        let trace = from_stb_bytes(&stb).expect("file capture validates");
        for config in AnalysisConfig::table1() {
            assert_eq!(
                analyze(&trace, config).report.static_count(),
                kind.expected_static(),
                "{} via file sink under {config}",
                kind.name()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_socket_sink_agrees_with_offline_analysis() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            analyses: vec!["fto-hb".parse().unwrap(), "st-wdc".parse().unwrap()],
            workers: Some(2),
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    for kind in TwinKind::ALL {
        let client = smarttrack_serve::ServeClient::connect(addr, "diff", kind.name(), false)
            .expect("connect");
        let (memory, bytes) = CaptureSink::memory();
        let sink = CaptureSink::tee(memory, CaptureSink::serve(client));
        let config = CaptureConfig {
            nudge: Some(Nudge {
                period: 2,
                phase: 1,
            }),
            // Tiny buffers force many epoch flushes mid-stream, so the
            // daemon sees the same chunked-arbitrary-boundary traffic a
            // long-running capture would produce.
            buffer_events: 4,
            chunk_events: 8,
        };
        let report =
            run_twin(kind, sink, config).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let wire = &report.serve_reports[0];
        assert_eq!(wire.events, report.events, "{}", kind.name());

        let stb = bytes.lock().expect("memory sink").clone();
        let trace = from_stb_bytes(&stb).expect("teed capture validates");
        assert_eq!(trace.len() as u64, report.events, "{}", kind.name());
        assert_eq!(wire.lanes.len(), 2, "{}", kind.name());
        for lane in &wire.lanes {
            let lane_config: AnalysisConfig = lane.config.parse().expect("lane config");
            let offline = analyze(&trace, lane_config).report.static_count();
            assert_eq!(
                lane.static_count as usize,
                offline,
                "{} lane {} vs offline",
                kind.name(),
                lane.name
            );
            assert_eq!(
                offline,
                kind.expected_static(),
                "{} lane {} vs expectation",
                kind.name(),
                lane.name
            );
        }
    }
    server.shutdown();
}

#[test]
fn nudge_injection_perturbs_schedules_not_results() {
    // The nudge knob must change *interleavings* (eventually observable as
    // different captured event orders) while never changing any cell's
    // verdict. Race twins make schedule variation visible: the captured
    // global order of the two conflicting accesses differs between
    // schedules. We don't assert variation occurred (that would be flaky
    // in the other direction) — only that results are invariant, which is
    // the property the battery depends on.
    for nudge in NUDGES {
        let trace = capture_to_memory(TwinKind::BarrierRace, nudge);
        for config in AnalysisConfig::table1() {
            assert_eq!(analyze(&trace, config).report.static_count(), 1);
        }
    }
}

#[test]
fn poisoned_mutex_try_lock_recovers_and_stays_validator_clean() {
    use smarttrack_trace::{LockId, Op};

    let (sink, bytes) = CaptureSink::memory();
    let session = CaptureSession::new(sink, CaptureConfig::default());
    let m = Arc::new(Mutex::new(&session, 0u32));

    // A holder that panics mid-section: its release is recorded while
    // unwinding and the std mutex is left poisoned.
    let child = {
        let m = m.clone();
        session.spawn(move || {
            let _g = m.lock();
            panic!("holder dies mid-section");
        })
    };
    assert!(child.join().is_err());

    // Uncontended try_lock on the poisoned mutex: the poison is absorbed,
    // the acquire is recorded, and the data is still reachable.
    *m.try_lock().expect("poisoned but free: recovery succeeds") += 1;

    // Contended try_lock — probed while a second (also doomed) holder is
    // mid-section: the failure records `tryf`, which needs no release.
    let hold = Arc::new(std::sync::Barrier::new(2));
    let done = Arc::new(std::sync::Barrier::new(2));
    let child = {
        let (m, hold, done) = (m.clone(), hold.clone(), done.clone());
        session.spawn(move || {
            let _g = m.lock();
            hold.wait();
            done.wait();
            panic!("second holder dies too");
        })
    };
    hold.wait();
    assert!(m.try_lock().is_none(), "held: the probe must fail");
    done.wait();
    assert!(child.join().is_err());
    *m.lock() += 1;

    session.finish().expect("finish");
    let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validator-clean");
    let ops: Vec<Op> = trace.events().iter().map(|e| e.op).collect();
    let l = LockId::new(0);
    let acqs = ops.iter().filter(|o| **o == Op::Acquire(l)).count();
    let rels = ops.iter().filter(|o| **o == Op::Release(l)).count();
    assert_eq!(acqs, 4, "two doomed holders, one recovery, one final lock");
    assert_eq!(
        acqs, rels,
        "every acquire got its release, unwinding included"
    );
    assert_eq!(
        ops.iter().filter(|o| **o == Op::TryAcqFail(l)).count(),
        1,
        "exactly the one contended probe"
    );
}

#[test]
fn poisoned_rwlock_recovery_across_modes_stays_validator_clean() {
    use smarttrack_capture::RwLock;
    use smarttrack_trace::{LockId, Op, ThreadId};

    let (sink, bytes) = CaptureSink::memory();
    let session = CaptureSession::new(sink, CaptureConfig::default());
    let rw = Arc::new(RwLock::new(&session, 0u32));

    // A write holder that panics: release recorded while unwinding, std
    // rwlock poisoned.
    let child = {
        let rw = rw.clone();
        session.spawn(move || {
            let _g = rw.write();
            panic!("write holder dies mid-section");
        })
    };
    assert!(child.join().is_err());

    // Every mode recovers from the poison; a try_write under a live read
    // hold still fails as `tryf`. All single-threaded from here, so the
    // recorded tail is deterministic and pinned exactly.
    {
        let g = rw.try_read().expect("poisoned but free: try_read recovers");
        assert!(rw.try_write().is_none(), "read-held: try_write must fail");
        let _ = *g;
    }
    *rw.try_write().expect("free again: try_write recovers") = 1;
    assert_eq!(*rw.read(), 1, "blocking read absorbs the poison too");

    session.finish().expect("finish");
    let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validator-clean");
    let ops: Vec<Op> = trace.events().iter().map(|e| e.op).collect();
    let l = LockId::new(0);
    let t1 = ThreadId::new(1);
    assert_eq!(
        ops,
        vec![
            Op::Fork(t1),
            Op::AcqWrite(l),
            Op::Release(l), // recorded during the child's unwind
            Op::Join(t1),
            Op::AcqRead(l),
            Op::TryAcqFail(l),
            Op::Release(l),
            Op::AcqWrite(l),
            Op::Release(l),
            Op::AcqRead(l),
            Op::Release(l),
        ]
    );
}

#[test]
fn finish_surfaces_unjoined_captured_threads() {
    let (sink, _bytes) = CaptureSink::memory();
    let session = CaptureSession::new(sink, CaptureConfig::default());
    let gate = Arc::new(std::sync::Barrier::new(2));
    let child = {
        let gate = gate.clone();
        let m = Mutex::new(&session, 0u32);
        session.spawn(move || {
            *m.lock() += 1;
            gate.wait();
        })
    };
    assert!(matches!(
        session.finish(),
        Err(CaptureError::ThreadsActive(_))
    ));
    gate.wait();
    child.join().expect("child");
    // After joining, the same session finishes cleanly.
    let report = session.finish().expect("finish after join");
    assert_eq!(report.threads, 2);
}

#[test]
fn foreign_threads_flush_explicitly() {
    // A thread not spawned through the session auto-registers on first
    // use; it must flush before finish (finish cannot see its buffer).
    let (sink, bytes) = CaptureSink::memory();
    let session = CaptureSession::new(sink, CaptureConfig::default());
    let x = Arc::new(Shared::new(&session, 0u32));
    let foreign = {
        let (session, x) = (session.clone(), x.clone());
        std::thread::spawn(move || {
            x.set(1);
            session.flush_thread();
        })
    };
    foreign.join().expect("foreign thread");
    let _ = x.get();
    session.finish().expect("finish");
    let trace = from_stb_bytes(&bytes.lock().unwrap()).expect("validates");
    assert_eq!(trace.len(), 2);
}
