//! Stress/soak test for the batch-analysis pool: hundreds of small jobs of
//! every source kind (STB files, text files, generator closures), with
//! injected truncated-STB members, hammered through a small worker pool.
//!
//! Asserts the invariants that make the pool deployable: no panics, every
//! job accounted for exactly once (success or a precise per-job error),
//! failures isolated to exactly the injected corrupt members, and peak
//! simultaneously-resident sessions bounded by the worker count.
//!
//! The test is `#[ignore]`d in debug builds (it analyzes ~200 traces;
//! debug-mode detectors make that a minutes-long run). CI runs it under
//! `--release`, where it takes a few seconds:
//!
//! ```text
//! cargo test --release --test batch_stress
//! ```

use smarttrack::{BatchJob, Engine, EnginePool, JobError, Relation};
use smarttrack_trace::gen::RandomTraceSpec;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Self-cleaning scratch directory.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("st-batch-stress-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_spec(seed: u64) -> RandomTraceSpec {
    RandomTraceSpec {
        threads: 2 + (seed % 3) as u32,
        events: 60 + (seed % 90) as usize,
        vars: 3,
        locks: 2,
        acquire_prob: 0.15,
        release_prob: 0.2,
        fork_join: seed.is_multiple_of(2),
        ..RandomTraceSpec::default()
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak test: run under --release (cargo test --release --test batch_stress)"
)]
fn soak_mixed_corpus_of_220_jobs() {
    const WORKERS: usize = 4;
    let scratch = ScratchDir::new();
    let mut jobs: Vec<BatchJob> = Vec::new();
    let mut expected_failures: BTreeSet<String> = BTreeSet::new();

    for seed in 0..220u64 {
        let spec = small_spec(seed);
        match seed % 4 {
            // Generator jobs: the trace is synthesized on the worker.
            0 => jobs.push(BatchJob::generator(format!("gen-{seed}"), move || {
                spec.generate(seed)
            })),
            // STB file jobs, every 20th one truncated mid-stream.
            1 => {
                let path = scratch.0.join(format!("stb-{seed}.stb"));
                smarttrack_trace::binary::write_stb_file(&spec.generate(seed), &path).unwrap();
                if seed % 20 == 1 {
                    let bytes = std::fs::read(&path).unwrap();
                    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
                    expected_failures.insert(path.display().to_string());
                }
                jobs.push(BatchJob::from_path(path));
            }
            // Native text file jobs.
            2 => {
                let path = scratch.0.join(format!("text-{seed}.trace"));
                smarttrack_trace::fmt::write_file(&spec.generate(seed), &path).unwrap();
                jobs.push(BatchJob::from_path(path));
            }
            // In-memory trace jobs.
            _ => jobs.push(BatchJob::from_trace(
                format!("mem-{seed}"),
                spec.generate(seed),
            )),
        }
    }
    let total = jobs.len();
    let labels: Vec<String> = jobs.iter().map(|j| j.label().to_string()).collect();
    assert_eq!(
        labels.iter().collect::<BTreeSet<_>>().len(),
        total,
        "labels are unique, so per-job accounting is checkable"
    );

    let engine = Engine::builder().relation(Relation::Wdc).build().unwrap();
    let pool = EnginePool::new(engine).with_workers(WORKERS);
    let (report, stats) = pool.run_with_stats(jobs);

    // Every job accounted for exactly once, in submission order.
    assert_eq!(report.jobs().len(), total);
    for (job, label) in report.jobs().iter().zip(&labels) {
        assert_eq!(&job.label, label);
    }
    assert_eq!(report.succeeded() + report.failed(), total);

    // Failures are exactly the injected truncations, each with the precise
    // decode error.
    let failed: BTreeSet<String> = report.failures().map(|j| j.label.clone()).collect();
    assert_eq!(failed, expected_failures);
    for failure in report.failures() {
        match failure.result.as_ref().unwrap_err() {
            JobError::Decode(message) => assert!(
                message.contains("truncated") || message.contains("corrupt"),
                "{message}"
            ),
            other => panic!("{}: expected a decode error, got {other}", failure.label),
        }
    }

    // Bounded residency: at most one open session per worker, ever.
    assert_eq!(stats.workers, WORKERS);
    assert_eq!(stats.jobs, total);
    assert!(
        (1..=WORKERS).contains(&stats.peak_resident_sessions),
        "peak resident sessions {} out of bounds",
        stats.peak_resident_sessions
    );

    // The successful majority analyzed real events.
    assert_eq!(report.failed(), expected_failures.len());
    assert!(report.total_events() > total * 40, "jobs were non-trivial");
}
