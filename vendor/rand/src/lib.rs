//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the [`Rng`] methods `gen`, `gen_bool`,
//! and `gen_range` over integer ranges. The generator is xoshiro256++
//! seeded through splitmix64, the same construction the real `SmallRng`
//! uses on 64-bit targets, so quality is comparable; exact value streams
//! differ from upstream, which only matters to tests that hard-code them
//! (none here do — seeds select *a* deterministic trace, not a specific
//! upstream one).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Uniform draw in `0..span` by rejection, avoiding modulo bias.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The raw entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type (`f64` in `[0, 1)`,
    /// `bool`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws uniformly from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 (the real `SmallRng`'s 64-bit
    /// construction).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
