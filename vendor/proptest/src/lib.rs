//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / `any` / tuple / vector
//! strategies, [`ProptestConfig::with_cases`], and the [`proptest!`] macro
//! with `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via `Debug`) but
//!   is not minimized;
//! * **fixed derivation of the RNG seed** from the test function's name, so
//!   runs are deterministic and stable across processes (upstream defaults
//!   to fresh entropy plus a persistence file).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};
use std::ops::Range;

// Re-exported so the `proptest!` macro can name the RNG via `$crate::rand`
// regardless of the calling crate's own dependencies.
#[doc(hidden)]
pub use rand;

/// Runner configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (upstream defaults to 256; kept smaller because these
    /// suites drive whole race-detector runs per case).
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseFailed(pub String);

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Draws arbitrary values of `T` (full-range integers, fair booleans).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn new_value(&self, rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;

    fn new_value(&self, rng: &mut SmallRng) -> u32 {
        rng.gen()
    }
}

/// A fixed-value strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Stable 64-bit seed from a test path (FNV-1a), so each property test has
/// its own deterministic case stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn` runs `config.cases` times with fresh
/// random bindings drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($bind:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $bind = ($strat).new_value(&mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseFailed> {
                        $body
                        Ok(())
                    })();
                    if let Err($crate::TestCaseFailed(msg)) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, msg,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseFailed(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{} ({:?} != {:?})", format!($($fmt)*), a, b);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} ({:?} == {:?})", format!($($fmt)*), a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 3u32..9, (a, b) in (0usize..4, any::<bool>())) {
            prop_assert!((3..9).contains(&v));
            prop_assert!(a < 4, "a={} out of range", a);
            let _ = b;
        }

        #[test]
        fn maps_and_vecs_compose(
            xs in crate::collection::vec((0u32..50).prop_map(|x| x * 2), 0..8)
        ) {
            prop_assert!(xs.len() < 8);
            for x in xs {
                prop_assert_eq!(x % 2, 0);
                prop_assert_ne!(x, 101);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unreachable_code)]
            fn inner(v in 0u32..2) {
                prop_assert!(v > 10, "v={} too small", v);
            }
        }
        inner();
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
