//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are vendored as API-compatible
//! subsets (see `vendor/README.md`). This crate covers exactly the surface
//! the workspace uses: [`Mutex`] / [`MutexGuard`] with non-poisoning
//! `lock()`, and [`Condvar`] whose `wait` takes the guard by `&mut`.
//!
//! Semantics match parking_lot where it matters here: a panicked holder does
//! not poison the lock (poison errors from std are swallowed by recovering
//! the inner guard).

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive (non-poisoning `lock`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait`] can move the std guard out
/// and back in while the caller keeps holding `&mut MutexGuard`; it is `Some`
/// at every point user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`, parking_lot
/// style.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard`'s mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside Condvar::wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
