//! Offline stand-in for the `criterion` benchmark harness (see
//! `vendor/README.md`).
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput::Elements`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! over a deliberately simple measurement loop: per sample, the bench
//! closure is timed over enough iterations to exceed a minimum measurement
//! window, and the median / min / max of the per-iteration times across
//! samples is reported. No warm-up analysis, outlier classification, or
//! HTML reports.
//!
//! Usable exactly like upstream with `harness = false` bench targets:
//!
//! ```text
//! cargo bench -p smarttrack-bench --bench analyses
//! ```

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured throughput units attached to a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (events, for this workspace).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times the body of one benchmark.
pub struct Bencher {
    /// Nanoseconds per iteration for each sample taken.
    samples: Vec<f64>,
    sample_count: usize,
    min_window: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill the measurement window?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.min_window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// A named collection of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used to report throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            min_window: self.criterion.min_window,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Benches a closure receiving `input` under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            min_window: self.criterion.min_window,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Finishes the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[f64]) {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if sorted.is_empty() {
            0.0
        } else {
            sorted[sorted.len() / 2]
        };
        let lo = sorted.first().copied().unwrap_or(0.0);
        let hi = sorted.last().copied().unwrap_or(0.0);
        let mut line = format!(
            "{}/{:<28} time: [{} {} {}]",
            self.name,
            id.to_string(),
            fmt_nanos(lo),
            fmt_nanos(median),
            fmt_nanos(hi)
        );
        if let Some(tp) = self.throughput {
            let (units, label) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if median > 0.0 {
                line.push_str(&format!(
                    "  thrpt: {:.3} M{label}",
                    units / median * 1e9 / 1e6
                ));
            }
        }
        self.criterion.emit(&line);
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    min_window: Duration,
    lines: Vec<String>,
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            min_window: Duration::from_millis(50),
            lines: Vec::new(),
            quiet: false,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        self.emit(&format!("== group {name}"));
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 20,
        }
    }

    /// Benches a standalone function (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function(BenchmarkId::from_parameter(""), f);
        self
    }

    /// All result lines emitted so far (used by the shim's own tests).
    pub fn reported(&self) -> &[String] {
        &self.lines
    }

    fn emit(&mut self, line: &str) {
        if !self.quiet {
            println!("{line}");
        }
        self.lines.push(line.to_string());
    }
}

/// Declares a benchmark group function, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_report_median_and_throughput() {
        let mut c = Criterion {
            min_window: Duration::from_micros(200),
            lines: Vec::new(),
            quiet: true,
        };
        {
            let mut group = c.benchmark_group("demo");
            group.throughput(Throughput::Elements(100));
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::from_parameter("sum"), &1000u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        let lines = c.reported();
        assert!(lines[0].contains("group demo"));
        assert!(lines[1].contains("demo/sum"), "{}", lines[1]);
        assert!(lines[1].contains("thrpt"), "{}", lines[1]);
    }

    #[test]
    fn benchmark_ids_format_like_upstream() {
        assert_eq!(
            BenchmarkId::new("analyze", "ST-DC").to_string(),
            "analyze/ST-DC"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
